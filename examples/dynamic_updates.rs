//! Dynamic updates (paper §6.2): live insertions and logical deletions on a
//! built multi-shard index.
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use pathweaver::prelude::*;
use pathweaver::vector::VectorSet;

fn main() {
    let profile = DatasetProfile::deep10m_like();
    let workload = profile.workload(Scale::Test, 8, 10, 5);
    let mut index = PathWeaverIndex::build(&workload.base, &PathWeaverConfig::test_scale(2))
        .expect("index fits");
    let params = SearchParams::default();

    // Insert a burst of new points near existing ones.
    println!("inserting 25 vectors...");
    let mut inserted = Vec::new();
    for i in 0..25 {
        let base_row = workload.base.row(i * 7 % workload.base.len());
        let novel: Vec<f32> = base_row.iter().map(|x| x * 1.002 + 0.001).collect();
        inserted.push((index.insert(&novel), novel));
    }
    println!("index now holds {} vectors across {} shards", index.num_vectors, index.num_devices());

    // Every inserted vector must be findable as its own nearest neighbor.
    let mut queries = VectorSet::empty(index.dim());
    for (_, v) in &inserted {
        queries.push(v);
    }
    let out = index.search_pipelined(&queries, &params);
    let found =
        inserted.iter().enumerate().filter(|(i, (id, _))| out.results[*i].contains(id)).count();
    println!("{found}/{} inserted vectors found by search", inserted.len());

    // Tombstone half of them; they must vanish from results while the rest
    // stay findable.
    println!("\ndeleting 12 of the inserted vectors (logical tombstones)...");
    for (id, _) in inserted.iter().take(12) {
        assert!(index.delete(*id));
    }
    println!("live vectors: {}", index.live_vectors());
    let out = index.search_pipelined(&queries, &params);
    let mut ghosts = 0;
    let mut survivors = 0;
    for (i, (id, _)) in inserted.iter().enumerate() {
        let present = out.results[i].contains(id);
        if i < 12 {
            ghosts += usize::from(present);
        } else {
            survivors += usize::from(present);
        }
    }
    println!("deleted vectors still returned: {ghosts} (want 0)");
    println!("surviving vectors still found: {survivors}/13");
}
