//! Streaming serve walkthrough: a backlog of single-query batches served
//! one at a time vs overlapped through the [`Server`]'s persistent device
//! ring, with the simulated-makespan gain printed at the end.
//!
//! ```text
//! cargo run --release --example streaming_serve
//! ```
//!
//! [`Server`]: pathweaver::core::serve::Server

use std::sync::Arc;

use pathweaver::core::serve::{ServeConfig, Server};
use pathweaver::prelude::*;

fn main() {
    let profile = DatasetProfile::deep10m_like();
    let workload = profile.workload(Scale::Test, 24, 10, 7);
    let devices = 4;
    let index = Arc::new(
        PathWeaverIndex::build(&workload.base, &PathWeaverConfig::test_scale(devices))
            .expect("index fits"),
    );
    let params = SearchParams::default();

    println!("== serialized: each batch blocks until its ring traversal ends ==");
    let mut serial_sim_s = 0.0;
    for r in 0..workload.queries.len() {
        let mut one = pathweaver::vector::VectorSet::empty(index.dim());
        one.push(workload.queries.row(r));
        serial_sim_s += index.search_pipelined(&one, &params).makespan_s;
    }
    println!("{} batches, {:.1} us simulated", workload.queries.len(), serial_sim_s * 1e6);

    println!("\n== streamed: the Server keeps batches overlapped in flight ==");
    let config = ServeConfig {
        max_batch: 1, // One batch per query, so the backlog pipelines.
        queue_capacity: workload.queries.len(),
        params,
        ..ServeConfig::default()
    };
    let server = Server::new(Arc::clone(&index), config).expect("serve threads spawn");
    let tickets: Vec<_> = (0..workload.queries.len())
        .map(|r| server.try_submit(workload.queries.row(r)).expect("queue sized for backlog"))
        .collect();
    let results: Vec<Vec<u32>> = tickets
        .into_iter()
        .map(|t| t.wait().expect("server stays up").hits.into_iter().map(|(_, id)| id).collect())
        .collect();
    let streamed_sim_s = server.timeline().overlapped_makespan_s();
    server.shutdown();
    let recall = recall_batch(&workload.ground_truth, &results, 10);
    println!(
        "{} batches, {:.1} us simulated, recall {recall:.3}",
        results.len(),
        streamed_sim_s * 1e6
    );

    println!(
        "\noverlapping in-flight batches cut simulated serving time {:.2}x",
        serial_sim_s / streamed_sim_s.max(1e-12)
    );
}
