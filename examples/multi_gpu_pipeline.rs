//! Multi-GPU pipelining walkthrough: compares the sharding baseline against
//! pipelining-based path extension on the same index, the comparison behind
//! the paper's Figs 3 and 9.
//!
//! ```text
//! cargo run --release --example multi_gpu_pipeline
//! ```

use pathweaver::prelude::*;

fn main() {
    let profile = DatasetProfile::deep10m_like();
    let workload = profile.workload(Scale::Test, 40, 10, 7);
    let devices = 4;
    let index = PathWeaverIndex::build(&workload.base, &PathWeaverConfig::test_scale(devices))
        .expect("index fits");
    let params = SearchParams::default();

    println!("== sharding baseline: every GPU searches every query ==");
    let naive = index.search_naive(&workload.queries, &params);
    let naive_recall = recall_batch(&workload.ground_truth, &naive.results, 10);
    let naive_work = naive.timeline.aggregate_counters();
    println!(
        "recall {naive_recall:.3} | total distance calcs {} | iterations {} | comm bytes {}",
        naive_work.dist_calcs, naive_work.iterations, naive_work.comm_bytes
    );

    println!("\n== pipelining-based path extension: results seed the next shard ==");
    let piped = index.search_pipelined(&workload.queries, &params);
    let piped_recall = recall_batch(&workload.ground_truth, &piped.results, 10);
    let piped_work = piped.timeline.aggregate_counters();
    println!(
        "recall {piped_recall:.3} | total distance calcs {} | iterations {} | comm bytes {}",
        piped_work.dist_calcs, piped_work.iterations, piped_work.comm_bytes
    );

    println!("\n== per-stage time share (Fig 5's shape: stage 1 dominates) ==");
    let times = piped.timeline.stage_times_s();
    let total: f64 = times.iter().sum();
    for (stage, t) in times.iter().enumerate() {
        let bar_len = (40.0 * t / total).round() as usize;
        println!("stage {} | {:40} {:.1}%", stage + 1, "#".repeat(bar_len), 100.0 * t / total);
    }

    println!(
        "\npath extension removed {:.1}% of the distance work at recall {piped_recall:.3} vs {naive_recall:.3}",
        100.0 * (1.0 - piped_work.dist_calcs as f64 / naive_work.dist_calcs as f64)
    );
}
