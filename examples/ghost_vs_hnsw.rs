//! Ghost staging versus hierarchical alternatives (paper §6.1 / Fig 18):
//! runs the same GPU kernel over (a) a CAGRA-style graph entered via ghost
//! staging, (b) an HNSW layer-0 graph entered at random, and (c) HNSW on
//! the CPU with its native hierarchy.
//!
//! ```text
//! cargo run --release --example ghost_vs_hnsw
//! ```

use pathweaver::core::baselines::HnswBaseline;
use pathweaver::graph::HnswParams;
use pathweaver::prelude::*;

fn main() {
    let profile = DatasetProfile::sift_like();
    let workload = profile.workload(Scale::Test, 32, 10, 99);
    let params = SearchParams::default();

    // (a) Ghost staging on a single simulated GPU (DGS off for fairness).
    let index = PathWeaverIndex::build(&workload.base, &PathWeaverConfig::test_scale(1))
        .expect("index fits");
    let ghost_out = index.search_pipelined(&workload.queries, &params);
    let ghost_recall = recall_batch(&workload.ground_truth, &ghost_out.results, 10);
    let ghost_dists = ghost_out.timeline.aggregate_counters().dist_calcs;
    println!("ghost staging      : recall {ghost_recall:.3}, distance calcs {ghost_dists}");

    // (b) The same GPU kernel over HNSW's layer-0 graph, random entries.
    let hnsw = HnswBaseline::build(&workload.base, &HnswParams::default());
    let hnsw_gpu = hnsw.as_gpu_index();
    let hnsw_out = hnsw_gpu.search_naive(&workload.queries, &params);
    let hnsw_recall = recall_batch(&workload.ground_truth, &hnsw_out.results, 10);
    let hnsw_dists = hnsw_out.timeline.aggregate_counters().dist_calcs;
    println!("GPU-searched HNSW  : recall {hnsw_recall:.3}, distance calcs {hnsw_dists}");

    // (c) HNSW on the CPU with its native hierarchy (wall-clock timing).
    let cpu = hnsw.search_cpu(&workload.queries, 10, 64);
    let cpu_recall = recall_batch(&workload.ground_truth, &cpu.results, 10);
    println!(
        "HNSW on CPU        : recall {cpu_recall:.3}, measured {:.0} queries/s (wall clock)",
        cpu.qps_measured
    );

    println!(
        "\nghost staging used {:.1}% of the GPU-HNSW distance work at comparable recall",
        100.0 * ghost_dists as f64 / hnsw_dists as f64
    );
}
