//! Quickstart: build a PathWeaver index over a synthetic corpus and run a
//! pipelined multi-GPU search.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pathweaver::prelude::*;

fn main() {
    // 1. A workload: base vectors, held-out queries, exact ground truth.
    //    `deep10m_like` mirrors the paper's Deep-10M profile (96-d deep
    //    descriptors) at a laptop-friendly size.
    let profile = DatasetProfile::deep10m_like();
    let workload = profile.workload(Scale::Test, 32, 10, 42);
    println!(
        "workload: {} base vectors, {} queries, dim {}",
        workload.base.len(),
        workload.queries.len(),
        workload.dim()
    );

    // 2. Build the index over two simulated GPUs: per-shard CAGRA-style
    //    graphs plus PathWeaver's three auxiliary structures.
    let config = PathWeaverConfig::test_scale(2);
    let index = PathWeaverIndex::build(&workload.base, &config).expect("index fits the devices");
    println!(
        "built {} shards; build took {:.2}s ({:.1}% PathWeaver overhead)",
        index.num_devices(),
        index.build_report.total_s(),
        index.build_report.overhead_fraction() * 100.0
    );

    // 3. Search with everything enabled: pipelining-based path extension,
    //    ghost staging, direction-guided selection.
    let params = SearchParams { dgs: Some(DgsParams::default()), ..SearchParams::default() };
    let out = index.search_pipelined(&workload.queries, &params);

    // 4. Evaluate.
    let recall = recall_batch(&workload.ground_truth, &out.results, 10);
    println!("recall@10 = {recall:.3}");
    println!("simulated makespan = {:.3} ms, sim-QPS = {:.0}", out.makespan_s * 1e3, out.qps);
    println!(
        "time split: {:.1}% L2 distance, {:.1}% rest of kernel, {:.1}% inter-GPU comm",
        100.0 * out.breakdown.dist_s / out.breakdown.total_s(),
        100.0 * out.breakdown.other_s / out.breakdown.total_s(),
        100.0 * out.breakdown.comm_s / out.breakdown.total_s(),
    );
    println!("top-3 for query 0: {:?}", &out.results[0][..3]);
}
