//! `fvecs` / `ivecs` / `bvecs` file IO.
//!
//! These are the standard TexMex formats used by Sift-1M, Gist-1M and
//! Deep-1B: each record is a little-endian `i32` dimension followed by `dim`
//! values (`f32`, `i32`, or `u8` respectively). With these readers the real
//! corpora from Table 2 drop into the harness unchanged.

use bytes::{Buf, BufMut};
use pathweaver_vector::VectorSet;
use std::io::{self, Read, Write};
use std::path::Path;

/// Errors raised by the TexMex readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structurally invalid file (bad dimension header, truncated record,
    /// or inconsistent dimensions between records).
    Malformed(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Malformed(m) => write!(f, "malformed vecs file: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Reads an `fvecs` stream into a [`VectorSet`], keeping at most `limit`
/// vectors (`None` = all).
pub fn read_fvecs(mut r: impl Read, limit: Option<usize>) -> Result<VectorSet, IoError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut count = 0usize;
    while buf.remaining() >= 4 {
        if let Some(max) = limit {
            if count >= max {
                break;
            }
        }
        let d = buf.get_i32_le();
        if d <= 0 {
            return Err(IoError::Malformed(format!("non-positive dimension {d}")));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(prev) if prev != d => {
                return Err(IoError::Malformed(format!("dimension changed from {prev} to {d}")))
            }
            _ => {}
        }
        if buf.remaining() < 4 * d {
            return Err(IoError::Malformed(format!(
                "truncated record {count}: {} of {} payload bytes",
                buf.remaining(),
                4 * d
            )));
        }
        for _ in 0..d {
            data.push(buf.get_f32_le());
        }
        count += 1;
    }
    if buf.remaining() > 0 && limit.is_none() {
        return Err(IoError::Malformed("trailing bytes".into()));
    }
    let dim = dim.ok_or_else(|| IoError::Malformed("empty file".into()))?;
    Ok(VectorSet::from_flat(dim, data))
}

/// Writes a [`VectorSet`] in `fvecs` format.
pub fn write_fvecs(mut w: impl Write, set: &VectorSet) -> Result<(), IoError> {
    let mut buf = Vec::with_capacity(set.len() * (4 + 4 * set.dim()));
    for row in set.iter() {
        buf.put_i32_le(set.dim() as i32);
        for &v in row {
            buf.put_f32_le(v);
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads an `ivecs` stream (e.g. ground-truth neighbor ids) into per-record
/// `u32` lists.
pub fn read_ivecs(mut r: impl Read, limit: Option<usize>) -> Result<Vec<Vec<u32>>, IoError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    let mut out = Vec::new();
    while buf.remaining() >= 4 {
        if let Some(max) = limit {
            if out.len() >= max {
                break;
            }
        }
        let d = buf.get_i32_le();
        if d < 0 {
            return Err(IoError::Malformed(format!("negative record length {d}")));
        }
        let d = d as usize;
        if buf.remaining() < 4 * d {
            return Err(IoError::Malformed(format!(
                "truncated record {}: {} of {} payload bytes",
                out.len(),
                buf.remaining(),
                4 * d
            )));
        }
        let mut rec = Vec::with_capacity(d);
        for _ in 0..d {
            rec.push(buf.get_i32_le() as u32);
        }
        out.push(rec);
    }
    Ok(out)
}

/// Writes `u32` records in `ivecs` format.
pub fn write_ivecs(mut w: impl Write, records: &[Vec<u32>]) -> Result<(), IoError> {
    let mut buf = Vec::new();
    for rec in records {
        buf.put_i32_le(rec.len() as i32);
        for &v in rec {
            buf.put_i32_le(v as i32);
        }
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a `bvecs` stream (byte vectors, e.g. Sift-1B) into a [`VectorSet`],
/// widening `u8` to `f32`.
pub fn read_bvecs(mut r: impl Read, limit: Option<usize>) -> Result<VectorSet, IoError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut count = 0usize;
    while buf.remaining() >= 4 {
        if let Some(max) = limit {
            if count >= max {
                break;
            }
        }
        let d = buf.get_i32_le();
        if d <= 0 {
            return Err(IoError::Malformed(format!("non-positive dimension {d}")));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(prev) if prev != d => {
                return Err(IoError::Malformed(format!("dimension changed from {prev} to {d}")))
            }
            _ => {}
        }
        if buf.remaining() < d {
            return Err(IoError::Malformed(format!(
                "truncated record {count}: {} of {d} payload bytes",
                buf.remaining()
            )));
        }
        for _ in 0..d {
            data.push(f32::from(buf.get_u8()));
        }
        count += 1;
    }
    let dim = dim.ok_or_else(|| IoError::Malformed("empty file".into()))?;
    Ok(VectorSet::from_flat(dim, data))
}

/// Convenience: reads an `fvecs` file from disk.
pub fn read_fvecs_file(path: impl AsRef<Path>, limit: Option<usize>) -> Result<VectorSet, IoError> {
    read_fvecs(std::fs::File::open(path)?, limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip() {
        let set = VectorSet::from_fn(7, 5, |r, c| (r as f32) * 1.5 - c as f32);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &set).unwrap();
        assert_eq!(buf.len(), 7 * (4 + 5 * 4));
        let back = read_fvecs(&buf[..], None).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn fvecs_limit() {
        let set = VectorSet::from_fn(10, 3, |r, _| r as f32);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &set).unwrap();
        let back = read_fvecs(&buf[..], Some(4)).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.row(3), set.row(3));
    }

    #[test]
    fn ivecs_roundtrip() {
        let recs = vec![vec![1u32, 2, 3], vec![], vec![7u32]];
        let mut buf = Vec::new();
        write_ivecs(&mut buf, &recs).unwrap();
        let back = read_ivecs(&buf[..], None).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn truncated_fvecs_rejected() {
        let set = VectorSet::from_fn(2, 4, |_, _| 1.0);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &set).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_fvecs(&buf[..], None), Err(IoError::Malformed(_))));
    }

    #[test]
    fn inconsistent_dim_rejected() {
        let mut buf = Vec::new();
        buf.put_i32_le(2);
        buf.put_f32_le(0.0);
        buf.put_f32_le(1.0);
        buf.put_i32_le(3);
        buf.put_f32_le(0.0);
        buf.put_f32_le(1.0);
        buf.put_f32_le(2.0);
        assert!(matches!(read_fvecs(&buf[..], None), Err(IoError::Malformed(_))));
    }

    #[test]
    fn empty_fvecs_rejected() {
        assert!(matches!(read_fvecs(&[][..], None), Err(IoError::Malformed(_))));
    }

    #[test]
    fn bvecs_widens_bytes() {
        let mut buf = Vec::new();
        buf.put_i32_le(3);
        buf.put_u8(0);
        buf.put_u8(128);
        buf.put_u8(255);
        let set = read_bvecs(&buf[..], None).unwrap();
        assert_eq!(set.dim(), 3);
        assert_eq!(set.row(0), &[0.0, 128.0, 255.0]);
    }

    #[test]
    fn negative_dim_rejected() {
        let mut buf = Vec::new();
        buf.put_i32_le(-1);
        assert!(matches!(read_fvecs(&buf[..], None), Err(IoError::Malformed(_))));
        let mut buf2 = Vec::new();
        buf2.put_i32_le(-5);
        assert!(matches!(read_ivecs(&buf2[..], None), Err(IoError::Malformed(_))));
    }
}
