//! Recall@k (paper Eq. 4).

use crate::ground_truth::GroundTruth;

/// Recall@k for one query: `|exact ∩ approx| / |exact|`.
///
/// Only the first `k` entries of each list are considered. Duplicate ids in
/// `approx` count once.
pub fn recall_at_k(exact: &[u32], approx: &[u32], k: usize) -> f64 {
    let k = k.min(exact.len());
    if k == 0 {
        return 0.0;
    }
    let truth: std::collections::HashSet<u32> = exact[..k].iter().copied().collect();
    let mut seen = std::collections::HashSet::with_capacity(k);
    let mut hits = 0usize;
    for &id in approx.iter().take(k) {
        if truth.contains(&id) && seen.insert(id) {
            hits += 1;
        }
    }
    hits as f64 / k as f64
}

/// Mean Recall@k over a batch: `results[q]` is the approximate id list of
/// query `q`.
///
/// # Panics
///
/// Panics if `results.len() != gt.num_queries()`.
pub fn recall_batch(gt: &GroundTruth, results: &[Vec<u32>], k: usize) -> f64 {
    assert_eq!(results.len(), gt.num_queries(), "result batch size mismatch");
    if results.is_empty() {
        return 0.0;
    }
    let sum: f64 =
        results.iter().enumerate().map(|(q, r)| recall_at_k(gt.neighbors(q), r, k)).sum();
    sum / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recall() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[3, 1, 2], 3), 1.0);
    }

    #[test]
    fn partial_recall() {
        assert_eq!(recall_at_k(&[1, 2, 3, 4], &[1, 2, 9, 9], 4), 0.5);
    }

    #[test]
    fn zero_recall() {
        assert_eq!(recall_at_k(&[1, 2], &[3, 4], 2), 0.0);
    }

    #[test]
    fn duplicates_in_approx_count_once() {
        assert_eq!(recall_at_k(&[1, 2, 3, 4], &[1, 1, 1, 1], 4), 0.25);
    }

    #[test]
    fn k_truncates_both_lists() {
        // Only the top-2 of each side matter at k=2.
        assert_eq!(recall_at_k(&[1, 2, 3], &[2, 9, 1], 2), 0.5);
    }

    #[test]
    fn batch_averages() {
        let gt =
            GroundTruth::from_lists(2, vec![vec![(0.0, 0), (1.0, 1)], vec![(0.0, 5), (1.0, 6)]]);
        let results = vec![vec![0u32, 1], vec![9u32, 9]];
        assert_eq!(recall_batch(&gt, &results, 2), 0.5);
    }

    #[test]
    fn empty_approx_is_zero() {
        assert_eq!(recall_at_k(&[1, 2, 3], &[], 3), 0.0);
    }
}
