//! Per-dataset profiles mirroring the paper's Table 2.
//!
//! Each profile fixes the corpus's dimensionality and an approximate cluster
//! structure, and defines three size scales:
//!
//! - [`Scale::Test`] — hundreds of points, for unit/integration tests.
//! - [`Scale::Bench`] — tens to hundreds of thousands, for the benchmark
//!   harness (minutes on a laptop CPU).
//! - [`Scale::Paper`] — the paper's original point counts, recorded for
//!   documentation; only reachable with the real corpora via [`crate::io`].

use crate::ground_truth::brute_force_knn;
use crate::query::split_queries;
use crate::synthetic::{Distribution, SyntheticSpec};
use crate::Workload;
use serde::{Deserialize, Serialize};

/// Size scale at which a profile is materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny sets for tests (sub-second generation and ground truth).
    Test,
    /// Laptop-scale sets for the benchmark harness.
    Bench,
    /// The paper's original sizes (documentation only).
    Paper,
}

/// A named dataset profile from the paper's Table 2.
///
/// Serializes (for experiment records) but deliberately does not deserialize:
/// profiles form a fixed static catalog addressed through the `const fn`
/// constructors, and the `&'static str` name cannot be materialized from
/// parsed input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DatasetProfile {
    /// Profile name, e.g. `sift-like`.
    pub name: &'static str,
    /// Vector dimensionality (matches the paper exactly).
    pub dim: usize,
    /// The paper's corpus size.
    pub paper_len: usize,
    /// Bench-scale corpus size.
    pub bench_len: usize,
    /// Test-scale corpus size.
    pub test_len: usize,
    /// Number of synthetic clusters at bench scale.
    pub clusters: usize,
    /// Cluster standard deviation.
    pub std: f32,
    /// Whether points are sphere-normalized (text-embedding style).
    pub sphere: bool,
    /// Whether the paper uses this dataset in the multi-GPU evaluation.
    pub multi_gpu_target: bool,
}

impl DatasetProfile {
    /// Profile of Sift-1M: 128-d SIFT descriptors (single-GPU target).
    pub const fn sift_like() -> Self {
        Self {
            name: "sift-like",
            dim: 128,
            paper_len: 1_000_000,
            bench_len: 20_000,
            test_len: 800,
            clusters: 60,
            std: 0.18,
            sphere: false,
            multi_gpu_target: false,
        }
    }

    /// Profile of Gist-1M: 960-d GIST features (single-GPU target).
    pub const fn gist_like() -> Self {
        Self {
            name: "gist-like",
            dim: 960,
            paper_len: 1_000_000,
            bench_len: 4_000,
            test_len: 300,
            clusters: 30,
            std: 0.15,
            sphere: false,
            multi_gpu_target: false,
        }
    }

    /// Profile of Deep-10M: 96-d deep descriptors (single- and multi-GPU).
    pub const fn deep10m_like() -> Self {
        Self {
            name: "deep10m-like",
            dim: 96,
            paper_len: 10_000_000,
            bench_len: 30_000,
            test_len: 1_000,
            clusters: 100,
            std: 0.16,
            sphere: false,
            multi_gpu_target: true,
        }
    }

    /// Profile of Deep-50M: the first 50M of Deep-1B (multi-GPU target).
    pub const fn deep50m_like() -> Self {
        Self {
            name: "deep50m-like",
            dim: 96,
            paper_len: 50_000_000,
            bench_len: 60_000,
            test_len: 1_600,
            clusters: 150,
            std: 0.16,
            sphere: false,
            multi_gpu_target: true,
        }
    }

    /// Profile of Wiki-10M: 768-d text embeddings (multi-GPU target).
    pub const fn wiki_like() -> Self {
        Self {
            name: "wiki-like",
            dim: 768,
            paper_len: 10_000_000,
            bench_len: 6_000,
            test_len: 300,
            clusters: 40,
            std: 0.25,
            sphere: true,
            multi_gpu_target: true,
        }
    }

    /// All profiles in Table 2 order.
    pub fn all() -> Vec<Self> {
        vec![
            Self::sift_like(),
            Self::gist_like(),
            Self::deep10m_like(),
            Self::deep50m_like(),
            Self::wiki_like(),
        ]
    }

    /// The single-GPU evaluation set (paper Fig 10): Sift, Gist, Deep-10M.
    pub fn single_gpu_targets() -> Vec<Self> {
        vec![Self::sift_like(), Self::gist_like(), Self::deep10m_like()]
    }

    /// The multi-GPU evaluation set (paper Fig 8): Wiki, Deep-10M, Deep-50M.
    pub fn multi_gpu_targets() -> Vec<Self> {
        vec![Self::wiki_like(), Self::deep10m_like(), Self::deep50m_like()]
    }

    /// Returns the corpus size at `scale`.
    pub fn len_at(&self, scale: Scale) -> usize {
        match scale {
            Scale::Test => self.test_len,
            Scale::Bench => self.bench_len,
            Scale::Paper => self.paper_len,
        }
    }

    /// Returns the synthetic spec for the base set at `scale`.
    ///
    /// `Scale::Paper` is intentionally not generatable (it would synthesize
    /// tens of gigabytes); use [`crate::io`] with the real corpus instead.
    ///
    /// # Panics
    ///
    /// Panics when called with [`Scale::Paper`].
    pub fn base_spec(&self, scale: Scale, seed: u64) -> SyntheticSpec {
        assert!(
            scale != Scale::Paper,
            "paper-scale corpora must be loaded from files, not synthesized"
        );
        let len = self.len_at(scale);
        let clusters = match scale {
            Scale::Test => self.clusters.clamp(2, 8),
            _ => self.clusters,
        };
        let distribution = if self.sphere {
            Distribution::Sphere { clusters, std: self.std }
        } else {
            Distribution::Gmm { clusters, std: self.std }
        };
        SyntheticSpec { dim: self.dim, len, distribution, seed }
    }

    /// Materializes the full workload: base set, `n_queries` held-out queries
    /// and exact ground truth for `k` neighbors.
    ///
    /// Queries are drawn from the same distribution and held out of the base
    /// set (the standard ANNS benchmark protocol).
    pub fn workload(&self, scale: Scale, n_queries: usize, k: usize, seed: u64) -> Workload {
        let spec = self.base_spec(scale, pathweaver_util::seed_from_parts(seed, self.name, 0));
        let all = SyntheticSpec { len: spec.len + n_queries, ..spec }.generate();
        let (base, queries) = split_queries(
            &all,
            n_queries,
            pathweaver_util::seed_from_parts(seed, "query-split", 1),
        );
        let ground_truth = brute_force_knn(&base, &queries, k);
        Workload { name: self.name.to_string(), base, queries, ground_truth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_dimensions_match_paper() {
        assert_eq!(DatasetProfile::sift_like().dim, 128);
        assert_eq!(DatasetProfile::gist_like().dim, 960);
        assert_eq!(DatasetProfile::deep10m_like().dim, 96);
        assert_eq!(DatasetProfile::deep50m_like().dim, 96);
        assert_eq!(DatasetProfile::wiki_like().dim, 768);
    }

    #[test]
    fn table2_paper_sizes_match() {
        assert_eq!(DatasetProfile::sift_like().paper_len, 1_000_000);
        assert_eq!(DatasetProfile::deep50m_like().paper_len, 50_000_000);
        assert_eq!(DatasetProfile::wiki_like().paper_len, 10_000_000);
    }

    #[test]
    fn workload_shapes() {
        let w = DatasetProfile::sift_like().workload(Scale::Test, 10, 5, 42);
        assert_eq!(w.base.len(), DatasetProfile::sift_like().test_len);
        assert_eq!(w.queries.len(), 10);
        assert_eq!(w.ground_truth.k(), 5);
        assert_eq!(w.ground_truth.num_queries(), 10);
        assert_eq!(w.dim(), 128);
    }

    #[test]
    fn workload_is_deterministic() {
        let p = DatasetProfile::deep10m_like();
        let a = p.workload(Scale::Test, 5, 3, 1);
        let b = p.workload(Scale::Test, 5, 3, 1);
        assert_eq!(a.base, b.base);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    #[should_panic(expected = "paper-scale")]
    fn paper_scale_not_synthesized() {
        let _ = DatasetProfile::sift_like().base_spec(Scale::Paper, 0);
    }

    #[test]
    fn target_groups() {
        assert_eq!(DatasetProfile::single_gpu_targets().len(), 3);
        assert!(DatasetProfile::multi_gpu_targets().iter().all(|p| p.multi_gpu_target));
    }
}
