//! Dataset synthesis, ground truth and evaluation metrics.
//!
//! The paper evaluates on Sift-1M, Gist-1M, Deep-10M, Deep-50M and Wiki-10M
//! (Table 2). Those corpora are multi-gigabyte downloads, so this crate ships
//! two paths:
//!
//! - [`synthetic`] + [`profiles`]: clustered Gaussian-mixture generators with
//!   per-dataset profiles that keep each corpus's *dimensionality* and
//!   cluster structure while scaling the point count to laptop size. Graph
//!   ANNS iteration counts track dimension and local structure rather than
//!   raw size (the paper itself observes Deep-10M and Deep-50M converge in
//!   similar iteration counts), so the reproduced curves keep their shape.
//! - [`io`]: `fvecs`/`ivecs`/`bvecs` readers and writers, so the real corpora
//!   drop in unchanged when available.
//!
//! [`ground_truth`] computes exact brute-force k-NN (the recall denominator)
//! and [`recall`] implements Recall@k exactly as Eq. 4 of the paper.

#![forbid(unsafe_code)]

pub mod ground_truth;
pub mod io;
pub mod profiles;
pub mod query;
pub mod recall;
pub mod synthetic;

pub use ground_truth::{brute_force_knn, GroundTruth};
pub use profiles::{DatasetProfile, Scale};
pub use recall::{recall_at_k, recall_batch};
pub use synthetic::{Distribution, SyntheticSpec};

/// A fully materialized benchmark workload: base vectors, query vectors and
/// exact ground truth.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Profile name, e.g. `sift-like`.
    pub name: String,
    /// Base (indexed) vectors.
    pub base: pathweaver_vector::VectorSet,
    /// Query vectors.
    pub queries: pathweaver_vector::VectorSet,
    /// Exact k-NN of each query over `base`.
    pub ground_truth: GroundTruth,
}

impl Workload {
    /// Dimensionality shared by base and query vectors.
    pub fn dim(&self) -> usize {
        self.base.dim()
    }
}
