//! Synthetic vector generation.
//!
//! Real ANNS corpora (SIFT descriptors, GIST features, deep-net embeddings)
//! are strongly clustered: points concentrate around many local modes. A
//! Gaussian-mixture generator reproduces exactly the property graph-based
//! search exploits (locality / navigability). A `Uniform` distribution is
//! also provided as the hard, structure-free case.

use pathweaver_vector::VectorSet;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape of the synthetic point distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Gaussian mixture with *chained* centers (a Gaussian random walk), so
    /// adjacent clusters overlap and the corpus stays navigable like real
    /// embedding manifolds; points are isotropic Gaussians of the given
    /// standard deviation around a uniformly chosen center.
    Gmm {
        /// Number of mixture components.
        clusters: usize,
        /// Isotropic standard deviation of each component.
        std: f32,
    },
    /// Uniform over `[-1, 1]^d` (structure-free stress case).
    Uniform,
    /// Unit hypersphere surface (normalized Gaussian), modelling normalized
    /// text embeddings such as the Wiki corpus.
    Sphere {
        /// Number of directional clusters (von-Mises-like via normalized GMM).
        clusters: usize,
        /// Angular spread of each cluster before normalization.
        std: f32,
    },
}

/// A reproducible specification of a synthetic vector set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Vector dimensionality.
    pub dim: usize,
    /// Number of vectors.
    pub len: usize,
    /// Distribution shape.
    pub distribution: Distribution,
    /// RNG seed; equal specs generate identical sets.
    pub seed: u64,
}

impl SyntheticSpec {
    /// Generates the vector set described by this spec.
    ///
    /// The result uses the aligned storage mode (64-byte rows, zero-padded
    /// stride) so the SIMD distance kernels never straddle a cache line at a
    /// row start; contents and distances are identical to compact storage.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or a GMM/Sphere spec has zero clusters.
    pub fn generate(&self) -> VectorSet {
        self.generate_compact().into_aligned()
    }

    /// Generates into the compact (unpadded) storage mode.
    fn generate_compact(&self) -> VectorSet {
        assert!(self.dim > 0, "dim must be positive");
        let mut rng = pathweaver_util::small_rng(self.seed);
        match self.distribution {
            Distribution::Gmm { clusters, std } => {
                assert!(clusters > 0, "clusters must be positive");
                let centers = gen_centers(&mut rng, clusters, self.dim, std);
                gen_gmm(&mut rng, self.len, self.dim, &centers, std, false)
            }
            Distribution::Uniform => {
                let mut data = Vec::with_capacity(self.len * self.dim);
                for _ in 0..self.len * self.dim {
                    data.push(rng.gen_range(-1.0f32..1.0));
                }
                VectorSet::from_flat(self.dim, data)
            }
            Distribution::Sphere { clusters, std } => {
                assert!(clusters > 0, "clusters must be positive");
                let mut centers = gen_centers(&mut rng, clusters, self.dim, std);
                for c in 0..clusters {
                    pathweaver_vector::norm::normalize(centers.row_mut(c));
                }
                gen_gmm(&mut rng, self.len, self.dim, &centers, std, true)
            }
        }
    }
}

/// Draws `clusters` centers as a Gaussian random walk.
///
/// Real embedding corpora are locally clustered but globally *navigable*:
/// clusters overlap their neighbors rather than forming isolated islands
/// (independent uniform centers in high dimension would be mutually distant
/// archipelagos no proximity graph could traverse). Chaining the centers —
/// each a bounded step from the previous — reproduces that manifold-like
/// structure, which is precisely the property graph ANNS exploits.
fn gen_centers(rng: &mut SmallRng, clusters: usize, dim: usize, std: f32) -> VectorSet {
    let mut data = Vec::with_capacity(clusters * dim);
    let mut current = vec![0.0f32; dim];
    for d in current.iter_mut() {
        *d = rng.gen_range(-1.0f32..1.0);
    }
    // Per-coordinate step ≈ 1.2 σ puts adjacent centers ~1.2 σ√d apart —
    // comparable to the cluster radius σ√d, so neighbors overlap in their
    // tails without collapsing into one blob.
    let step = 1.2 * std;
    for _ in 0..clusters {
        data.extend_from_slice(&current);
        for d in current.iter_mut() {
            *d += step * standard_normal(rng);
            *d = d.clamp(-3.0, 3.0);
        }
    }
    VectorSet::from_flat(dim, data)
}

/// Draws `len` points around uniformly-chosen centers; optionally normalizes
/// each point to the unit sphere.
fn gen_gmm(
    rng: &mut SmallRng,
    len: usize,
    dim: usize,
    centers: &VectorSet,
    std: f32,
    normalize: bool,
) -> VectorSet {
    let mut data = Vec::with_capacity(len * dim);
    for _ in 0..len {
        let c = centers.row(rng.gen_range(0..centers.len()));
        let start = data.len();
        for &cv in c.iter().take(dim) {
            data.push(cv + std * standard_normal(rng));
        }
        if normalize {
            pathweaver_vector::norm::normalize(&mut data[start..]);
        }
    }
    VectorSet::from_flat(dim, data)
}

/// Samples one standard normal variate via Box–Muller.
///
/// `rand_distr` is outside the approved dependency set, so the two-uniform
/// transform is implemented directly.
pub fn standard_normal(rng: &mut SmallRng) -> f32 {
    // Avoid ln(0) by sampling u1 from the open interval.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let spec = SyntheticSpec {
            dim: 16,
            len: 100,
            distribution: Distribution::Gmm { clusters: 4, std: 0.1 },
            seed: 7,
        };
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticSpec { dim: 8, len: 50, distribution: Distribution::Uniform, seed: 1 };
        let b = SyntheticSpec { seed: 2, ..a };
        assert_ne!(a.generate(), b.generate());
    }

    #[test]
    fn gmm_is_clustered() {
        // With tight clusters, the average nearest-point distance must be far
        // below the average pairwise distance.
        let spec = SyntheticSpec {
            dim: 12,
            len: 300,
            distribution: Distribution::Gmm { clusters: 5, std: 0.02 },
            seed: 3,
        };
        let set = spec.generate();
        let mut near = 0.0f64;
        let mut all = 0.0f64;
        let mut all_n = 0u64;
        for i in 0..set.len() {
            let mut best = f32::INFINITY;
            for j in 0..set.len() {
                if i == j {
                    continue;
                }
                let d = pathweaver_vector::l2_squared(set.row(i), set.row(j));
                best = best.min(d);
                all += f64::from(d);
                all_n += 1;
            }
            near += f64::from(best);
        }
        let near_avg = near / set.len() as f64;
        let all_avg = all / all_n as f64;
        // Chained centers keep the global spread moderate, so the contrast
        // is a few-fold rather than orders of magnitude.
        assert!(near_avg * 3.0 < all_avg, "near {near_avg} vs all {all_avg}");
    }

    #[test]
    fn sphere_points_are_unit() {
        let spec = SyntheticSpec {
            dim: 24,
            len: 64,
            distribution: Distribution::Sphere { clusters: 3, std: 0.2 },
            seed: 5,
        };
        let set = spec.generate();
        for row in set.iter() {
            let n = pathweaver_vector::norm::norm(row);
            assert!((n - 1.0).abs() < 1e-4, "norm {n}");
        }
    }

    #[test]
    fn uniform_fills_range() {
        let spec =
            SyntheticSpec { dim: 4, len: 2000, distribution: Distribution::Uniform, seed: 9 };
        let set = spec.generate();
        // Aligned storage has no flat view; fold over logical rows (padding
        // lanes would otherwise drag `min` to 0).
        let min = set.iter().flatten().cloned().fold(f32::INFINITY, f32::min);
        let max = set.iter().flatten().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(min < -0.9 && max > 0.9);
        assert!(min >= -1.0 && max < 1.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = pathweaver_util::small_rng(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
