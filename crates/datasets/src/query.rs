//! Query sampling.

use pathweaver_vector::VectorSet;
use rand::seq::SliceRandom;

/// Splits `all` into a base set and `n_queries` held-out queries.
///
/// Rows are chosen uniformly without replacement with the given `seed`; the
/// remaining rows form the base set in their original relative order.
///
/// # Panics
///
/// Panics if `n_queries >= all.len()`.
pub fn split_queries(all: &VectorSet, n_queries: usize, seed: u64) -> (VectorSet, VectorSet) {
    assert!(n_queries < all.len(), "cannot hold out {} of {} rows", n_queries, all.len());
    let mut idx: Vec<usize> = (0..all.len()).collect();
    let mut rng = pathweaver_util::small_rng(seed);
    idx.shuffle(&mut rng);
    let mut query_rows = idx[..n_queries].to_vec();
    let mut base_rows = idx[n_queries..].to_vec();
    query_rows.sort_unstable();
    base_rows.sort_unstable();
    (all.gather(&base_rows), all.gather(&query_rows))
}

/// Generates out-of-distribution queries by perturbing base rows with noise
/// of the given standard deviation (extension: OOD robustness studies).
pub fn perturbed_queries(
    base: &VectorSet,
    n_queries: usize,
    noise_std: f32,
    seed: u64,
) -> VectorSet {
    let mut rng = pathweaver_util::small_rng(seed);
    let mut out = VectorSet::empty(base.dim());
    let mut buf = vec![0.0f32; base.dim()];
    for _ in 0..n_queries {
        let r = rand::Rng::gen_range(&mut rng, 0..base.len());
        for (d, v) in buf.iter_mut().enumerate() {
            *v = base.row(r)[d] + noise_std * crate::synthetic::standard_normal(&mut rng);
        }
        out.push(&buf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> VectorSet {
        VectorSet::from_fn(100, 4, |r, c| (r * 4 + c) as f32)
    }

    #[test]
    fn split_partitions_rows() {
        let all = sample_set();
        let (base, queries) = split_queries(&all, 10, 3);
        assert_eq!(base.len(), 90);
        assert_eq!(queries.len(), 10);
        // Every original row appears exactly once across the two halves
        // (rows here are unique by construction).
        let mut seen: Vec<f32> = base.iter().chain(queries.iter()).map(|r| r[0]).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f32> = (0..100).map(|r| (r * 4) as f32).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn split_is_deterministic() {
        let all = sample_set();
        let (b1, q1) = split_queries(&all, 7, 42);
        let (b2, q2) = split_queries(&all, 7, 42);
        assert_eq!(b1, b2);
        assert_eq!(q1, q2);
    }

    #[test]
    #[should_panic(expected = "cannot hold out")]
    fn split_rejects_oversized_holdout() {
        let all = sample_set();
        let _ = split_queries(&all, 100, 0);
    }

    #[test]
    fn perturbed_queries_stay_near_base() {
        let base = VectorSet::from_fn(10, 8, |r, _| r as f32);
        let q = perturbed_queries(&base, 20, 0.01, 5);
        assert_eq!(q.len(), 20);
        for row in q.iter() {
            // Each query must be within a tight ball of some base row.
            let best = (0..base.len())
                .map(|i| pathweaver_vector::l2_squared(base.row(i), row))
                .fold(f32::INFINITY, f32::min);
            assert!(best < 0.1, "query strayed: {best}");
        }
    }
}
