//! Exact brute-force k-NN ground truth.

use pathweaver_util::{parallel_map, TopK};
use pathweaver_vector::{l2_squared_rows, VectorSet};
use serde::{Deserialize, Serialize};

/// Exact k-nearest-neighbor results for a batch of queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    k: usize,
    /// Row-major `num_queries × k` neighbor ids, ascending by distance.
    ids: Vec<u32>,
    /// Matching squared-L2 distances.
    dists: Vec<f32>,
}

impl GroundTruth {
    /// Builds ground truth from per-query sorted `(distance, id)` lists.
    ///
    /// # Panics
    ///
    /// Panics if any list is shorter than `k`.
    pub fn from_lists(k: usize, lists: Vec<Vec<(f32, u64)>>) -> Self {
        let mut ids = Vec::with_capacity(lists.len() * k);
        let mut dists = Vec::with_capacity(lists.len() * k);
        for list in &lists {
            assert!(list.len() >= k, "ground-truth list shorter than k");
            for &(d, id) in list.iter().take(k) {
                ids.push(id as u32);
                dists.push(d);
            }
        }
        Self { k, ids, dists }
    }

    /// Returns `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns the number of queries covered.
    pub fn num_queries(&self) -> usize {
        self.ids.len() / self.k
    }

    /// Returns the exact neighbor ids of query `q`, ascending by distance.
    pub fn neighbors(&self, q: usize) -> &[u32] {
        &self.ids[q * self.k..(q + 1) * self.k]
    }

    /// Returns the exact squared distances of query `q`.
    pub fn distances(&self, q: usize) -> &[f32] {
        &self.dists[q * self.k..(q + 1) * self.k]
    }
}

/// Computes exact k-NN of every query over `base` by parallel brute force.
///
/// # Panics
///
/// Panics if `k == 0`, `k > base.len()`, or dimensions differ.
pub fn brute_force_knn(base: &VectorSet, queries: &VectorSet, k: usize) -> GroundTruth {
    assert!(k > 0, "k must be positive");
    assert!(k <= base.len(), "k {} exceeds base size {}", k, base.len());
    assert_eq!(base.dim(), queries.dim(), "dimension mismatch");
    // The scan runs through the blocked SIMD kernel in row chunks; pushes
    // stay in ascending-id order, so ties resolve exactly as the historical
    // per-row loop did (results are bitwise identical either way).
    const CHUNK: usize = 256;
    let lists = parallel_map(queries.len(), |q| {
        let query = queries.row(q);
        let mut top = TopK::new(k);
        let mut dists = [0.0f32; CHUNK];
        let mut i = 0;
        while i < base.len() {
            let n = CHUNK.min(base.len() - i);
            l2_squared_rows(base, i, query, &mut dists[..n]);
            for (j, &d) in dists[..n].iter().enumerate() {
                top.push(d, (i + j) as u64);
            }
            i += n;
        }
        top.into_sorted()
    });
    GroundTruth::from_lists(k, lists)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_neighbors_on_grid() {
        // Base points on a line; the query at 2.1 has neighbors 2, 3, 1.
        let base = VectorSet::from_fn(10, 1, |r, _| r as f32);
        let queries = VectorSet::from_flat(1, vec![2.1]);
        let gt = brute_force_knn(&base, &queries, 3);
        assert_eq!(gt.neighbors(0), &[2, 3, 1]);
        let d = gt.distances(0);
        assert!((d[0] - 0.01).abs() < 1e-5);
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn distances_ascend_for_all_queries() {
        let base = VectorSet::from_fn(200, 6, |r, c| ((r * 31 + c * 17) % 50) as f32 * 0.1);
        let queries = VectorSet::from_fn(8, 6, |r, c| ((r * 13 + c * 7) % 50) as f32 * 0.1);
        let gt = brute_force_knn(&base, &queries, 10);
        for q in 0..8 {
            let d = gt.distances(q);
            assert!(d.windows(2).all(|w| w[0] <= w[1]), "query {q} not sorted");
        }
    }

    #[test]
    fn self_query_returns_self_first() {
        let base = VectorSet::from_fn(50, 4, |r, c| (r * 4 + c) as f32);
        let queries = base.gather(&[17]);
        let gt = brute_force_knn(&base, &queries, 1);
        assert_eq!(gt.neighbors(0), &[17]);
        assert_eq!(gt.distances(0), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds base size")]
    fn k_larger_than_base_panics() {
        let base = VectorSet::from_fn(3, 2, |_, _| 0.0);
        let queries = VectorSet::from_fn(1, 2, |_, _| 0.0);
        let _ = brute_force_knn(&base, &queries, 4);
    }

    #[test]
    fn matches_full_sort_reference() {
        let base = VectorSet::from_fn(120, 8, |r, c| ((r * 37 + c * 11) % 23) as f32);
        let queries = VectorSet::from_fn(5, 8, |r, c| ((r * 5 + c * 3) % 23) as f32);
        let k = 7;
        let gt = brute_force_knn(&base, &queries, k);
        for q in 0..queries.len() {
            let mut pairs: Vec<(f32, u32)> = (0..base.len())
                .map(|i| (pathweaver_vector::l2_squared(base.row(i), queries.row(q)), i as u32))
                .collect();
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            let want: Vec<u32> = pairs.iter().take(k).map(|p| p.1).collect();
            assert_eq!(gt.neighbors(q), want.as_slice(), "query {q}");
        }
    }
}
