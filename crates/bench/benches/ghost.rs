//! Ghost staging (Fig 14/18 at bench-kernel scale): ghost-shard build cost
//! and search cost across sampling ratios.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathweaver_core::prelude::*;
use pathweaver_datasets::{DatasetProfile, Scale};
use pathweaver_graph::{GhostParams, GhostShard};

fn bench_ghost_build(c: &mut Criterion) {
    let profile = DatasetProfile::deep10m_like();
    let w = profile.workload(Scale::Test, 4, 5, 17);
    let mut g = c.benchmark_group("ghost_build");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for ratio in [0.01f64, 0.1] {
        let params = GhostParams { sampling_ratio: ratio, min_nodes: 8, degree: 8, seed: 1 };
        g.bench_function(format!("ratio_{ratio}"), |b| {
            b.iter(|| black_box(GhostShard::build(&w.base, &params)))
        });
    }
    g.finish();
}

fn bench_ghost_search(c: &mut Criterion) {
    let profile = DatasetProfile::deep10m_like();
    let w = profile.workload(Scale::Test, 16, 10, 19);
    let params = SearchParams { hash_bits: 13, ..SearchParams::default() };
    let mut g = c.benchmark_group("ghost_search");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for ratio in [0.01f64, 0.1] {
        let mut cfg = PathWeaverConfig::test_scale(1);
        if let Some(gp) = cfg.ghost.as_mut() {
            gp.sampling_ratio = ratio;
        }
        let idx = PathWeaverIndex::build(&w.base, &cfg).unwrap();
        g.bench_function(format!("ratio_{ratio}"), |b| {
            b.iter(|| black_box(idx.search_pipelined(&w.queries, &params)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ghost_build, bench_ghost_search);
criterion_main!(benches);
