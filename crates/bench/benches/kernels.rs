//! Micro-benchmarks of the primitives the paper's Fig 2 breakdown is made
//! of: L2 distance at each dataset's dimensionality, sign-bit encoding and
//! matching (the DGS fast path), priority-buffer insertion, and visited-hash
//! probing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathweaver_search::{PriorityBuffer, VisitedHash};
use pathweaver_vector::{hamming_matches, l2_squared, sign_code, sign_code_words};

fn random_vec(dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = pathweaver_util::small_rng(seed);
    (0..dim).map(|_| rand::Rng::gen_range(&mut rng, -1.0f32..1.0)).collect()
}

fn bench_l2(c: &mut Criterion) {
    let mut g = c.benchmark_group("l2_squared");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for dim in [96usize, 128, 768, 960] {
        let a = random_vec(dim, 1);
        let b = random_vec(dim, 2);
        g.bench_function(format!("dim{dim}"), |bench| {
            bench.iter(|| black_box(l2_squared(black_box(&a), black_box(&b))))
        });
    }
    g.finish();
}

fn bench_signbits(c: &mut Criterion) {
    let mut g = c.benchmark_group("signbit");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for dim in [96usize, 960] {
        let a = random_vec(dim, 3);
        let b = random_vec(dim, 4);
        let words = sign_code_words(dim);
        let mut code = vec![0u32; words];
        g.bench_function(format!("encode_dim{dim}"), |bench| {
            bench.iter(|| sign_code(black_box(&a), black_box(&b), black_box(&mut code)))
        });
        let mut other = vec![0u32; words];
        sign_code(&b, &a, &mut other);
        g.bench_function(format!("match_dim{dim}"), |bench| {
            bench.iter(|| black_box(hamming_matches(black_box(&code), black_box(&other), dim)))
        });
        // The comparison the paper makes implicitly: one exact distance vs
        // one code match. The match should be orders of magnitude cheaper.
    }
    g.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("priority_buffer");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let mut rng = pathweaver_util::small_rng(5);
    let entries: Vec<(f32, u32)> =
        (0..1000u32).map(|i| (rand::Rng::gen_range(&mut rng, 0.0f32..100.0), i)).collect();
    g.bench_function("push_1000_into_64", |bench| {
        bench.iter(|| {
            let mut q = PriorityBuffer::new(64);
            for &(d, id) in &entries {
                q.push(d, id);
            }
            black_box(q.top_k(10))
        })
    });
    g.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("visited_hash");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("insert_1000_into_13bit", |bench| {
        bench.iter(|| {
            let mut h = VisitedHash::new(13);
            for id in 0..1000u32 {
                black_box(h.insert(id * 17 + 3));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_l2, bench_signbits, bench_queue, bench_hash);
criterion_main!(benches);
