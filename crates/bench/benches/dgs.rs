//! Direction-guided selection (Fig 15/16 at bench-kernel scale): kernel
//! wall time across keep ratios, against the exact (no-filter) kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathweaver_core::prelude::*;
use pathweaver_datasets::{DatasetProfile, Scale};

fn bench_dgs(c: &mut Criterion) {
    let profile = DatasetProfile::sift_like();
    let w = profile.workload(Scale::Test, 16, 10, 23);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(1)).unwrap();
    let base = SearchParams { hash_bits: 13, ..SearchParams::default() };

    let mut g = c.benchmark_group("dgs_keep_ratio");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("exact", |b| b.iter(|| black_box(idx.search_pipelined(&w.queries, &base))));
    for keep in [0.7f64, 0.5, 0.3] {
        let params = SearchParams {
            dgs: Some(DgsParams { keep_ratio: keep, cooldown_ratio: 0.3, threshold_mode: false }),
            ..base
        };
        g.bench_function(format!("keep_{keep}"), |b| {
            b.iter(|| black_box(idx.search_pipelined(&w.queries, &params)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dgs);
criterion_main!(benches);
