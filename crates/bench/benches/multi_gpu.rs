//! Multi-GPU orchestration throughput (Fig 8/9 at bench-kernel scale):
//! wall-clock cost of the pipelined ring executor vs the sharded baseline,
//! plus a forward-width ablation (the paper forwards exactly one result per
//! query; DESIGN.md flags the width as an ablation axis).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathweaver_core::prelude::*;
use pathweaver_datasets::{DatasetProfile, Scale};

fn bench_multi_gpu(c: &mut Criterion) {
    let profile = DatasetProfile::deep10m_like();
    let w = profile.workload(Scale::Test, 24, 10, 11);
    let config = PathWeaverConfig::test_scale(4);
    let idx = PathWeaverIndex::build(&w.base, &config).unwrap();
    let params = SearchParams { hash_bits: 13, ..SearchParams::default() };

    let mut g = c.benchmark_group("multi_gpu_search");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("naive_sharding", |bench| {
        bench.iter(|| black_box(idx.search_naive(&w.queries, &params)))
    });
    g.bench_function("pipelined", |bench| {
        bench.iter(|| black_box(idx.search_pipelined(&w.queries, &params)))
    });

    for width in [1usize, 4] {
        let mut cfg = PathWeaverConfig::test_scale(4);
        cfg.forward_width = width;
        let idx_w = PathWeaverIndex::build(&w.base, &cfg).unwrap();
        g.bench_function(format!("pipelined_forward{width}"), |bench| {
            bench.iter(|| black_box(idx_w.search_pipelined(&w.queries, &params)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_multi_gpu);
criterion_main!(benches);
