//! Graph construction (Fig 17 at bench-kernel scale): NN-descent, the
//! CAGRA-style optimization, direction-table generation, inter-shard table
//! build, and the HNSW baseline build.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathweaver_datasets::{DatasetProfile, Scale};
use pathweaver_graph::{
    cagra_build, nn_descent, CagraBuildParams, DirectionTable, Hnsw, HnswParams, InterShardParams,
    InterShardTable, NnDescentParams,
};

fn bench_build(c: &mut Criterion) {
    let profile = DatasetProfile::deep10m_like();
    let w = profile.workload(Scale::Test, 4, 5, 29);
    let mut g = c.benchmark_group("graph_build");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    g.bench_function("nn_descent_k16", |b| {
        let p = NnDescentParams { k: 16, ..Default::default() };
        b.iter(|| black_box(nn_descent(&w.base, &p)))
    });
    g.bench_function("cagra_build_d16", |b| {
        b.iter(|| black_box(cagra_build(&w.base, &CagraBuildParams::with_degree(16))))
    });

    let graph = cagra_build(&w.base, &CagraBuildParams::with_degree(16));
    g.bench_function("direction_table", |b| {
        b.iter(|| black_box(DirectionTable::build(&w.base, &graph)))
    });
    g.bench_function("intershard_table", |b| {
        // Self-to-self stands in for adjacent shards: same cost profile.
        b.iter(|| {
            black_box(InterShardTable::build(
                &w.base,
                &w.base,
                &graph,
                &InterShardParams { beam: 16, entries: 8, seed: 1 },
            ))
        })
    });
    g.bench_function("hnsw_build_m8", |b| {
        let p = HnswParams { m: 8, ef_construction: 48, seed: 2 };
        b.iter(|| black_box(Hnsw::build(&w.base, &p)))
    });
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
