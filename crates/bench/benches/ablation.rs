//! Ablation rungs (Fig 11 at bench-kernel scale): wall-clock kernel time of
//! the baseline configuration, +GS, and +DGS on one simulated device.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathweaver_core::prelude::*;
use pathweaver_datasets::{DatasetProfile, Scale};

fn bench_ablation(c: &mut Criterion) {
    let profile = DatasetProfile::deep10m_like();
    let w = profile.workload(Scale::Test, 16, 10, 3);
    let base_cfg = {
        let mut cfg = PathWeaverConfig::test_scale(1);
        cfg.ghost = None;
        cfg.build_dir_table = false;
        cfg
    };
    let base_idx = PathWeaverIndex::build(&w.base, &base_cfg).unwrap();
    let full_idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(1)).unwrap();
    let params = SearchParams { hash_bits: 13, ..SearchParams::default() };
    let dgs = SearchParams { dgs: Some(DgsParams::default()), ..params };

    let mut g = c.benchmark_group("ablation_single_gpu");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("baseline", |b| {
        b.iter(|| black_box(base_idx.search_naive(&w.queries, &params)))
    });
    g.bench_function("plus_gs", |b| {
        b.iter(|| black_box(full_idx.search_pipelined(&w.queries, &params)))
    });
    g.bench_function("plus_gs_dgs", |b| {
        b.iter(|| black_box(full_idx.search_pipelined(&w.queries, &dgs)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
