//! Single-GPU search throughput (Fig 10 at bench-kernel scale): wall-clock
//! time of the instrumented kernel for PathWeaver vs the CAGRA baseline
//! configuration on one simulated device.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pathweaver_core::prelude::*;
use pathweaver_datasets::{DatasetProfile, Scale};

fn bench_single_gpu(c: &mut Criterion) {
    let profile = DatasetProfile::deep10m_like();
    let w = profile.workload(Scale::Test, 16, 10, 7);
    let config = PathWeaverConfig::test_scale(1);
    let idx = PathWeaverIndex::build(&w.base, &config).unwrap();
    let base = SearchParams { hash_bits: 13, ..SearchParams::default() };
    let dgs = SearchParams { dgs: Some(DgsParams::default()), ..base };

    let mut g = c.benchmark_group("single_gpu_search");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.bench_function("cagra_config", |bench| {
        bench.iter(|| black_box(idx.search_naive(&w.queries, &base)))
    });
    g.bench_function("pathweaver_ghost_dgs", |bench| {
        bench.iter(|| black_box(idx.search_pipelined(&w.queries, &dgs)))
    });
    g.finish();
}

criterion_group!(benches, bench_single_gpu);
criterion_main!(benches);
