//! The PathWeaver reproduction harness.
//!
//! Every table and figure of the paper's evaluation (§2, §3, §5, §6) has a
//! module under [`experiments`] that regenerates it: the module builds (or
//! reuses, via [`session::Session`]) the needed indices, runs the searches,
//! prints the rows/series the paper reports, and returns a machine-readable
//! [`pathweaver_core::report::ExperimentRecord`].
//!
//! Two entry points drive the modules:
//!
//! - the `reproduce` binary (`cargo run --release -p pathweaver-bench --bin
//!   reproduce -- all`) runs experiments at `--scale bench` (laptop-sized
//!   datasets, minutes) or `--scale test` (seconds, for smoke checks);
//! - the Criterion benches under `benches/` time the underlying kernels and
//!   scaled-down versions of each experiment.
//!
//! All QPS numbers from the simulated devices come from the cost-model
//! clock ("sim-QPS"); only the HNSW CPU baseline reports real wall time.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod session;

pub use session::Session;
