//! Perf-regression gate over `BENCH_wallclock.json`.
//!
//! ```text
//! check_bench <baseline.json> <fresh.json>
//! ```
//!
//! Compares the `optimized_ms` of every named entry in the committed
//! baseline against a fresh run and exits non-zero if any entry slowed down
//! by more than the tolerance (default 30%). An entry present in the
//! baseline but missing from the fresh run is a failure (a silently dropped
//! bench would otherwise un-gate itself), and an empty baseline or an empty
//! fresh run is a hard error (zero comparisons must never read as a pass);
//! entries that exist only in the fresh run are reported and tolerated, so
//! adding a bench does not require regenerating the baseline in the same
//! change.
//!
//! `PATHWEAVER_PERF_TOLERANCE` overrides the allowed fractional slowdown:
//! e.g. `PATHWEAVER_PERF_TOLERANCE=0.5` allows 50%. Use a temporarily raised
//! tolerance to land a change with a known, accepted slowdown, then commit a
//! regenerated baseline.

use serde_json::Value;
use std::collections::BTreeMap;

/// Allowed fractional slowdown before the gate fails.
const DEFAULT_TOLERANCE: f64 = 0.30;

fn usage() -> ! {
    eprintln!("usage: check_bench <baseline.json> <fresh.json>");
    std::process::exit(2);
}

/// Extracts `name -> optimized_ms` from a wallclock bench document.
fn entries(doc: &Value, source: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let results = doc["results"].as_array().unwrap_or_else(|| {
        eprintln!("check_bench: {source}: no `results` array");
        std::process::exit(2);
    });
    for r in results {
        let (Some(name), Some(ms)) = (r["name"].as_str(), r["optimized_ms"].as_f64()) else {
            eprintln!("check_bench: {source}: entry missing `name`/`optimized_ms`");
            std::process::exit(2);
        };
        out.insert(name.to_string(), ms);
    }
    out
}

fn load(path: &str) -> Value {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("check_bench: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!("check_bench: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else { usage() };
    let tolerance = match std::env::var("PATHWEAVER_PERF_TOLERANCE") {
        Ok(s) => s.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("check_bench: PATHWEAVER_PERF_TOLERANCE={s} is not a number");
            std::process::exit(2);
        }),
        Err(_) => DEFAULT_TOLERANCE,
    };

    let baseline = entries(&load(baseline_path), baseline_path);
    let fresh = entries(&load(fresh_path), fresh_path);
    // A gate that compares nothing gates nothing: an empty baseline (or a
    // fresh run that produced no entries) is a broken setup, not a pass.
    if baseline.is_empty() {
        eprintln!("check_bench: {baseline_path} has no entries — the gate would pass vacuously");
        std::process::exit(2);
    }
    if fresh.is_empty() {
        eprintln!("check_bench: {fresh_path} has no entries — the bench produced no measurements");
        std::process::exit(2);
    }

    println!(
        "perf gate: {} baseline entries, tolerance +{:.0}% (PATHWEAVER_PERF_TOLERANCE to override)",
        baseline.len(),
        tolerance * 100.0
    );
    let mut failures = 0usize;
    for (name, &base_ms) in &baseline {
        match fresh.get(name) {
            None => {
                println!("  {name}: MISSING from fresh run — FAIL");
                failures += 1;
            }
            Some(&fresh_ms) => {
                let ratio = fresh_ms / base_ms.max(1e-9);
                let verdict = if ratio > 1.0 + tolerance {
                    failures += 1;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "  {name}: baseline {base_ms:.3} ms, fresh {fresh_ms:.3} ms ({:+.1}%) — {verdict}",
                    (ratio - 1.0) * 100.0
                );
            }
        }
    }
    for name in fresh.keys().filter(|n| !baseline.contains_key(*n)) {
        println!("  {name}: new entry (not in baseline) — tolerated");
    }

    if failures > 0 {
        eprintln!("check_bench: {failures} entry/entries regressed beyond tolerance");
        std::process::exit(1);
    }
    println!("perf gate passed");
}
