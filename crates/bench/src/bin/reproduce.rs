//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce [--scale test|bench] [--out DIR] all
//! reproduce [--scale test|bench] [--out DIR] fig8 fig9 table1 ...
//! reproduce list
//! ```
//!
//! Each experiment prints its rows and writes a JSON record under the
//! output directory (default `results/`). `--scale test` runs second-scale
//! smoke versions; `--scale bench` (default) runs the laptop-scale datasets
//! of DESIGN.md.

use pathweaver_bench::experiments;
use pathweaver_bench::Session;
use pathweaver_datasets::Scale;

fn usage() -> ! {
    eprintln!("usage: reproduce [--scale test|bench] [--out DIR] <all|list|ID...>");
    eprintln!("experiment ids: {}", experiments::ALL.join(" "));
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::Bench;
    let mut out_dir = String::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("test") => scale = Scale::Test,
                Some("bench") => scale = Scale::Bench,
                _ => usage(),
            },
            "--out" => match args.next() {
                Some(d) => out_dir = d,
                None => usage(),
            },
            "list" => {
                for id in experiments::ALL {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other if experiments::ALL.contains(&other) => ids.push(other.to_string()),
            _ => usage(),
        }
    }
    if ids.is_empty() {
        usage();
    }
    ids.dedup();

    println!("PathWeaver reproduction harness — scale: {:?}, output: {out_dir}/", scale);
    println!("(sim-QPS values come from the simulated-GPU cost model, not wall clock)");

    let session = Session::new(scale);
    let t0 = std::time::Instant::now();
    for id in &ids {
        let started = std::time::Instant::now();
        let record = experiments::run(id, &session);
        match record.save(&out_dir) {
            Ok(path) => println!(
                "[{}] saved {} ({:.1}s)",
                id,
                path.display(),
                started.elapsed().as_secs_f64()
            ),
            Err(e) => eprintln!("[{}] failed to save record: {e}", id),
        }
    }
    match pathweaver_core::report::save_metrics_summary(&out_dir) {
        Ok(Some(path)) => println!("metrics summary: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("failed to save metrics summary: {e}"),
    }
    println!("\ndone: {} experiment(s) in {:.1}s", ids.len(), t0.elapsed().as_secs_f64());
}
