//! Crash-recovery gate: a seeded, deterministic corruption matrix over the
//! durable index store, emitting machine-readable `store_report.json`.
//!
//! A durable store (segment + WAL with pending inserts and a delete) is
//! built once; every case then damages a copy of it and reopens:
//!
//! - **WAL truncation** at every record boundary plus fuzzed interior
//!   offsets. Reopen must succeed, replay exactly the intact record prefix,
//!   and search identically to an index that never saw the torn records.
//! - **WAL bit-flips** at fuzzed offsets. Body flips must truncate cleanly
//!   from the damaged record on (same prefix contract); header flips may
//!   instead be rejected with [`StoreError::Corrupt`].
//! - **Segment bit-flips** at fuzzed offsets. Every byte of a segment is
//!   checksum-covered, so any flip must be rejected with `Corrupt` — there
//!   is no acceptable "opened anyway" outcome.
//! - **Segment truncation** at fuzzed cut points: `Corrupt` likewise.
//!
//! No case may panic, and no case may open into a state whose search
//! results match none of the valid WAL-prefix states (a silent wrong
//! answer). Any violation is listed in the report and fails the gate.
//!
//! Environment: `PATHWEAVER_STORE_SEED` (default 4242) seeds the fuzzed
//! offsets; `PATHWEAVER_STORE_OUT` overrides the report path (default
//! `target/store_report.json`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use pathweaver_core::store::segment::{
    HEADER_LEN, KIND_DIR_TABLE, KIND_GHOST_GRAPH, KIND_GHOST_MAP, KIND_GHOST_VECTORS,
    KIND_GLOBAL_IDS, KIND_GRAPH, KIND_INTERSHARD, KIND_META, KIND_QUANTIZED, KIND_TOMBSTONES,
    KIND_VECTORS, TOC_ENTRY_LEN,
};
use pathweaver_core::store::{StoreError, SEGMENT_FILE, WAL_FILE};
use pathweaver_core::{DurableIndex, PathWeaverConfig, PathWeaverIndex};
use pathweaver_datasets::{DatasetProfile, Scale};
use pathweaver_search::SearchParams;
use rand::Rng;
use serde_json::{json, Value};

/// Search results for the fixed query set — the identity we compare states
/// by. Two stores are "the same index" iff these match.
type Results = Vec<Vec<u32>>;

struct Matrix {
    work: PathBuf,
    segment: Vec<u8>,
    wal: Vec<u8>,
    /// WAL length after 0, 1, .., n applied records (`[0]` is the header).
    record_ends: Vec<usize>,
    /// Search results after 0, 1, .., n applied records.
    prefix_states: Vec<Results>,
    queries: pathweaver_vector::VectorSet,
    cases: usize,
    failures: Vec<Value>,
}

impl Matrix {
    /// What a reopen attempt did, reduced to the contract's vocabulary.
    fn reopen(&self) -> Outcome {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            DurableIndex::open(&self.work)
                .map(|ix| ix.search_pipelined(&self.queries, &SearchParams::default()).results)
        }));
        match caught {
            Err(_) => Outcome::Panicked,
            Ok(Err(StoreError::Corrupt { offset, detail })) => Outcome::Corrupt { offset, detail },
            Ok(Err(e)) => Outcome::OtherError(format!("{e:?}")),
            Ok(Ok(results)) => match self.prefix_states.iter().position(|s| *s == results) {
                Some(k) => Outcome::OpenedAtPrefix(k),
                None => Outcome::SilentWrongAnswer,
            },
        }
    }

    /// Writes one damaged store into the work dir and evaluates the case.
    fn run_case(
        &mut self,
        label: String,
        segment: &[u8],
        wal: &[u8],
        ok: impl Fn(&Outcome) -> bool,
    ) {
        std::fs::write(self.work.join(SEGMENT_FILE), segment).expect("stage segment");
        std::fs::write(self.work.join(WAL_FILE), wal).expect("stage wal");
        self.cases += 1;
        let outcome = self.reopen();
        if !ok(&outcome) {
            println!("  FAIL {label}: {}", outcome.describe());
            self.failures.push(json!({"case": label, "outcome": (outcome.describe())}));
        }
    }

    /// Index of the last record boundary at or before `offset` — the number
    /// of WAL records that must survive damage at that byte.
    fn intact_prefix(&self, offset: usize) -> usize {
        self.record_ends.iter().rposition(|&e| e <= offset).unwrap_or(0)
    }
}

enum Outcome {
    /// Store opened; searches matched WAL-prefix state `k`.
    OpenedAtPrefix(usize),
    Corrupt {
        offset: u64,
        detail: String,
    },
    OtherError(String),
    SilentWrongAnswer,
    Panicked,
}

impl Outcome {
    fn describe(&self) -> String {
        match self {
            Self::OpenedAtPrefix(k) => format!("opened at WAL prefix {k}"),
            Self::Corrupt { offset, detail } => format!("rejected: corrupt at {offset}: {detail}"),
            Self::OtherError(e) => format!("rejected: {e}"),
            Self::SilentWrongAnswer => "opened with results matching no valid state".into(),
            Self::Panicked => "panicked".into(),
        }
    }
}

fn flip(bytes: &[u8], offset: usize, bit: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[offset] ^= 1 << bit;
    out
}

fn build_matrix(root: &Path, seed: u64) -> Matrix {
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, seed);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2))
        .expect("matrix index builds");
    let pristine = root.join("pristine");
    std::fs::create_dir_all(&pristine).expect("create pristine dir");
    let mut durable = DurableIndex::create(idx, &pristine).expect("create durable store");

    let params = SearchParams::default();
    let snap = |ix: &PathWeaverIndex| ix.search_pipelined(&w.queries, &params).results;
    let wal_len = || std::fs::metadata(pristine.join(WAL_FILE)).expect("wal meta").len() as usize;

    let mut record_ends = vec![wal_len()];
    let mut prefix_states = vec![snap(&durable)];
    // Each mutation must visibly change some query's results, or the
    // prefix states would be indistinguishable and the matrix could not
    // tell which state a recovered store landed in: insert the query
    // vectors themselves (each becomes its own query's exact top hit),
    // then delete the first of them (query 0's results revert).
    let base_len = w.base.len() as u32;
    for r in 0..4 {
        durable.insert(w.queries.row(r)).expect("wal insert");
        record_ends.push(wal_len());
        prefix_states.push(snap(&durable));
    }
    assert!(durable.delete(base_len).expect("wal delete"));
    record_ends.push(wal_len());
    prefix_states.push(snap(&durable));
    drop(durable);
    for (a, sa) in prefix_states.iter().enumerate() {
        for (b, sb) in prefix_states.iter().enumerate().skip(a + 1) {
            assert_ne!(sa, sb, "prefix states {a} and {b} are indistinguishable");
        }
    }

    let segment = std::fs::read(pristine.join(SEGMENT_FILE)).expect("read segment");
    let wal = std::fs::read(pristine.join(WAL_FILE)).expect("read wal");
    let work = root.join("case");
    std::fs::create_dir_all(&work).expect("create case dir");
    Matrix {
        work,
        segment,
        wal,
        record_ends,
        prefix_states,
        queries: w.queries,
        cases: 0,
        failures: Vec::new(),
    }
}

fn main() {
    let seed: u64 = std::env::var("PATHWEAVER_STORE_SEED")
        .ok()
        .map(|s| s.parse().expect("PATHWEAVER_STORE_SEED must be an integer"))
        .unwrap_or(4242);
    let root = std::env::temp_dir().join(format!("pw-check-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut m = build_matrix(&root, seed);
    let mut rng = pathweaver_util::small_rng(seed);
    println!(
        "check_store: seed {seed}, segment {} bytes, wal {} bytes ({} records)",
        m.segment.len(),
        m.wal.len(),
        m.record_ends.len() - 1
    );

    // WAL truncation: every record boundary, plus fuzzed interior cuts.
    // The contract is exact: replay precisely the intact prefix.
    let mut cuts: Vec<usize> = m.record_ends.clone();
    cuts.extend((0..48).map(|_| rng.gen_range(0..m.wal.len())));
    for cut in cuts {
        let expect = m.intact_prefix(cut);
        let (segment, wal) = (m.segment.clone(), m.wal[..cut].to_vec());
        m.run_case(
            format!("wal-truncate@{cut}"),
            &segment,
            &wal,
            |o| matches!(o, Outcome::OpenedAtPrefix(k) if *k == expect),
        );
    }
    // Cutting into the 16-byte WAL header may instead be rejected outright.
    for cut in 0..m.record_ends[0] {
        let (segment, wal) = (m.segment.clone(), m.wal[..cut].to_vec());
        m.run_case(format!("wal-header-truncate@{cut}"), &segment, &wal, |o| {
            matches!(o, Outcome::Corrupt { .. } | Outcome::OpenedAtPrefix(0))
        });
    }

    // WAL bit-flips: body damage truncates from the damaged record on;
    // header damage is rejected (or ignored, if the flip lands in a byte the
    // format does not interpret — still a valid prefix-0..n open, never a
    // wrong answer).
    let header = m.record_ends[0];
    for _ in 0..64 {
        let offset = rng.gen_range(0..m.wal.len());
        let bit = rng.gen_range(0..8u8);
        let expect = m.intact_prefix(offset);
        let (segment, wal) = (m.segment.clone(), flip(&m.wal, offset, bit));
        if offset < header {
            m.run_case(format!("wal-header-flip@{offset}.{bit}"), &segment, &wal, |o| {
                matches!(o, Outcome::Corrupt { .. } | Outcome::OpenedAtPrefix(_))
            });
        } else {
            m.run_case(
                format!("wal-flip@{offset}.{bit}"),
                &segment,
                &wal,
                |o| matches!(o, Outcome::OpenedAtPrefix(k) if *k == expect),
            );
        }
    }

    // Segment bit-flips: every byte is under a checksum, so every flip must
    // surface as Corrupt — opening at all would be a checksum hole.
    for _ in 0..64 {
        let offset = rng.gen_range(0..m.segment.len());
        let bit = rng.gen_range(0..8u8);
        let (segment, wal) = (flip(&m.segment, offset, bit), m.wal.clone());
        m.run_case(format!("segment-flip@{offset}.{bit}"), &segment, &wal, |o| {
            matches!(o, Outcome::Corrupt { .. })
        });
    }

    // Segment truncation: likewise Corrupt (the header records the exact
    // file length).
    for _ in 0..16 {
        let cut = rng.gen_range(0..m.segment.len());
        let (segment, wal) = (m.segment[..cut].to_vec(), m.wal.clone());
        m.run_case(format!("segment-truncate@{cut}"), &segment, &wal, |o| {
            matches!(o, Outcome::Corrupt { .. })
        });
    }

    // Section-targeted damage: walk the TOC and aim flips at each section
    // kind's extents. The kind list mirrors the writer's full vocabulary —
    // any TOC entry with a kind outside it means the matrix has drifted from
    // the format and the gate aborts.
    const SECTION_KINDS: &[(u32, &str)] = &[
        (KIND_META, "meta"),
        (KIND_VECTORS, "vectors"),
        (KIND_GRAPH, "graph"),
        (KIND_GLOBAL_IDS, "global-ids"),
        (KIND_TOMBSTONES, "tombstones"),
        (KIND_INTERSHARD, "intershard"),
        (KIND_GHOST_MAP, "ghost-map"),
        (KIND_GHOST_VECTORS, "ghost-vectors"),
        (KIND_GHOST_GRAPH, "ghost-graph"),
        (KIND_DIR_TABLE, "dir-table"),
        (KIND_QUANTIZED, "quantized"),
    ];
    let toc_count =
        u32::from_le_bytes(m.segment[8..12].try_into().expect("section count")) as usize;
    let toc: Vec<(u32, usize, usize)> = (0..toc_count)
        .map(|i| {
            let e = HEADER_LEN + i * TOC_ENTRY_LEN;
            let kind = u32::from_le_bytes(m.segment[e..e + 4].try_into().expect("kind"));
            let off =
                u64::from_le_bytes(m.segment[e + 8..e + 16].try_into().expect("offset")) as usize;
            let len =
                u64::from_le_bytes(m.segment[e + 16..e + 24].try_into().expect("len")) as usize;
            (kind, off, len)
        })
        .collect();
    for (i, &(kind, _, _)) in toc.iter().enumerate() {
        assert!(
            SECTION_KINDS.iter().any(|&(k, _)| k == kind),
            "TOC entry {i} has kind {kind}, unknown to the corruption matrix"
        );
    }
    let extents_of = |want: u32| -> Vec<(usize, usize)> {
        toc.iter()
            .filter(|&&(kind, _, len)| kind == want && len > 0)
            .map(|&(_, o, l)| (o, l))
            .collect()
    };
    for &(kind, name) in SECTION_KINDS {
        for (off, len) in extents_of(kind) {
            for _ in 0..4 {
                let offset = off + rng.gen_range(0..len);
                let bit = rng.gen_range(0..8u8);
                let (segment, wal) = (flip(&m.segment, offset, bit), m.wal.clone());
                m.run_case(format!("section-{name}-flip@{offset}.{bit}"), &segment, &wal, |o| {
                    matches!(o, Outcome::Corrupt { .. })
                });
            }
        }
    }

    // Quantized sections, specifically: the int8 tier is the newest section
    // kind, so aim a deeper pass straight at its extents — flips in the
    // grid/codes and cuts through the section must be Corrupt, never a
    // panic or a silently degraded (wrong-distance) open.
    let quantized_extents = extents_of(KIND_QUANTIZED);
    assert!(
        !quantized_extents.is_empty(),
        "matrix store was built with build_quantized; its segment must carry quantized sections"
    );
    for &(off, len) in &quantized_extents {
        for _ in 0..24 {
            let offset = off + rng.gen_range(0..len);
            let bit = rng.gen_range(0..8u8);
            let (segment, wal) = (flip(&m.segment, offset, bit), m.wal.clone());
            m.run_case(format!("quantized-flip@{offset}.{bit}"), &segment, &wal, |o| {
                matches!(o, Outcome::Corrupt { .. })
            });
        }
        for _ in 0..6 {
            let cut = off + rng.gen_range(0..len);
            let (segment, wal) = (m.segment[..cut].to_vec(), m.wal.clone());
            m.run_case(format!("quantized-truncate@{cut}"), &segment, &wal, |o| {
                matches!(o, Outcome::Corrupt { .. })
            });
        }
    }

    let report = json!({
        "gate": "check_store",
        "seed": seed,
        "cases": (m.cases),
        "wal_records": (m.record_ends.len() - 1),
        "segment_bytes": (m.segment.len()),
        "wal_bytes": (m.wal.len()),
        "failures": (&m.failures)
    });
    let path = std::env::var("PATHWEAVER_STORE_OUT")
        .unwrap_or_else(|_| "target/store_report.json".to_string());
    if let Some(dir) = Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    let mut text = serde_json::to_string_pretty(&report).expect("serialize report");
    text.push('\n');
    std::fs::write(&path, text).expect("write report");
    let _ = std::fs::remove_dir_all(&root);

    println!("check_store: {} cases, {} failures — wrote {path}", m.cases, m.failures.len());
    if !m.failures.is_empty() {
        eprintln!("check_store: corruption matrix found contract violations");
        std::process::exit(1);
    }
}
