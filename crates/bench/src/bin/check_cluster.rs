//! Fault-injection gate for the multi-node cluster layer, emitting
//! machine-readable `cluster_report.json`.
//!
//! Partitioned indexes are built once; every case then boots a fresh local
//! cluster (in-process channel transport, plus two TCP loopback cases) with
//! a scripted fault assignment and pushes query batches through the router:
//!
//! - **Identity**: a 1-node cluster must answer bit-identically to
//!   `serve_once` — same hits, same result ids, same simulated makespan
//!   bits.
//! - **Replica kill mid-batch**: a node swallows a request at a seeded
//!   ordinal and dies; every batch must still return the exact merged
//!   top-k via a sibling replica, with zero failed queries.
//! - **Torn frames**: a node truncates responses at seeded ordinals
//!   mid-frame; the router must detect the tear and fail over.
//! - **Timeout storm**: a node delays every response far beyond the request
//!   budget; the router must time out, mark it dead, and reroute.
//! - **Combinations**: crash + torn + storm spread over a 3-way replicated
//!   cluster, and multi-partition variants of each.
//!
//! A case fails on any router error while a live replica remains, any hit
//! list differing from the single-node reference by even one bit, or a
//! panic. The gate requires **zero failed queries** across the whole
//! matrix.
//!
//! Environment: `PATHWEAVER_CLUSTER_SEED` (default 77) seeds the fuzzed
//! fault ordinals; `PATHWEAVER_CLUSTER_OUT` overrides the report path
//! (default `target/cluster_report.json`).

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use pathweaver_core::cluster::{
    build_partitions, reference_merged, ClusterPartition, DelayWindow, FaultScript, LocalCluster,
    TransportKind,
};
use pathweaver_core::config::ClusterConfig;
use pathweaver_core::serve::serve_once;
use pathweaver_core::PathWeaverConfig;
use pathweaver_datasets::{DatasetProfile, Scale};
use pathweaver_search::SearchParams;
use pathweaver_vector::VectorSet;
use rand::Rng;
use serde_json::{json, Value};

/// One case's cluster shape + scripted faults.
struct CaseSpec<'a> {
    label: String,
    parts: &'a [ClusterPartition],
    reference: &'a [Vec<(f32, u32)>],
    nodes: usize,
    replication: usize,
    transport: TransportKind,
    faults: Vec<FaultScript>,
    batches: usize,
    /// Shrink the per-request budget for timeout cases.
    request_timeout_ms: u64,
    /// Expect at least one failover across the batches.
    expect_failover: bool,
}

struct Gate {
    queries: VectorSet,
    params: SearchParams,
    cases: usize,
    queries_served: u64,
    failovers_seen: u64,
    failures: Vec<Value>,
}

impl Gate {
    fn run_case(&mut self, spec: CaseSpec<'_>) {
        self.cases += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| self.drive(&spec)));
        let verdict = match outcome {
            Err(_) => Some("panicked".to_string()),
            Ok(Err(detail)) => Some(detail),
            Ok(Ok(())) => None,
        };
        if let Some(detail) = verdict {
            println!("  FAIL {}: {detail}", spec.label);
            self.failures.push(json!({"case": (&spec.label), "outcome": detail}));
        }
    }

    /// Boots the cluster, pushes the batches, checks every hit bitwise.
    fn drive(&mut self, spec: &CaseSpec<'_>) -> Result<(), String> {
        let config = ClusterConfig {
            partitions: spec.parts.len(),
            replication: spec.replication,
            request_timeout_ms: spec.request_timeout_ms,
            ..ClusterConfig::default()
        };
        let cluster = LocalCluster::launch_with_partitions(
            spec.parts,
            &config,
            spec.nodes,
            spec.transport,
            &spec.faults,
        )
        .map_err(|e| format!("bootstrap: {e}"))?;
        let mut failovers = 0;
        let result = (0..spec.batches).try_for_each(|batch| {
            let out = cluster
                .router()
                .search(&self.queries, &self.params)
                .map_err(|e| format!("batch {batch}: router error: {e}"))?;
            failovers += out.failovers;
            self.queries_served += self.queries.len() as u64;
            compare_hits(&out.hits, spec.reference).map_err(|d| format!("batch {batch}: {d}"))
        });
        self.failovers_seen += failovers;
        cluster.shutdown();
        result?;
        if spec.expect_failover && failovers == 0 {
            return Err("expected at least one failover, saw none".into());
        }
        Ok(())
    }
}

/// Bitwise hit-list comparison; `Err` pinpoints the first divergence.
fn compare_hits(got: &[Vec<(f32, u32)>], want: &[Vec<(f32, u32)>]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("query count {} != {}", got.len(), want.len()));
    }
    for (q, (g, w)) in got.iter().zip(want).enumerate() {
        if g.len() != w.len() {
            return Err(format!("query {q}: {} hits != {}", g.len(), w.len()));
        }
        for (rank, (&(gd, gi), &(wd, wi))) in g.iter().zip(w).enumerate() {
            if gi != wi || gd.to_bits() != wd.to_bits() {
                return Err(format!("query {q} rank {rank}: got ({gd}, {gi}), want ({wd}, {wi})"));
            }
        }
    }
    Ok(())
}

fn crash(at: u64) -> FaultScript {
    FaultScript { crash_after_requests: Some(at), ..FaultScript::default() }
}

fn torn(ordinals: impl IntoIterator<Item = u64>) -> FaultScript {
    FaultScript {
        torn_responses: ordinals.into_iter().collect::<BTreeSet<_>>(),
        ..Default::default()
    }
}

fn storm(delay_ms: u64) -> FaultScript {
    FaultScript {
        delay: Some(DelayWindow { from: 0, to: u64::MAX, delay_ms }),
        ..FaultScript::default()
    }
}

fn main() {
    let seed: u64 = std::env::var("PATHWEAVER_CLUSTER_SEED")
        .ok()
        .map(|s| s.parse().expect("PATHWEAVER_CLUSTER_SEED must be an integer"))
        .unwrap_or(77);
    let mut rng = pathweaver_util::small_rng(seed);

    let workload = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 23);
    let index_config = PathWeaverConfig::test_scale(2);
    let full = build_partitions(&workload.base, &index_config, 1).expect("1-partition build");
    let halves = build_partitions(&workload.base, &index_config, 2).expect("2-partition build");
    let params = SearchParams::default();
    let single = serve_once(&full[0].index, &workload.queries, &params).expect("reference serve");
    let merged = reference_merged(&halves, &workload.queries, &params).expect("reference merge");
    println!(
        "check_cluster: seed {seed}, {} base vectors, {} queries per batch",
        workload.base.len(),
        workload.queries.len()
    );

    let mut gate = Gate {
        queries: workload.queries,
        params,
        cases: 0,
        queries_served: 0,
        failovers_seen: 0,
        failures: Vec::new(),
    };

    // Identity: 1 node must be bit-identical to serve_once, down to the
    // simulated makespan, on both transports.
    for transport in [TransportKind::Channel, TransportKind::Tcp] {
        gate.cases += 1;
        let label = format!("identity-{transport:?}");
        let config = ClusterConfig { partitions: 1, ..ClusterConfig::default() };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let cluster = LocalCluster::launch_with_partitions(&full, &config, 1, transport, &[])?;
            let out = cluster.router().search(&gate.queries, &gate.params)?;
            cluster.shutdown();
            Ok::<_, pathweaver_core::ClusterError>(out)
        }));
        let detail = match outcome {
            Err(_) => Some("panicked".to_string()),
            Ok(Err(e)) => Some(format!("router error: {e}")),
            Ok(Ok(out)) => {
                gate.queries_served += gate.queries.len() as u64;
                compare_hits(&out.hits, &single.hits)
                    .err()
                    .or_else(|| {
                        (out.results != single.results).then(|| "result ids diverged".to_string())
                    })
                    .or_else(|| {
                        (out.makespan_s.to_bits() != single.makespan_s.to_bits())
                            .then(|| "simulated makespan bits diverged".to_string())
                    })
            }
        };
        if let Some(detail) = detail {
            println!("  FAIL {label}: {detail}");
            gate.failures.push(json!({"case": label, "outcome": detail}));
        }
    }

    // Replica kill mid-batch: one of two replicas swallows a request at a
    // seeded ordinal and dies. Every batch must still come back exact. The
    // rotating fan-out hands the victim a request every other batch, so 6
    // batches guarantee any ordinal < 2 trips.
    for round in 0..4 {
        let at = rng.gen_range(0..2);
        let victim = rng.gen_range(0..2);
        let mut faults = vec![FaultScript::default(), FaultScript::default()];
        faults[victim] = crash(at);
        gate.run_case(CaseSpec {
            label: format!("kill-{round}@node{victim}+{at}"),
            parts: &full,
            reference: &single.hits,
            nodes: 2,
            replication: 2,
            transport: TransportKind::Channel,
            faults,
            batches: 6,
            request_timeout_ms: 2_000,
            expect_failover: true,
        });
    }

    // Torn frames: seeded response ordinals truncated mid-frame, on the
    // channel transport and once over real TCP sockets.
    // The torn node sees every other batch while alive, so 6 batches reach
    // any ordinal < 3 before the tear gets it marked dead.
    for round in 0..4 {
        let ordinals: BTreeSet<u64> =
            (0..rng.gen_range(1..3u64)).map(|_| rng.gen_range(0..3)).collect();
        let transport = if round == 0 { TransportKind::Tcp } else { TransportKind::Channel };
        gate.run_case(CaseSpec {
            label: format!("torn-{round}@{ordinals:?}-{transport:?}"),
            parts: &full,
            reference: &single.hits,
            nodes: 2,
            replication: 2,
            transport,
            faults: vec![torn(ordinals), FaultScript::default()],
            batches: 6,
            request_timeout_ms: 2_000,
            expect_failover: true,
        });
    }

    // Timeout storm: a replica delays every response far past the budget.
    for round in 0..2 {
        let delay = 300 + rng.gen_range(0..200);
        gate.run_case(CaseSpec {
            label: format!("storm-{round}+{delay}ms"),
            parts: &full,
            reference: &single.hits,
            nodes: 2,
            replication: 2,
            transport: TransportKind::Channel,
            faults: vec![storm(delay), FaultScript::default()],
            batches: 2,
            request_timeout_ms: 60,
            expect_failover: true,
        });
    }

    // Combination: crash + torn + storm spread over three replicas — the
    // single clean node must carry every batch exactly.
    gate.run_case(CaseSpec {
        label: "combo-crash+torn+storm".into(),
        parts: &full,
        reference: &single.hits,
        nodes: 4,
        replication: 4,
        transport: TransportKind::Channel,
        faults: vec![crash(0), torn([0, 1]), storm(400), FaultScript::default()],
        batches: 3,
        request_timeout_ms: 60,
        expect_failover: true,
    });

    // Multi-partition: the same faults must never bend the cross-partition
    // merge while each partition keeps a live replica.
    gate.run_case(CaseSpec {
        label: "partitions-clean".into(),
        parts: &halves,
        reference: &merged,
        nodes: 3,
        replication: 2,
        transport: TransportKind::Channel,
        faults: Vec::new(),
        batches: 2,
        request_timeout_ms: 2_000,
        expect_failover: false,
    });
    // Full replication here so every node is in every partition's rotation
    // and the seeded victim is guaranteed to see its crash ordinal.
    for round in 0..2 {
        let victim = rng.gen_range(0..3);
        let mut faults = vec![FaultScript::default(); 3];
        faults[victim] = crash(rng.gen_range(0..2));
        gate.run_case(CaseSpec {
            label: format!("partitions-kill-{round}@node{victim}"),
            parts: &halves,
            reference: &merged,
            nodes: 3,
            replication: 3,
            transport: TransportKind::Channel,
            faults,
            batches: 4,
            request_timeout_ms: 2_000,
            expect_failover: true,
        });
    }
    gate.run_case(CaseSpec {
        label: "partitions-torn".into(),
        parts: &halves,
        reference: &merged,
        nodes: 3,
        replication: 2,
        transport: TransportKind::Channel,
        faults: vec![torn([0, 2]), FaultScript::default(), torn([1])],
        batches: 3,
        request_timeout_ms: 2_000,
        expect_failover: true,
    });

    let report = json!({
        "gate": "check_cluster",
        "seed": seed,
        "cases": (gate.cases),
        "queries_served": (gate.queries_served),
        "failovers": (gate.failovers_seen),
        "failed_queries": (gate.failures.len()),
        "failures": (&gate.failures)
    });
    let path = std::env::var("PATHWEAVER_CLUSTER_OUT")
        .unwrap_or_else(|_| "target/cluster_report.json".to_string());
    if let Some(dir) = Path::new(&path).parent() {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    let mut text = serde_json::to_string_pretty(&report).expect("serialize report");
    text.push('\n');
    std::fs::write(&path, text).expect("write report");

    println!(
        "check_cluster: {} cases, {} queries served, {} failovers, {} failures — wrote {path}",
        gate.cases,
        gate.queries_served,
        gate.failovers_seen,
        gate.failures.len()
    );
    if !gate.failures.is_empty() {
        eprintln!("check_cluster: fault matrix found contract violations");
        std::process::exit(1);
    }
}
