//! Wall-clock benchmark for the persistent worker pool and the batched
//! distance kernels, emitting machine-readable `BENCH_wallclock.json`.
//!
//! Unlike every other harness in this crate — which reports the simulated
//! GPU clock derived from operation counters — this binary measures real
//! elapsed time. It exists to demonstrate that the PR 1 runtime work
//! (persistent pool, batched gather-distance, scratch reuse) improves
//! wall-clock throughput while leaving the simulated clock untouched:
//!
//! - `pool_dispatch`: many fine-grained `parallel_for` calls through the
//!   persistent pool vs the retained spawn-per-call baseline
//!   (`parallel_for_spawning`). This isolates dispatch overhead.
//! - `batch_search`: `search_batch` (pool-dispatched per-query map) vs an
//!   identical per-query map driven by spawn-per-call threads, on a
//!   sift-like shard. This is the end-to-end number the acceptance
//!   criterion tracks.
//! - `batch_distance`: the 4-row blocked `batch_l2_squared` vs a per-row
//!   scalar loop over the same gather list.
//! - `simd_l2` / `simd_batch`: the runtime-dispatched SIMD kernels (PR 2)
//!   vs the same code forced to the scalar level, on single-pair and blocked
//!   batch distance respectively. Results are asserted bitwise identical
//!   across levels before timing.
//! - `quantized_l2`: the int8 code-space distance kernel under auto dispatch
//!   vs forced scalar, results asserted identical across levels (integer
//!   arithmetic — identity is exact, not bitwise-float).
//! - `quantized_search`: end-to-end pipelined search with the quantized
//!   traversal tier on vs off. The simulated QPS must at least double and
//!   recall@k must stay within 0.01 of the exact path (the tier's
//!   acceptance bar) before the wall clocks are compared.
//! - `pipelined_search`: end-to-end `search_pipelined` under auto dispatch
//!   vs forced scalar, with search results and simulated-clock counters
//!   asserted bitwise unchanged (the dispatch level must never leak into
//!   the simulation).
//! - `obs_overhead`: the same pipelined search with observability (metrics
//!   and tracing) enabled vs disabled; search results and simulated-clock
//!   counters are asserted unchanged, so only wall time may differ. The
//!   disabled side is the number the perf gate tracks.
//! - `segment_open`: opening the saved index through the checksummed
//!   zero-copy segment path vs the legacy per-file directory loader. The
//!   two loaded indexes are asserted to search identically before timing.
//! - `serve_throughput`: a stream of single-query batches served one at a
//!   time (`search_pipelined` in a loop) vs overlapped through the streaming
//!   `Server` on a 4-device ring. Hits are asserted identical, and the
//!   simulated-makespan speedup of the overlapped schedule must clear 1.5×
//!   (the serve-layer acceptance bar) before the wall clocks are compared.
//! - `cluster_serve`: the same batch stream through a 1-node cluster vs a
//!   4-node, 4-way-replicated cluster. The 1-node answers are asserted
//!   bit-identical to `serve_once`, and the replicated fan-out's simulated
//!   QPS at 4 nodes must clear 2.5× the 1-node number before the wall
//!   clocks are compared.
//!
//! After the timed entries, one instrumented search populates the metrics
//! registry and the summary is written to `target/BENCH_metrics.json` (or
//! `$PATHWEAVER_METRICS_OUT`).
//!
//! `PATHWEAVER_THREADS` defaults to 2 here so the dispatch comparison is
//! meaningful even on single-core CI runners (the pool pins one helper; the
//! baseline spawns threads on every call). Set it explicitly to measure a
//! different width. Output path: `BENCH_wallclock.json` in the working
//! directory, or `$PATHWEAVER_BENCH_OUT`.

use std::hint::black_box;
use std::time::Instant;

use pathweaver_datasets::DatasetProfile;
use pathweaver_datasets::Scale;
use pathweaver_gpusim::CostCounters;
use pathweaver_graph::{cagra_build, CagraBuildParams};
use pathweaver_search::{search_batch, search_query, EntryPolicy, SearchParams, ShardContext};
use pathweaver_vector::{batch_l2_squared, l2_squared, set_simd_level, SimdLevel};
use serde_json::{json, Value};

/// Median wall-clock milliseconds of `reps` runs of `f`.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    // One untimed warm-up run lets lazy state (pool workers, page faults)
    // settle outside the measurement.
    f();
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn result(name: &str, baseline_ms: f64, optimized_ms: f64) -> Value {
    let speedup = baseline_ms / optimized_ms.max(1e-9);
    println!("{name}: baseline {baseline_ms:.3} ms, optimized {optimized_ms:.3} ms, speedup {speedup:.2}x");
    json!({
        "name": name,
        "baseline_ms": baseline_ms,
        "optimized_ms": optimized_ms,
        "speedup": speedup,
    })
}

/// Dispatch overhead: 300 fine-grained fork-joins per rep.
fn pool_dispatch() -> Value {
    let body = |_i: usize| {
        black_box((0..32u64).sum::<u64>());
    };
    let run_pooled = || {
        for _ in 0..300 {
            pathweaver_util::parallel_for(64, body);
        }
    };
    let run_spawning = || {
        for _ in 0..300 {
            pathweaver_util::parallel_for_spawning(64, body);
        }
    };
    let baseline = time_ms(9, run_spawning);
    let optimized = time_ms(9, run_pooled);
    result("pool_dispatch", baseline, optimized)
}

/// End-to-end batch search: persistent pool vs spawn-per-call dispatch of
/// the identical per-query work.
fn batch_search() -> Value {
    let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 10, 7);
    let graph = cagra_build(&w.base, &CagraBuildParams::with_degree(16));
    let ctx = ShardContext::new(&w.base, &graph, None);
    let params = SearchParams::default();
    let entries = [EntryPolicy::Random { count: 64 }];

    let run_pooled = || {
        for _ in 0..40 {
            black_box(search_batch(&ctx, &w.queries, &params, &entries));
        }
    };
    // The historical driver: same per-query closure, but each batch spawns
    // fresh OS threads (via the retained baseline) instead of reusing the
    // pool. Hits are collected to keep the work identical.
    let run_spawning = || {
        for _ in 0..40 {
            type IndexedHits = Vec<(usize, Vec<(f32, u32)>)>;
            let hits: Vec<Vec<(f32, u32)>> = {
                let results: parking_lot::Mutex<IndexedHits> =
                    parking_lot::Mutex::new(Vec::with_capacity(w.queries.len()));
                pathweaver_util::parallel_for_spawning(w.queries.len(), |q| {
                    let mut counters = CostCounters::new();
                    let seed = pathweaver_util::seed_from_parts(params.seed, "query", q as u64);
                    let (hits, _) = search_query(
                        &ctx,
                        w.queries.row(q),
                        &params,
                        &entries[0],
                        seed,
                        &mut counters,
                    );
                    results.lock().push((q, hits));
                });
                let mut collected = results.into_inner();
                collected.sort_by_key(|&(q, _)| q);
                collected.into_iter().map(|(_, h)| h).collect()
            };
            black_box(hits);
        }
    };
    let baseline = time_ms(7, run_spawning);
    let optimized = time_ms(7, run_pooled);
    result("batch_search", baseline, optimized)
}

/// Gather-distance throughput: blocked batch kernel vs per-row scalar loop.
fn batch_distance() -> Value {
    let w = DatasetProfile::sift_like().workload(Scale::Bench, 1, 1, 13);
    let set = &w.base;
    let mut rng = pathweaver_util::small_rng(17);
    let rows: Vec<u32> =
        (0..8192).map(|_| rand::Rng::gen_range(&mut rng, 0..set.len()) as u32).collect();
    let query = w.queries.row(0).to_vec();
    let mut out = vec![0.0f32; rows.len()];

    let baseline = time_ms(15, || {
        for (o, &r) in out.iter_mut().zip(&rows) {
            *o = l2_squared(set.row(r as usize), &query);
        }
        black_box(&out);
    });
    let optimized = time_ms(15, || {
        batch_l2_squared(set, &rows, &query, &mut out);
        black_box(&out);
    });
    result("batch_distance", baseline, optimized)
}

/// Runs `f` with the dispatch forced to `level`, restoring auto detection
/// afterwards. Swapping mid-process is safe: every level is bitwise
/// identical, so nothing downstream can observe which level computed what.
fn at_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    assert!(set_simd_level(level), "level {} unavailable on this host", level.name());
    let r = f();
    set_simd_level(SimdLevel::detect());
    r
}

/// Single-pair distance throughput: auto-dispatched SIMD level vs forced
/// scalar on the same pairs (960-d, the paper's widest dataset).
fn simd_l2() -> Value {
    let dim = 960;
    let n = 512;
    let set = pathweaver_datasets::SyntheticSpec {
        dim,
        len: n + 1,
        distribution: pathweaver_datasets::Distribution::Uniform,
        seed: 41,
    }
    .generate();
    let query = set.row(n).to_vec();
    // Bitwise identity across levels, checked on the bench inputs.
    let auto: Vec<u32> = (0..n).map(|i| l2_squared(set.row(i), &query).to_bits()).collect();
    at_level(SimdLevel::Scalar, || {
        for (i, &bits) in auto.iter().enumerate() {
            assert_eq!(l2_squared(set.row(i), &query).to_bits(), bits, "row {i}");
        }
    });

    let run = || {
        let mut acc = 0.0f32;
        for _ in 0..16 {
            for i in 0..n {
                acc += l2_squared(set.row(i), &query);
            }
        }
        black_box(acc);
    };
    let baseline = time_ms(15, || at_level(SimdLevel::Scalar, run));
    let optimized = time_ms(15, run);
    result("simd_l2", baseline, optimized)
}

/// Blocked batch-distance throughput: auto-dispatched SIMD level vs forced
/// scalar running the identical blocked kernel (this is the acceptance
/// criterion's batch-distance microbench).
fn simd_batch() -> Value {
    let w = DatasetProfile::sift_like().workload(Scale::Bench, 1, 1, 19);
    let set = &w.base;
    let mut rng = pathweaver_util::small_rng(29);
    let rows: Vec<u32> =
        (0..8192).map(|_| rand::Rng::gen_range(&mut rng, 0..set.len()) as u32).collect();
    let query = w.queries.row(0).to_vec();
    let mut out = vec![0.0f32; rows.len()];

    batch_l2_squared(set, &rows, &query, &mut out);
    let auto_bits: Vec<u32> = out.iter().map(|d| d.to_bits()).collect();
    at_level(SimdLevel::Scalar, || {
        batch_l2_squared(set, &rows, &query, &mut out);
    });
    let scalar_bits: Vec<u32> = out.iter().map(|d| d.to_bits()).collect();
    assert_eq!(auto_bits, scalar_bits, "dispatch levels disagree bitwise");

    let mut run = || {
        batch_l2_squared(set, &rows, &query, &mut out);
        black_box(&out);
    };
    let baseline = time_ms(25, || at_level(SimdLevel::Scalar, &mut run));
    let optimized = time_ms(25, run);
    result("simd_batch", baseline, optimized)
}

/// Int8 code-space distance kernel: auto-dispatched SIMD level vs forced
/// scalar over the same quantized rows (960-d like `simd_l2`). The distance
/// is an integer sum of squared code differences, so cross-level identity
/// is exact equality, asserted before timing.
fn quantized_l2() -> Value {
    use pathweaver_vector::QuantizedSet;
    let dim = 960;
    let n = 512;
    let set = pathweaver_datasets::SyntheticSpec {
        dim,
        len: n + 1,
        distribution: pathweaver_datasets::Distribution::Uniform,
        seed: 47,
    }
    .generate();
    let qs = QuantizedSet::quantize(&set);
    let qcodes = qs.encode(set.row(n));
    let auto: Vec<u32> = (0..n).map(|i| qs.code_l2_squared(i, &qcodes)).collect();
    at_level(SimdLevel::Scalar, || {
        for (i, &d) in auto.iter().enumerate() {
            assert_eq!(qs.code_l2_squared(i, &qcodes), d, "row {i}");
        }
    });

    let run = || {
        let mut acc = 0u64;
        for _ in 0..16 {
            for i in 0..n {
                acc += u64::from(qs.code_l2_squared(i, &qcodes));
            }
        }
        black_box(acc);
    };
    let baseline = time_ms(15, || at_level(SimdLevel::Scalar, run));
    let optimized = time_ms(15, run);
    result("quantized_l2", baseline, optimized)
}

/// Quantized traversal vs exact traversal on the Deep-like profile: the
/// same index searched with `quantized` off ("baseline") and on
/// ("optimized"). Before the wall clocks run, the simulated numbers must
/// clear the tier's acceptance bar — int8 rows stream a quarter of the
/// bytes, so in the memory-bound cost model the simulated QPS must at
/// least double, and the exact re-rank must hold recall@k within 0.01 of
/// the exact path.
fn quantized_search() -> Value {
    use pathweaver_core::{PathWeaverConfig, PathWeaverIndex};
    use pathweaver_datasets::recall_batch;
    // Bench scale with a wide batch, not Test: the acceptance bar targets
    // the paper's memory-bound regime (Fig 2), which needs shards big
    // enough that streaming candidate vectors dominates the simulated
    // kernel time, and enough in-flight queries to amortize the fixed
    // per-batch kernel-launch and link-latency charges.
    let w = DatasetProfile::deep10m_like().workload(Scale::Bench, 1024, 10, 59);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2))
        .expect("bench index builds");
    // Default traversal parameters are sized for Test-scale shards; at
    // Bench scale they converge early with low recall. Widen the beam and
    // patience so the walk actually covers the shard — this is also what
    // pushes the kernel into the bandwidth-bound regime the tier targets.
    let exact = SearchParams {
        beam: 128,
        candidates: 64,
        patience: 32,
        max_iterations: 192,
        ..SearchParams::default()
    };
    let quant = SearchParams { quantized: true, ..exact };

    let out_exact = idx.search_pipelined(&w.queries, &exact);
    let out_quant = idx.search_pipelined(&w.queries, &quant);
    let sim_speedup = out_quant.qps / out_exact.qps.max(1e-12);
    // In this cost model bytes ≈ time: report the traffic cut alongside the
    // simulated clocks so the mechanism behind the speedup is visible.
    let ce = out_exact.timeline.aggregate_counters();
    let cq = out_quant.timeline.aggregate_counters();
    println!(
        "  vector traffic {:.1} MB exact -> {:.1} MB quantized; dist share {:.0}% -> {:.0}%",
        ce.vector_bytes as f64 / 1e6,
        cq.vector_bytes as f64 / 1e6,
        out_exact.breakdown.dist_fraction() * 100.0,
        out_quant.breakdown.dist_fraction() * 100.0,
    );
    let recall_exact = recall_batch(&w.ground_truth, &out_exact.results, exact.k);
    let recall_quant = recall_batch(&w.ground_truth, &out_quant.results, quant.k);
    println!(
        "quantized_search: simulated {:.0} qps exact vs {:.0} qps quantized ({sim_speedup:.2}x), \
         recall {recall_exact:.4} -> {recall_quant:.4}",
        out_exact.qps, out_quant.qps
    );
    assert!(
        sim_speedup >= 2.0,
        "quantized traversal must at least double simulated QPS, got {sim_speedup:.2}x"
    );
    assert!(
        recall_exact - recall_quant <= 0.01,
        "exact re-rank must hold recall within 0.01 of the exact path \
         ({recall_exact:.4} exact vs {recall_quant:.4} quantized)"
    );

    // The wall clocks here track the two code paths for regressions; the
    // tier's performance claim is the simulated assert above. On CPU the
    // quantized walk pays the same queue/hash bookkeeping per hop as the
    // exact one, so its wall time sits near parity — the 4× byte cut is a
    // device-memory effect, visible in the simulated clock by design.
    let baseline = time_ms(5, || {
        black_box(idx.search_pipelined(&w.queries, &exact));
    });
    let optimized = time_ms(5, || {
        black_box(idx.search_pipelined(&w.queries, &quant));
    });
    result("quantized_search", baseline, optimized)
}

/// Observability overhead: the same pipelined search with metrics + tracing
/// fully enabled ("baseline") vs disabled ("optimized"). The disabled path
/// must stay within noise of the uninstrumented build — the speedup here is
/// the cost of enabling observability, and the CI perf gate tracks the
/// disabled number against the committed baseline like every other entry.
fn obs_overhead() -> Value {
    use pathweaver_core::{PathWeaverConfig, PathWeaverIndex};
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 24, 10, 43);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2))
        .expect("bench index builds");
    let params = SearchParams::default();

    // Instrumentation must not perturb results or the simulated clock.
    pathweaver_obs::set_tracing(false);
    pathweaver_obs::set_enabled(false);
    let out_off = idx.search_pipelined(&w.queries, &params);
    pathweaver_obs::set_tracing(true);
    let out_on = idx.search_pipelined(&w.queries, &params);
    pathweaver_obs::set_tracing(false);
    pathweaver_obs::set_enabled(false);
    assert_eq!(out_off.hits, out_on.hits, "observability changed search results");
    assert_eq!(
        out_off.timeline.aggregate_counters(),
        out_on.timeline.aggregate_counters(),
        "observability perturbed the simulated clock"
    );

    let run = || {
        for _ in 0..4 {
            black_box(idx.search_pipelined(&w.queries, &params));
        }
    };
    let baseline = time_ms(7, || {
        pathweaver_obs::set_tracing(true);
        run();
        pathweaver_obs::set_tracing(false);
        pathweaver_obs::set_enabled(false);
    });
    let optimized = time_ms(7, run);
    pathweaver_obs::reset();
    result("obs_overhead", baseline, optimized)
}

/// End-to-end pipelined multi-shard search: auto dispatch vs forced scalar.
/// Search results and simulated-clock counters must be bitwise unchanged —
/// only the wall clock may move.
fn pipelined_search() -> Value {
    use pathweaver_core::{PathWeaverConfig, PathWeaverIndex};
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 24, 10, 43);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2))
        .expect("bench index builds");
    let params = SearchParams::default();

    let out_auto = idx.search_pipelined(&w.queries, &params);
    let out_scalar = at_level(SimdLevel::Scalar, || idx.search_pipelined(&w.queries, &params));
    assert_eq!(out_auto.hits, out_scalar.hits, "hits changed across dispatch levels");
    assert_eq!(
        out_auto.timeline.aggregate_counters(),
        out_scalar.timeline.aggregate_counters(),
        "simulated-clock counters changed across dispatch levels"
    );

    let run = || {
        for _ in 0..4 {
            black_box(idx.search_pipelined(&w.queries, &params));
        }
    };
    let baseline = time_ms(7, || at_level(SimdLevel::Scalar, run));
    let optimized = time_ms(7, run);
    result("pipelined_search", baseline, optimized)
}

/// Store open: the checksummed zero-copy segment (one aligned read, typed
/// views straight into the in-memory layouts) vs the legacy per-file
/// directory loader, on the same index. Both loads go through the public
/// `load_index` format probe; the two loaded indexes are asserted to search
/// identically before timing.
fn segment_open() -> Value {
    use pathweaver_core::store;
    use pathweaver_core::{PathWeaverConfig, PathWeaverIndex};
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 61);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2))
        .expect("bench index builds");
    let params = SearchParams::default();

    let root = std::env::temp_dir().join(format!("pw-bench-store-{}", std::process::id()));
    let legacy_dir = root.join("legacy");
    let segment_dir = root.join("segment");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&legacy_dir).expect("create bench store dir");
    std::fs::create_dir_all(&segment_dir).expect("create bench store dir");
    store::legacy::save_index_legacy(&idx, &legacy_dir).expect("legacy save");
    store::save_index(&idx, &segment_dir).expect("segment save");

    let from_legacy = store::load_index(&legacy_dir).expect("legacy load");
    let from_segment = store::load_index(&segment_dir).expect("segment load");
    assert_eq!(
        from_legacy.search_pipelined(&w.queries, &params).hits,
        from_segment.search_pipelined(&w.queries, &params).hits,
        "segment and legacy loaders disagree on search results"
    );

    let baseline = time_ms(9, || {
        black_box(store::load_index(&legacy_dir).expect("legacy load"));
    });
    let optimized = time_ms(9, || {
        black_box(store::load_index(&segment_dir).expect("segment load"));
    });
    let _ = std::fs::remove_dir_all(&root);
    result("segment_open", baseline, optimized)
}

/// Streamed serving vs one-batch-at-a-time: a backlog of single-query
/// batches on a 4-device ring. Serialized, every batch pays the full ring
/// traversal before the next starts; streamed through the [`Server`], batch
/// `b+1`'s entry stage runs while batch `b`'s tail still hops the remaining
/// devices. Hits must be identical; the simulated-makespan speedup
/// (serialized sum vs overlapped replay of the merged timeline) must clear
/// the 1.5× serve-layer acceptance bar.
///
/// [`Server`]: pathweaver_core::serve::Server
fn serve_throughput() -> Value {
    use pathweaver_core::serve::{ServeConfig, Server};
    use pathweaver_core::{PathWeaverConfig, PathWeaverIndex};
    use std::sync::Arc;

    const BATCHES: usize = 12;
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, BATCHES, 10, 53);
    let idx = Arc::new(
        PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(4))
            .expect("bench index builds"),
    );
    let params = SearchParams::default();

    // Serialized reference: per-batch hits plus summed simulated makespans.
    let singles: Vec<pathweaver_vector::VectorSet> = (0..BATCHES)
        .map(|r| {
            let mut q = pathweaver_vector::VectorSet::empty(idx.dim());
            q.push(w.queries.row(r));
            q
        })
        .collect();
    let serial_outs: Vec<_> = singles.iter().map(|q| idx.search_pipelined(q, &params)).collect();
    let serial_sim_s: f64 = serial_outs.iter().map(|o| o.makespan_s).sum();

    let config = ServeConfig {
        max_batch: 1, // Every submission is its own in-flight batch.
        queue_capacity: BATCHES,
        params,
        ..ServeConfig::default()
    };
    let server = Server::new(Arc::clone(&idx), config.clone()).expect("serve threads spawn");
    let tickets: Vec<_> = (0..BATCHES)
        .map(|r| server.try_submit(w.queries.row(r)).expect("capacity fits the backlog"))
        .collect();
    let results: Vec<_> = tickets.into_iter().map(|t| t.wait().expect("server stays up")).collect();
    for (r, (res, reference)) in results.iter().zip(&serial_outs).enumerate() {
        assert_eq!(res.hits, reference.hits[0], "query {r}: streamed hits diverged");
    }
    let overlapped_sim_s = server.timeline().overlapped_makespan_s();
    server.shutdown();
    let sim_speedup = serial_sim_s / overlapped_sim_s.max(1e-12);
    println!(
        "serve_throughput: simulated {:.1} us serialized vs {:.1} us overlapped ({sim_speedup:.2}x)",
        serial_sim_s * 1e6,
        overlapped_sim_s * 1e6
    );
    assert!(
        sim_speedup >= 1.5,
        "overlapped serving must beat serialized by 1.5x simulated, got {sim_speedup:.2}x"
    );

    let baseline = time_ms(7, || {
        for q in &singles {
            black_box(idx.search_pipelined(q, &params));
        }
    });
    let server = Server::new(Arc::clone(&idx), config).expect("serve threads spawn");
    let optimized = time_ms(7, || {
        let tickets: Vec<_> = (0..BATCHES)
            .map(|r| server.try_submit(w.queries.row(r)).expect("capacity fits the backlog"))
            .collect();
        for t in tickets {
            black_box(t.wait().expect("server stays up"));
        }
    });
    server.shutdown();
    result("serve_throughput", baseline, optimized)
}

/// Snapshot isolation under churn: per-query serve latency through the
/// dynamic (snapshot-pinning) server, read-only vs with a mutator thread
/// streaming far-away inserts and deletes (and the background maintainer
/// folding tombstones). Mutations publish copy-on-write snapshots off the
/// read path, so the search p99 under churn must stay within 1.5× of the
/// read-only p99 — the snapshot-isolation acceptance bar. As with
/// [`cluster_serve`], the bar is enforced on the deterministic counted
/// clock (per-query `visits` p99): on a runner where searches and the
/// writer time-share one core, wall tails measure the OS scheduler, not
/// the snapshot design — the wall-clock p99 bar additionally applies
/// whenever the host has cores to actually run reads beside the writer.
/// `optimized_ms` reports the under-mutation wall *median*, the stable
/// number the perf gate can track over time (the wall tail has multi-x
/// run-to-run variance on shared runners).
fn mutate_under_serve() -> Value {
    use pathweaver_core::serve::{ServeConfig, Server};
    use pathweaver_core::snapshot::ConcurrentIndex;
    use pathweaver_core::{PathWeaverConfig, PathWeaverIndex};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const SAMPLES: usize = 120;
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 59);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2))
        .expect("bench index builds");
    let concurrent = Arc::new(ConcurrentIndex::new(idx));

    // (wall median ms, wall p99 ms, counted-work p99) over samples, where
    // one sample drives the full query set through the server one query at
    // a time (max_batch = 1) and tallies the summed search visits — a
    // group is long enough to measure above timer granularity, and any
    // writer collision inside it lands in the group's tail. The perf gate
    // tracks the median — on a shared runner the wall tail is scheduler
    // noise with multi-x run-to-run variance, far past the gate's
    // tolerance.
    let p99 = |server: &Server| -> (f64, f64, u64) {
        let submit = |row: usize| loop {
            match server.try_submit(w.queries.row(row)) {
                Ok(ticket) => break ticket,
                Err(_) => std::thread::yield_now(),
            }
        };
        // Untimed warm-up: first batches pay thread wake-up and page faults.
        for row in 0..w.queries.len() {
            submit(row).wait().expect("server stays up");
        }
        let mut lat = Vec::with_capacity(SAMPLES);
        let mut visits = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let mut group_visits = 0u64;
            let t = Instant::now();
            for row in 0..w.queries.len() {
                let res = submit(row).wait().expect("server stays up");
                assert!(!res.hits.is_empty(), "served query returned no hits");
                group_visits += res.stats.visits;
            }
            lat.push(t.elapsed().as_secs_f64() * 1e3);
            visits.push(group_visits);
        }
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        visits.sort_unstable();
        (lat[lat.len() / 2], lat[lat.len() * 99 / 100], visits[visits.len() * 99 / 100])
    };

    let config = ServeConfig { max_batch: 1, ..ServeConfig::default() };
    let server =
        Server::new_dynamic(Arc::clone(&concurrent), config.clone()).expect("serve threads spawn");
    let (read_only_median, read_only, read_only_visits) = p99(&server);
    server.shutdown();

    let maintainer = concurrent.spawn_maintainer(0.3, 2.0).expect("valid threshold");
    let server = Server::new_dynamic(Arc::clone(&concurrent), config).expect("serve threads spawn");
    let stop = AtomicBool::new(false);
    let under_mutation = std::thread::scope(|s| {
        let (concurrent, w, stop) = (&concurrent, &w, &stop);
        s.spawn(move || {
            // Far-away inserts (never in any top-k) and deletes of our own
            // inserts. Paced at ~500 mutations/s: this measures the cost a
            // *streaming* ingest imposes on search tails, not a saturating
            // bulk load — on a single-core runner an unthrottled writer
            // loop would simply time-share the CPU away from serving and
            // measure the scheduler, not the snapshot design.
            let mut minted: Vec<u32> = Vec::new();
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                let far: Vec<f32> = w.base.row(i % w.base.len()).iter().map(|x| x + 40.0).collect();
                minted.push(concurrent.insert(&far).expect("streamed insert"));
                if i % 2 == 1 {
                    concurrent.delete(minted[i - 1]).expect("streamed delete");
                }
                i += 1;
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        let p = p99(&server);
        stop.store(true, Ordering::Release);
        p
    });
    server.shutdown();
    maintainer.stop();

    let (under_mutation_median, under_mutation, under_mutation_visits) = under_mutation;
    let wall_ratio = under_mutation / read_only.max(1e-9);
    let work_ratio = under_mutation_visits as f64 / (read_only_visits as f64).max(1e-9);
    println!(
        "mutate_under_serve: read-only p99 {read_only:.3} ms / {read_only_visits} visits, \
         streaming p99 {under_mutation:.3} ms / {under_mutation_visits} visits \
         ({wall_ratio:.2}x wall, {work_ratio:.2}x work)"
    );
    assert!(
        work_ratio <= 1.5,
        "per-query search work p99 under streaming mutation must stay within 1.5x read-only, \
         got {work_ratio:.2}x"
    );
    // With cores to spare beyond the writer and the two pool workers, reads
    // really do run beside mutations and the wall bar applies directly.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores > 3 {
        assert!(
            wall_ratio <= 1.5,
            "search wall p99 under streaming mutation must stay within 1.5x read-only \
             on a {cores}-core host, got {wall_ratio:.2}x"
        );
    }
    result("mutate_under_serve", read_only_median, under_mutation_median)
}

/// Cluster serving: the same batch stream through a 1-node cluster vs a
/// 4-node cluster holding the partition 4-way replicated, over the
/// in-process channel transport. The 1-node hits (and simulated makespan
/// bits) must match `serve_once` exactly — the cluster layer's identity
/// contract. Replicated read fan-out then spreads the stream round-robin
/// over the nodes; summing each node's simulated busy time, the 4-node
/// simulated QPS must clear 2.5× the 1-node number (near-linear scaling,
/// the cluster-layer acceptance bar) before the wall clocks are compared.
/// On CPU both configurations share the same cores, so wall parity is
/// expected — the scaling claim lives in the simulated clock by design.
fn cluster_serve() -> Value {
    use pathweaver_core::cluster::{build_partitions, LocalCluster, TransportKind};
    use pathweaver_core::config::ClusterConfig;
    use pathweaver_core::serve::serve_once;
    use pathweaver_core::PathWeaverConfig;

    const BATCHES: usize = 16;
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 67);
    let parts = build_partitions(&w.base, &PathWeaverConfig::test_scale(2), 1)
        .expect("bench partition builds");
    let params = SearchParams::default();
    let reference = serve_once(&parts[0].index, &w.queries, &params).expect("reference serve");

    let launch = |nodes: usize| {
        let config =
            ClusterConfig { partitions: 1, replication: nodes, ..ClusterConfig::default() };
        LocalCluster::launch_with_partitions(&parts, &config, nodes, TransportKind::Channel, &[])
            .expect("bench cluster boots")
    };

    // Simulated phase: drive the batch stream sequentially, checking every
    // answer bitwise, then read per-node busy time off the router.
    let sim_qps = |nodes: usize| -> f64 {
        let cluster = launch(nodes);
        for b in 0..BATCHES {
            let out = cluster.router().search(&w.queries, &params).expect("cluster search");
            assert_eq!(out.hits, reference.hits, "batch {b}: cluster hits diverged");
            if nodes == 1 {
                assert_eq!(
                    out.makespan_s.to_bits(),
                    reference.makespan_s.to_bits(),
                    "batch {b}: 1-node simulated makespan must match serve_once bitwise"
                );
            }
        }
        let busy_s = cluster.router().node_busy_s().into_iter().fold(0.0f64, f64::max);
        cluster.shutdown();
        (BATCHES * w.queries.len()) as f64 / busy_s.max(1e-12)
    };
    let qps_1 = sim_qps(1);
    let qps_4 = sim_qps(4);
    let scaling = qps_4 / qps_1.max(1e-12);
    println!(
        "cluster_serve: simulated {qps_1:.0} qps on 1 node vs {qps_4:.0} qps on 4 nodes \
         ({scaling:.2}x)"
    );
    assert!(
        scaling >= 2.5,
        "4-node replicated serving must clear 2.5x the 1-node simulated QPS, got {scaling:.2}x"
    );

    let cluster_1 = launch(1);
    let baseline = time_ms(5, || {
        for _ in 0..BATCHES {
            black_box(cluster_1.router().search(&w.queries, &params).expect("cluster search"));
        }
    });
    cluster_1.shutdown();
    let cluster_4 = launch(4);
    let optimized = time_ms(5, || {
        for _ in 0..BATCHES {
            black_box(cluster_4.router().search(&w.queries, &params).expect("cluster search"));
        }
    });
    cluster_4.shutdown();
    result("cluster_serve", baseline, optimized)
}

fn main() {
    // Default to two threads so the dispatch comparison exercises the pool
    // even on single-core runners; an explicit setting wins.
    if std::env::var("PATHWEAVER_THREADS").is_err() {
        std::env::set_var("PATHWEAVER_THREADS", "2");
    }
    let threads = pathweaver_util::available_threads();
    let simd_name = pathweaver_vector::active_simd_level().name();
    println!("wallclock bench: {threads} threads, simd dispatch: {simd_name}");

    let results = vec![
        pool_dispatch(),
        batch_search(),
        batch_distance(),
        simd_l2(),
        simd_batch(),
        quantized_l2(),
        quantized_search(),
        pipelined_search(),
        obs_overhead(),
        segment_open(),
        serve_throughput(),
        mutate_under_serve(),
        cluster_serve(),
    ];
    let doc = json!({
        "bench": "wallclock",
        "threads": threads,
        "simd": simd_name,
        "results": results,
    });
    let path = std::env::var("PATHWEAVER_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_wallclock.json".to_string());
    let text = serde_json::to_string_pretty(&doc).expect("serialize bench output");
    std::fs::write(&path, text).expect("write bench output");
    println!("wrote {path}");

    // One instrumented pass so the run ships a metrics summary alongside the
    // timing numbers (CI uploads both as artifacts).
    pathweaver_obs::set_enabled(true);
    pipelined_search_snapshot();
    let metrics_path = std::env::var("PATHWEAVER_METRICS_OUT")
        .unwrap_or_else(|_| "target/BENCH_metrics.json".to_string());
    if let Some(dir) = std::path::Path::new(&metrics_path).parent() {
        std::fs::create_dir_all(dir).expect("create metrics output directory");
    }
    let mut summary = pathweaver_obs::global_snapshot().to_json();
    summary.push('\n');
    std::fs::write(&metrics_path, summary).expect("write metrics summary");
    pathweaver_obs::set_enabled(false);
    pathweaver_obs::reset();
    println!("wrote {metrics_path}");
}

/// Runs one pipelined search purely to populate the metrics registry for the
/// end-of-run summary.
fn pipelined_search_snapshot() {
    use pathweaver_core::{PathWeaverConfig, PathWeaverIndex};
    let w = DatasetProfile::deep10m_like().workload(Scale::Test, 24, 10, 43);
    let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2))
        .expect("bench index builds");
    black_box(idx.search_pipelined(&w.queries, &SearchParams::default()));
}
