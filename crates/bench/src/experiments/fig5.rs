//! Fig 5: per-stage execution-time breakdown after pipelining-based path
//! extension.
//!
//! The unseeded first stage dominates (paper: up to 31 % on Deep-50M vs
//! ≤22 % for each later stage), which motivates ghost staging.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_gpusim::trace::stage_fractions;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    stage: usize,
    fraction: f64,
}

/// Measures stage-time fractions of the pipelined search on the multi-GPU
/// datasets, with ghost staging disabled so stage 1's raw cost shows.
pub fn run(s: &Session) -> ExperimentRecord {
    let devices = s.multi_devices();
    let mut rec = ExperimentRecord::new(
        "fig5",
        "Stage-wise time fractions of pipelining-based path extension (Fig 5)",
    );
    rec.note("ghost staging disabled: this is the +PPE-only configuration the paper profiles");
    rec.note("paper: first stage up to 31 %, later stages ≤22 %");
    let mut rows = Vec::new();
    for profile in DatasetProfile::multi_gpu_targets() {
        let w = s.workload(&profile);
        let idx = s.pathweaver_variant(&profile, devices, "ppe-only", |c| {
            c.ghost = None;
            c.build_dir_table = false;
        });
        let out = idx.search_pipelined(&w.queries, &s.base_params());
        for (stage, frac) in stage_fractions(&out.timeline).into_iter().enumerate() {
            let row = Row { dataset: profile.name, stage: stage + 1, fraction: frac };
            rec.push_row(&row);
            rows.push(vec![row.dataset.into(), row.stage.to_string(), f(row.fraction, 3)]);
        }
    }
    header(&rec);
    print!("{}", text_table(&["dataset", "stage", "time fraction"], &rows));
    rec
}
