//! Fig 10: single-GPU QPS–recall comparison.
//!
//! PathWeaver (ghost staging + DGS, no pipelining possible) vs CAGRA, GGNN
//! and the HNSW CPU baseline. Paper: 3.43× over CAGRA.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::eval::{qps_at_recall, sweep_beam, SearchMode};
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_datasets::recall_batch;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    framework: &'static str,
    qps: f64,
    recall_reached: f64,
    clock: &'static str,
}

/// Runs all four frameworks on the single-GPU datasets.
pub fn run(s: &Session) -> ExperimentRecord {
    let target = 0.95;
    let mut rec = ExperimentRecord::new("fig10", "Single-GPU QPS–recall comparison (Fig 10)");
    rec.note("HNSW runs on the real CPU (wall clock); GPU frameworks use the simulated clock");
    rec.note("paper: PathWeaver 3.43x over CAGRA on a single GPU");
    let mut rows = Vec::new();
    for profile in DatasetProfile::single_gpu_targets() {
        let w = s.workload(&profile);

        let pw = s.pathweaver(&profile, 1);
        let pw_pts = sweep_beam(
            &pw,
            &w.queries,
            &w.ground_truth,
            &s.pathweaver_params(),
            &s.beams(),
            SearchMode::Pipelined,
        );
        let cagra = s.cagra(&profile, 1);
        let ca_pts = sweep_beam(
            &cagra.index,
            &w.queries,
            &w.ground_truth,
            &s.base_params(),
            &s.beams(),
            SearchMode::Naive,
        );
        let ggnn = s.ggnn(&profile, 1);
        let gg_pts = sweep_beam(
            &ggnn.index,
            &w.queries,
            &w.ground_truth,
            &s.base_params(),
            &s.beams(),
            SearchMode::Naive,
        );
        for (fw, pts) in [("PathWeaver", &pw_pts), ("CAGRA", &ca_pts), ("GGNN", &gg_pts)] {
            let qps = qps_at_recall(pts, target).unwrap_or(0.0);
            let reached = pts.iter().map(|p| p.recall).fold(0.0f64, f64::max);
            let row = Row {
                dataset: profile.name,
                framework: fw,
                qps,
                recall_reached: reached,
                clock: "sim",
            };
            rec.push_row(&row);
            rows.push(vec![
                row.dataset.into(),
                row.framework.into(),
                f(row.qps, 0),
                f(row.recall_reached, 3),
                row.clock.into(),
            ]);
        }

        // HNSW CPU: sweep ef, report measured wall-clock QPS at the target.
        let hnsw = s.hnsw(&profile);
        let mut curve: Vec<(f64, f64)> = Vec::new();
        let mut best_recall = 0.0f64;
        for ef in [16usize, 32, 64, 128] {
            let out = hnsw.search_cpu(&w.queries, s.k, ef);
            let recall = recall_batch(&w.ground_truth, &out.results, s.k);
            best_recall = best_recall.max(recall);
            curve.push((recall, out.qps_measured));
        }
        curve.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let qps = if curve.iter().any(|p| p.0 >= target) {
            pathweaver_util::stats::interp_at(&curve, target).unwrap_or(0.0)
        } else {
            0.0
        };
        let row = Row {
            dataset: profile.name,
            framework: "HNSW (CPU)",
            qps,
            recall_reached: best_recall,
            clock: "wall",
        };
        rec.push_row(&row);
        rows.push(vec![
            row.dataset.into(),
            row.framework.into(),
            f(row.qps, 0),
            f(row.recall_reached, 3),
            row.clock.into(),
        ]);
    }
    header(&rec);
    print!("{}", text_table(&["dataset", "framework", "QPS@95", "max recall", "clock"], &rows));
    rec
}
