//! Fig 15: neighbor-discarding strategies at varying discard ratios.
//!
//! Direction-guided selection keeps recall within ~0.003 of exact even at a
//! 0.7 discard ratio; random discarding of the same volume loses up to
//! 0.038 (paper, Deep-10M).

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::eval::{run_mode, SearchMode};
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_datasets::recall_batch;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    discard_ratio: f64,
    exact_recall: f64,
    dgs_recall: f64,
    random_recall: f64,
}

/// Sweeps the discard ratio with a fixed 0.5 cool-down, single GPU.
pub fn run(s: &Session) -> ExperimentRecord {
    let mut rec =
        ExperimentRecord::new("fig15", "DGS vs random neighbor discarding, ratio sweep (Fig 15)");
    rec.note("cool-down ratio fixed at 0.5 (paper setting)");
    let mut rows = Vec::new();
    let ratios: &[f64] = match s.scale {
        Scale::Test => &[0.3, 0.7],
        _ => &[0.1, 0.3, 0.5, 0.7],
    };
    for profile in [DatasetProfile::sift_like(), DatasetProfile::deep10m_like()] {
        let w = s.workload(&profile);
        let idx = s.pathweaver(&profile, 1);
        let exact_params = s.base_params();
        let exact_out = run_mode(&idx, &w.queries, &exact_params, SearchMode::Pipelined);
        let exact_recall = recall_batch(&w.ground_truth, &exact_out.results, s.k);
        for &ratio in ratios {
            let dgs_params = SearchParams {
                dgs: Some(DgsParams {
                    keep_ratio: 1.0 - ratio,
                    cooldown_ratio: 0.5,
                    threshold_mode: false,
                }),
                random_discard: false,
                ..exact_params
            };
            let rnd_params = SearchParams { random_discard: true, ..dgs_params };
            let dgs_out = run_mode(&idx, &w.queries, &dgs_params, SearchMode::Pipelined);
            let rnd_out = run_mode(&idx, &w.queries, &rnd_params, SearchMode::Pipelined);
            let row = Row {
                dataset: profile.name,
                discard_ratio: ratio,
                exact_recall,
                dgs_recall: recall_batch(&w.ground_truth, &dgs_out.results, s.k),
                random_recall: recall_batch(&w.ground_truth, &rnd_out.results, s.k),
            };
            rec.push_row(&row);
            rows.push(vec![
                row.dataset.into(),
                f(row.discard_ratio, 1),
                f(row.exact_recall, 3),
                f(row.dgs_recall, 3),
                f(row.random_recall, 3),
            ]);
        }
    }
    header(&rec);
    print!("{}", text_table(&["dataset", "discard ratio", "exact", "DGS", "random"], &rows));
    rec
}
