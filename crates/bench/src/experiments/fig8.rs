//! Fig 8: multi-GPU QPS–recall comparison.
//!
//! PathWeaver vs CAGRA-w/-sharding vs GGNN on the multi-GPU datasets. The
//! paper's headline: 3.24× geomean speedup over the best baseline at 95 %
//! recall, up to 5.30× on Wiki-10M.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::eval::{qps_at_recall, sweep_beam, SearchMode, SweepPoint};
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::text_table;
use pathweaver_util::stats::geomean;
use serde::Serialize;

#[derive(Serialize)]
struct CurveRow {
    dataset: &'static str,
    framework: &'static str,
    beam: usize,
    recall: f64,
    qps: f64,
}

#[derive(Serialize)]
struct SummaryRow {
    dataset: &'static str,
    pathweaver_qps: f64,
    cagra_qps: f64,
    ggnn_qps: f64,
    speedup_vs_best: f64,
}

/// Sweeps all three frameworks on the multi-GPU datasets and summarizes
/// QPS at the target recall.
pub fn run(s: &Session) -> ExperimentRecord {
    let devices = s.multi_devices();
    let target = 0.95;
    let mut rec = ExperimentRecord::new("fig8", "Multi-GPU QPS–recall comparison (Fig 8)");
    rec.note(format!(
        "summary reads QPS at recall {target}; paper headline 3.24× geomean vs CAGRA"
    ));
    let mut curve_rows = Vec::new();
    let mut summary_rows = Vec::new();
    let mut speedups = Vec::new();
    for profile in DatasetProfile::multi_gpu_targets() {
        let w = s.workload(&profile);

        let pw = s.pathweaver(&profile, devices);
        let pw_pts = sweep_beam(
            &pw,
            &w.queries,
            &w.ground_truth,
            &s.pathweaver_params(),
            &s.beams(),
            SearchMode::Pipelined,
        );
        let cagra = s.cagra(&profile, devices);
        let cagra_pts = sweep_beam(
            &cagra.index,
            &w.queries,
            &w.ground_truth,
            &s.base_params(),
            &s.beams(),
            SearchMode::Naive,
        );
        let ggnn = s.ggnn(&profile, devices);
        let ggnn_pts = sweep_beam(
            &ggnn.index,
            &w.queries,
            &w.ground_truth,
            &s.base_params(),
            &s.beams(),
            SearchMode::Naive,
        );

        for (fw, pts) in
            [("PathWeaver", &pw_pts), ("CAGRA w/ Sharding", &cagra_pts), ("GGNN", &ggnn_pts)]
        {
            for p in pts {
                let row = CurveRow {
                    dataset: profile.name,
                    framework: fw,
                    beam: p.beam,
                    recall: p.recall,
                    qps: p.qps,
                };
                rec.push_row(&row);
            }
        }

        let read = |pts: &[SweepPoint]| qps_at_recall(pts, target).unwrap_or(0.0);
        let (pw_q, ca_q, gg_q) = (read(&pw_pts), read(&cagra_pts), read(&ggnn_pts));
        let best_baseline = ca_q.max(gg_q);
        let speedup = if best_baseline > 0.0 { pw_q / best_baseline } else { 0.0 };
        if speedup > 0.0 {
            speedups.push(speedup);
        }
        let row = SummaryRow {
            dataset: profile.name,
            pathweaver_qps: pw_q,
            cagra_qps: ca_q,
            ggnn_qps: gg_q,
            speedup_vs_best: speedup,
        };
        rec.push_row(&row);
        summary_rows.push(vec![
            row.dataset.into(),
            f(row.pathweaver_qps, 0),
            f(row.cagra_qps, 0),
            f(row.ggnn_qps, 0),
            format!("{}x", f(row.speedup_vs_best, 2)),
        ]);
        for p in &pw_pts {
            curve_rows.push(vec![
                profile.name.into(),
                "PathWeaver".into(),
                p.beam.to_string(),
                f(p.recall, 3),
                f(p.qps, 0),
            ]);
        }
    }
    let gm = geomean(&speedups);
    rec.note(format!("geomean speedup vs best baseline: {gm:.2}x"));
    header(&rec);
    println!("-- PathWeaver curves --");
    print!("{}", text_table(&["dataset", "framework", "beam", "recall", "sim-QPS"], &curve_rows));
    println!("-- summary @ recall {target} --");
    print!(
        "{}",
        text_table(&["dataset", "PathWeaver", "CAGRA-shard", "GGNN", "speedup"], &summary_rows)
    );
    println!("geomean speedup vs best baseline: {gm:.2}x  (paper: 3.24x vs CAGRA)");
    rec
}
