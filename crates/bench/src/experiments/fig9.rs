//! Fig 9: (a) PathWeaver scaling from 1 to 4 GPUs; (b) naive (sharded)
//! PathWeaver vs pipelined PathWeaver.
//!
//! Paper: 2.47× at 4 GPUs (62 % efficiency, +17 pp over the baselines), and
//! pipelining wins across datasets and recall targets.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::eval::{qps_at_recall, sweep_beam, SearchMode};
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct ScaleRow {
    devices: usize,
    qps: f64,
    speedup: f64,
    efficiency: f64,
}

#[derive(Serialize)]
struct ModeRow {
    dataset: &'static str,
    target_recall: f64,
    naive_qps: f64,
    pipelined_qps: f64,
    gain: f64,
}

/// Runs both sub-figures.
pub fn run(s: &Session) -> ExperimentRecord {
    let target = 0.95;
    let mut rec =
        ExperimentRecord::new("fig9", "PathWeaver scaling and naive-vs-pipelined (Fig 9)");
    rec.note("paper: 2.47x at 4 GPUs (62 % efficiency); pipelining wins across datasets/recalls");
    let mut scale_rows = Vec::new();
    let mut mode_rows = Vec::new();

    // (a) scaling on Deep-10M-like.
    let profile = DatasetProfile::deep10m_like();
    let w = s.workload(&profile);
    let mut base = None;
    for devices in [1usize, 2, 4] {
        let idx = s.pathweaver(&profile, devices);
        let pts = sweep_beam(
            &idx,
            &w.queries,
            &w.ground_truth,
            &s.pathweaver_params(),
            &s.beams(),
            SearchMode::Pipelined,
        );
        let qps = qps_at_recall(&pts, target).unwrap_or(0.0);
        let b = *base.get_or_insert(qps);
        let speedup = if b > 0.0 { qps / b } else { 0.0 };
        let row = ScaleRow { devices, qps, speedup, efficiency: speedup / devices as f64 };
        rec.push_row(&row);
        scale_rows.push(vec![
            row.devices.to_string(),
            f(row.qps, 0),
            f(row.speedup, 2),
            f(row.efficiency, 2),
        ]);
    }

    // (b) naive vs pipelined at two recall targets.
    for profile in [DatasetProfile::deep10m_like(), DatasetProfile::deep50m_like()] {
        let w = s.workload(&profile);
        let idx = s.pathweaver(&profile, s.multi_devices());
        let piped = sweep_beam(
            &idx,
            &w.queries,
            &w.ground_truth,
            &s.pathweaver_params(),
            &s.beams(),
            SearchMode::Pipelined,
        );
        let naive = sweep_beam(
            &idx,
            &w.queries,
            &w.ground_truth,
            &s.pathweaver_params(),
            &s.beams(),
            SearchMode::Naive,
        );
        for t in [0.90, 0.95] {
            let nq = qps_at_recall(&naive, t).unwrap_or(0.0);
            let pq = qps_at_recall(&piped, t).unwrap_or(0.0);
            let row = ModeRow {
                dataset: profile.name,
                target_recall: t,
                naive_qps: nq,
                pipelined_qps: pq,
                gain: if nq > 0.0 { pq / nq } else { 0.0 },
            };
            rec.push_row(&row);
            mode_rows.push(vec![
                row.dataset.into(),
                f(row.target_recall, 2),
                f(row.naive_qps, 0),
                f(row.pipelined_qps, 0),
                format!("{}x", f(row.gain, 2)),
            ]);
        }
    }

    header(&rec);
    println!("-- (a) PathWeaver scaling on deep10m-like @ recall {target} --");
    print!("{}", text_table(&["GPUs", "sim-QPS", "speedup", "efficiency"], &scale_rows));
    println!("-- (b) naive vs pipelined PathWeaver --");
    print!(
        "{}",
        text_table(&["dataset", "recall", "naive QPS", "pipelined QPS", "gain"], &mode_rows)
    );
    rec
}
