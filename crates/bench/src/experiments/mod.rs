//! One module per reproduced table/figure.
//!
//! Module ↔ paper mapping (see DESIGN.md for the full index):
//!
//! | module | paper | content |
//! |---|---|---|
//! | [`table2`] | Table 2 | dataset inventory |
//! | [`fig2`] | Fig 2 | baseline time breakdown (L2 dominates) |
//! | [`fig3`] | Fig 3 | sharding scalability & iteration blow-up |
//! | [`fig5`] | Fig 5 | per-stage breakdown after path extension |
//! | [`table1`] | Table 1 | discarded-visit ratios |
//! | [`fig8`] | Fig 8 | multi-GPU QPS–recall comparison |
//! | [`fig9`] | Fig 9 | PathWeaver scaling & naive-vs-pipelined |
//! | [`fig10`] | Fig 10 | single-GPU QPS–recall comparison |
//! | [`fig11`] | Fig 11 | ablation (+PPE, +GS, +DGS) |
//! | [`fig12`] | Fig 12 | PathWeaver time breakdown |
//! | [`fig13`] | Fig 13 | recall vs iteration budget |
//! | [`fig14`] | Fig 14 | ghost sampling-ratio sensitivity |
//! | [`fig15`] | Fig 15 | DGS vs random discard (ratio sweep) |
//! | [`fig16`] | Fig 16 | DGS cool-down sweep |
//! | [`fig17`] | Fig 17 | graph build overhead |
//! | [`fig18`] | Fig 18 | ghost staging vs GPU-searched HNSW |

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;

use crate::Session;
use pathweaver_core::report::ExperimentRecord;

/// All experiment ids in paper order.
pub const ALL: &[&str] = &[
    "table2", "fig2", "fig3", "fig5", "table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "fig18",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id (the CLI validates first).
pub fn run(id: &str, session: &Session) -> ExperimentRecord {
    match id {
        "table2" => table2::run(session),
        "fig2" => fig2::run(session),
        "fig3" => fig3::run(session),
        "fig5" => fig5::run(session),
        "table1" => table1::run(session),
        "fig8" => fig8::run(session),
        "fig9" => fig9::run(session),
        "fig10" => fig10::run(session),
        "fig11" => fig11::run(session),
        "fig12" => fig12::run(session),
        "fig13" => fig13::run(session),
        "fig14" => fig14::run(session),
        "fig15" => fig15::run(session),
        "fig16" => fig16::run(session),
        "fig17" => fig17::run(session),
        "fig18" => fig18::run(session),
        other => panic!("unknown experiment id '{other}'"),
    }
}

/// Formats a float with `prec` decimals.
pub(crate) fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Prints an experiment header.
pub(crate) fn header(record: &ExperimentRecord) {
    println!();
    println!("=== {} — {} ===", record.id, record.title);
    for n in &record.notes {
        println!("  note: {n}");
    }
}
