//! Fig 11: ablation study.
//!
//! Multi-GPU: CAGRA-shard baseline, then +PPE (pipelined search), +GS
//! (ghost shards), +DGS (direction-guided selection). Single-GPU: baseline,
//! +GS, +DGS (pipelining does not apply). Each step should add speedup.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::eval::{qps_at_recall, sweep_beam, SearchMode};
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    setting: &'static str,
    dataset: &'static str,
    variant: &'static str,
    qps: f64,
    speedup_vs_baseline: f64,
}

/// One ablation rung: which structures/modes are on.
struct Rung {
    name: &'static str,
    ghost: bool,
    dgs: bool,
    pipelined: bool,
}

/// Runs the multi- and single-GPU ablation ladders.
pub fn run(s: &Session) -> ExperimentRecord {
    let target = 0.90;
    let mut rec = ExperimentRecord::new("fig11", "Ablation: +PPE, +GS, +DGS (Fig 11)");
    rec.note(format!("QPS at recall {target}; each rung adds one mechanism"));
    let mut rows = Vec::new();

    let multi_rungs = [
        Rung { name: "baseline (CAGRA-shard)", ghost: false, dgs: false, pipelined: false },
        Rung { name: "+PPE", ghost: false, dgs: false, pipelined: true },
        Rung { name: "+GS", ghost: true, dgs: false, pipelined: true },
        Rung { name: "+DGS", ghost: true, dgs: true, pipelined: true },
    ];
    let single_rungs = [
        Rung { name: "baseline (CAGRA)", ghost: false, dgs: false, pipelined: false },
        Rung { name: "+GS", ghost: true, dgs: false, pipelined: false },
        Rung { name: "+DGS", ghost: true, dgs: true, pipelined: false },
    ];

    let multi_profiles = [
        DatasetProfile::deep10m_like(),
        DatasetProfile::deep50m_like(),
        DatasetProfile::sift_like(),
    ];
    let single_profiles = [DatasetProfile::deep10m_like(), DatasetProfile::sift_like()];

    for (setting, devices, profiles, rungs) in [
        ("multi-GPU", s.multi_devices(), &multi_profiles[..], &multi_rungs[..]),
        ("single-GPU", 1usize, &single_profiles[..], &single_rungs[..]),
    ] {
        for profile in profiles {
            let w = s.workload(profile);
            let mut baseline_qps = None;
            for rung in rungs {
                let label = if rung.ghost { "full" } else { "no-ghost" };
                let idx = s.pathweaver_variant(profile, devices, label, |c| {
                    if !rung.ghost {
                        c.ghost = None;
                    }
                });
                let params = if rung.dgs { s.pathweaver_params() } else { s.base_params() };
                let mode = if rung.pipelined && devices > 1 {
                    SearchMode::Pipelined
                } else {
                    SearchMode::Naive
                };
                // Single-GPU +GS/+DGS rungs run through the pipelined path
                // (one stage) so ghost staging applies.
                let mode = if devices == 1 && rung.ghost { SearchMode::Pipelined } else { mode };
                let pts = sweep_beam(&idx, &w.queries, &w.ground_truth, &params, &s.beams(), mode);
                let qps = qps_at_recall(&pts, target).unwrap_or(0.0);
                let base = *baseline_qps.get_or_insert(qps);
                let row = Row {
                    setting,
                    dataset: profile.name,
                    variant: rung.name,
                    qps,
                    speedup_vs_baseline: if base > 0.0 { qps / base } else { 0.0 },
                };
                rec.push_row(&row);
                rows.push(vec![
                    row.setting.into(),
                    row.dataset.into(),
                    row.variant.into(),
                    f(row.qps, 0),
                    format!("{}x", f(row.speedup_vs_baseline, 2)),
                ]);
            }
        }
    }
    header(&rec);
    print!("{}", text_table(&["setting", "dataset", "variant", "sim-QPS@90", "speedup"], &rows));
    rec
}
