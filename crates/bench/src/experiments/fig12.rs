//! Fig 12: PathWeaver execution-time breakdown.
//!
//! Multi-GPU: CAGRA-w/-sharding vs PathWeaver on Deep-10M (L2 still
//! dominates both; PathWeaver adds a small communication slice and a
//! slightly larger "rest" slice from the direction-table lookups).
//! Single-GPU: Sift + Deep-10M, no communication.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_gpusim::trace::BreakdownReport;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    setting: &'static str,
    dataset: &'static str,
    framework: &'static str,
    l2: f64,
    rest: f64,
    comm: f64,
}

/// Measures the three-way breakdown on both settings.
pub fn run(s: &Session) -> ExperimentRecord {
    let mut rec = ExperimentRecord::new("fig12", "PathWeaver time breakdown (Fig 12)");
    rec.note("paper: L2 dominates both frameworks; PathWeaver's comm slice is small");
    let mut rows = Vec::new();
    let push = |rec: &mut ExperimentRecord, rows: &mut Vec<Vec<String>>, row: Row| {
        rec.push_row(&row);
        rows.push(vec![
            row.setting.into(),
            row.dataset.into(),
            row.framework.into(),
            f(row.l2, 3),
            f(row.rest, 3),
            f(row.comm, 3),
        ]);
    };

    // Multi-GPU on Deep-10M-like.
    let profile = DatasetProfile::deep10m_like();
    let w = s.workload(&profile);
    let devices = s.multi_devices();
    let cagra = s.cagra(&profile, devices);
    let out = cagra.search(&w.queries, &s.base_params());
    let br = BreakdownReport::from_timeline(&out.timeline);
    push(
        &mut rec,
        &mut rows,
        Row {
            setting: "multi-GPU",
            dataset: profile.name,
            framework: "CAGRA w/ Sharding",
            l2: br.l2_fraction,
            rest: br.rest_fraction,
            comm: br.comm_fraction,
        },
    );
    let pw = s.pathweaver(&profile, devices);
    let out = pw.search_pipelined(&w.queries, &s.pathweaver_params());
    let br = BreakdownReport::from_timeline(&out.timeline);
    push(
        &mut rec,
        &mut rows,
        Row {
            setting: "multi-GPU",
            dataset: profile.name,
            framework: "PathWeaver",
            l2: br.l2_fraction,
            rest: br.rest_fraction,
            comm: br.comm_fraction,
        },
    );

    // Single-GPU on Sift + Deep-10M.
    for profile in [DatasetProfile::sift_like(), DatasetProfile::deep10m_like()] {
        let w = s.workload(&profile);
        let cagra = s.cagra(&profile, 1);
        let out = cagra.search(&w.queries, &s.base_params());
        let br = BreakdownReport::from_timeline(&out.timeline);
        push(
            &mut rec,
            &mut rows,
            Row {
                setting: "single-GPU",
                dataset: profile.name,
                framework: "CAGRA",
                l2: br.l2_fraction,
                rest: br.rest_fraction,
                comm: br.comm_fraction,
            },
        );
        let pw = s.pathweaver(&profile, 1);
        let out = pw.search_pipelined(&w.queries, &s.pathweaver_params());
        let br = BreakdownReport::from_timeline(&out.timeline);
        push(
            &mut rec,
            &mut rows,
            Row {
                setting: "single-GPU",
                dataset: profile.name,
                framework: "PathWeaver",
                l2: br.l2_fraction,
                rest: br.rest_fraction,
                comm: br.comm_fraction,
            },
        );
    }
    header(&rec);
    print!("{}", text_table(&["setting", "dataset", "framework", "L2", "rest", "comm"], &rows));
    rec
}
