//! Fig 14: ghost-node sampling ratio versus QPS.
//!
//! Smaller ghost shards win (paper: 1.39× higher QPS at ratio 1e-4 vs 1e-1
//! on Sift-1M): fewer ghost nodes mean longer "highway" hops and a cheaper
//! ghost stage.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::eval::{qps_at_recall, sweep_beam, SearchMode};
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    sampling_ratio: f64,
    qps: f64,
}

/// Sweeps the ghost sampling ratio on the single-GPU setting.
pub fn run(s: &Session) -> ExperimentRecord {
    let target = 0.85;
    let mut rec = ExperimentRecord::new("fig14", "Ghost sampling ratio vs QPS (Fig 14)");
    rec.note(format!("single GPU, QPS at recall {target}; paper: lower ratios win"));
    rec.note("ratio axis maps to the paper's by *absolute ghost count*: 0.01 of a 20k shard ≈ 1e-4 of the paper's 2.5M shards");
    let mut rows = Vec::new();
    let ratios: &[f64] = match s.scale {
        Scale::Test => &[0.01, 0.1],
        _ => &[0.002, 0.005, 0.01, 0.05, 0.1],
    };
    for profile in [DatasetProfile::sift_like(), DatasetProfile::deep10m_like()] {
        let w = s.workload(&profile);
        for &ratio in ratios {
            let label = format!("ghost-ratio-{ratio}");
            let idx = s.pathweaver_variant(&profile, 1, &label, |c| {
                if let Some(g) = c.ghost.as_mut() {
                    g.sampling_ratio = ratio;
                }
            });
            let pts = sweep_beam(
                &idx,
                &w.queries,
                &w.ground_truth,
                &s.pathweaver_params(),
                &s.beams(),
                SearchMode::Pipelined,
            );
            let qps = qps_at_recall(&pts, target).unwrap_or(0.0);
            let row = Row { dataset: profile.name, sampling_ratio: ratio, qps };
            rec.push_row(&row);
            rows.push(vec![row.dataset.into(), format!("{ratio}"), f(row.qps, 0)]);
        }
    }
    header(&rec);
    print!("{}", text_table(&["dataset", "sampling ratio", "sim-QPS@target"], &rows));
    rec
}
