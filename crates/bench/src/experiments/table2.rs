//! Table 2: datasets used in the evaluation.

use crate::experiments::header;
use crate::Session;
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    target: &'static str,
    dataset: &'static str,
    dim: usize,
    paper_size: usize,
    repro_size: usize,
    kind: &'static str,
}

/// Prints the dataset inventory with the paper's sizes and this run's sizes.
pub fn run(s: &Session) -> ExperimentRecord {
    let mut rec = ExperimentRecord::new("table2", "Datasets used in evaluation (Table 2)");
    rec.note("repro sizes are the synthetic '-like' profiles at the current scale");
    let mut rows = Vec::new();
    for p in DatasetProfile::all() {
        let row = Row {
            target: if p.multi_gpu_target { "multi-GPU" } else { "single-GPU" },
            dataset: p.name,
            dim: p.dim,
            paper_size: p.paper_len,
            repro_size: p.len_at(s.scale),
            kind: if p.sphere { "float (unit norm)" } else { "float" },
        };
        rec.push_row(&row);
        rows.push(vec![
            row.target.to_string(),
            row.dataset.to_string(),
            row.dim.to_string(),
            row.paper_size.to_string(),
            row.repro_size.to_string(),
            row.kind.to_string(),
        ]);
    }
    header(&rec);
    print!("{}", text_table(&["target", "dataset", "dim", "paper n", "repro n", "type"], &rows));
    rec
}
