//! Fig 18: ghost staging versus a GPU-searched HNSW graph.
//!
//! Both are hierarchical entry-point strategies; ghost staging builds its
//! stage on top of an already-optimized flat graph and consistently wins
//! (paper §6.1). DGS and PPE are disabled for fairness.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::eval::{qps_at_recall, sweep_beam, SearchMode};
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    approach: &'static str,
    qps: f64,
    max_recall: f64,
}

/// Compares ghost staging against the GPU kernel running on HNSW's layer-0
/// graph.
pub fn run(s: &Session) -> ExperimentRecord {
    let target = 0.90;
    let mut rec =
        ExperimentRecord::new("fig18", "Ghost staging vs GPU-searched HNSW graph (Fig 18)");
    rec.note("DGS and PPE disabled on the PathWeaver side for fairness (paper §6.1)");
    let mut rows = Vec::new();
    for profile in [DatasetProfile::sift_like(), DatasetProfile::deep10m_like()] {
        let w = s.workload(&profile);

        // Ghost staging on the CAGRA-style graph (no DGS).
        let idx = s.pathweaver(&profile, 1);
        let pts = sweep_beam(
            &idx,
            &w.queries,
            &w.ground_truth,
            &s.base_params(),
            &s.beams(),
            SearchMode::Pipelined,
        );
        let row = Row {
            dataset: profile.name,
            approach: "ghost staging",
            qps: qps_at_recall(&pts, target).unwrap_or(0.0),
            max_recall: pts.iter().map(|p| p.recall).fold(0.0, f64::max),
        };
        rec.push_row(&row);
        rows.push(vec![
            row.dataset.into(),
            row.approach.into(),
            f(row.qps, 0),
            f(row.max_recall, 3),
        ]);

        // GPU kernel over HNSW layer 0, random entries.
        let hnsw = s.hnsw(&profile);
        let hidx = hnsw.as_gpu_index();
        let pts = sweep_beam(
            &hidx,
            &w.queries,
            &w.ground_truth,
            &s.base_params(),
            &s.beams(),
            SearchMode::Naive,
        );
        let row = Row {
            dataset: profile.name,
            approach: "GPU-searched HNSW",
            qps: qps_at_recall(&pts, target).unwrap_or(0.0),
            max_recall: pts.iter().map(|p| p.recall).fold(0.0, f64::max),
        };
        rec.push_row(&row);
        rows.push(vec![
            row.dataset.into(),
            row.approach.into(),
            f(row.qps, 0),
            f(row.max_recall, 3),
        ]);
    }
    header(&rec);
    print!("{}", text_table(&["dataset", "approach", "sim-QPS@90", "max recall"], &rows));
    rec
}
