//! Fig 3: scalability of the sharding baseline.
//!
//! (a) Speedup of CAGRA-w/-sharding with 1→4 GPUs is far below linear
//! (paper: 1.39× at 4 GPUs on Sift-1M ≈ 35 % efficiency); (b) the per-query
//! *total* iterations across shards grow with the shard count.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::eval::{qps_at_recall, sweep_beam, SearchMode};
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    devices: usize,
    qps_at_target: f64,
    speedup: f64,
    efficiency: f64,
    iters_per_query: f64,
}

/// Sweeps device counts for the sharding baseline.
pub fn run(s: &Session) -> ExperimentRecord {
    let target = 0.90;
    let mut rec = ExperimentRecord::new(
        "fig3",
        "Sharding-baseline scalability: speedup and total iterations (Fig 3)",
    );
    rec.note(format!("QPS read at recall {target}"));
    rec.note("paper: ~35 % (CAGRA) / ~43 % (GGNN) efficiency at 4 GPUs; total iterations grow with shards");
    let mut rows = Vec::new();
    for profile in [DatasetProfile::sift_like(), DatasetProfile::deep10m_like()] {
        let w = s.workload(&profile);
        let params = s.base_params();
        let mut base_qps = None;
        for devices in [1usize, 2, 4] {
            let cagra = s.cagra(&profile, devices);
            let points = sweep_beam(
                &cagra.index,
                &w.queries,
                &w.ground_truth,
                &params,
                &s.beams(),
                SearchMode::Naive,
            );
            let qps = qps_at_recall(&points, target).unwrap_or(0.0);
            // Mean per-query iterations summed over all shards, at the
            // largest budget (≈ converged).
            let iters = points.last().map(|p| p.mean_iterations * devices as f64).unwrap_or(0.0);
            let base = *base_qps.get_or_insert(qps);
            let speedup = if base > 0.0 { qps / base } else { 0.0 };
            let row = Row {
                dataset: profile.name,
                devices,
                qps_at_target: qps,
                speedup,
                efficiency: speedup / devices as f64,
                iters_per_query: iters,
            };
            rec.push_row(&row);
            rows.push(vec![
                row.dataset.into(),
                row.devices.to_string(),
                f(row.qps_at_target, 0),
                f(row.speedup, 2),
                f(row.efficiency, 2),
                f(row.iters_per_query, 1),
            ]);
        }
    }
    header(&rec);
    print!(
        "{}",
        text_table(
            &["dataset", "GPUs", "sim-QPS@90", "speedup", "efficiency", "total iters/query"],
            &rows
        )
    );
    rec
}
