//! Fig 2: execution-time breakdown of the baseline ANNS frameworks.
//!
//! The paper measures that L2 distance computation takes >95 % of CAGRA's
//! search time and >80 % of GGNN's, motivating everything that follows.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_gpusim::trace::BreakdownReport;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    framework: &'static str,
    dataset: &'static str,
    l2_fraction: f64,
    rest_fraction: f64,
}

/// Runs both baselines on the single-GPU datasets and reports the simulated
/// L2 / rest-of-kernel split.
pub fn run(s: &Session) -> ExperimentRecord {
    let mut rec =
        ExperimentRecord::new("fig2", "Baseline time breakdown: L2 distance dominates (Fig 2)");
    rec.note("paper: CAGRA >95 % L2, GGNN >80 % L2");
    let mut rows = Vec::new();
    for profile in DatasetProfile::single_gpu_targets() {
        let w = s.workload(&profile);
        let params = s.base_params();

        let cagra = s.cagra(&profile, 1);
        let out = cagra.search(&w.queries, &params);
        let br = BreakdownReport::from_timeline(&out.timeline);
        let row = Row {
            framework: "CAGRA",
            dataset: profile.name,
            l2_fraction: br.l2_fraction,
            rest_fraction: br.rest_fraction,
        };
        rec.push_row(&row);
        rows.push(vec![
            row.framework.into(),
            row.dataset.into(),
            f(row.l2_fraction, 3),
            f(row.rest_fraction, 3),
        ]);

        let ggnn = s.ggnn(&profile, 1);
        let out = ggnn.search(&w.queries, &params);
        let br = BreakdownReport::from_timeline(&out.timeline);
        let row = Row {
            framework: "GGNN",
            dataset: profile.name,
            l2_fraction: br.l2_fraction,
            rest_fraction: br.rest_fraction,
        };
        rec.push_row(&row);
        rows.push(vec![
            row.framework.into(),
            row.dataset.into(),
            f(row.l2_fraction, 3),
            f(row.rest_fraction, 3),
        ]);
    }
    header(&rec);
    print!("{}", text_table(&["framework", "dataset", "L2 frac", "rest frac"], &rows));
    rec
}
