//! Fig 17: graph build time overhead of PathWeaver's auxiliary structures.
//!
//! The inter-shard tables, ghost shards and direction tables together add
//! <10–15 % over the core graph build (paper).

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::{seconds, text_table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    devices: usize,
    graph_build_s: f64,
    intershard_s: f64,
    ghost_s: f64,
    dirtable_s: f64,
    overhead_fraction: f64,
}

/// Reports the wall-clock build breakdown per profile.
pub fn run(s: &Session) -> ExperimentRecord {
    let mut rec = ExperimentRecord::new("fig17", "Graph build overhead (Fig 17)");
    rec.note(
        "wall-clock CPU build times; paper bound: overhead <10 % single-GPU, 4–15 % multi-GPU",
    );
    let mut rows = Vec::new();
    for profile in DatasetProfile::all() {
        let devices = if profile.multi_gpu_target { s.multi_devices() } else { 1 };
        let idx = s.pathweaver(&profile, devices);
        let r = &idx.build_report;
        let row = Row {
            dataset: profile.name,
            devices,
            graph_build_s: r.graph_build_s,
            intershard_s: r.intershard_s,
            ghost_s: r.ghost_s,
            dirtable_s: r.dirtable_s,
            overhead_fraction: r.overhead_fraction(),
        };
        rec.push_row(&row);
        rows.push(vec![
            row.dataset.into(),
            row.devices.to_string(),
            seconds(row.graph_build_s),
            seconds(row.intershard_s),
            seconds(row.ghost_s),
            seconds(row.dirtable_s),
            format!("{}%", f(row.overhead_fraction * 100.0, 1)),
        ]);
    }
    header(&rec);
    print!(
        "{}",
        text_table(
            &["dataset", "GPUs", "graph build", "inter-shard", "ghost", "dir table", "overhead"],
            &rows
        )
    );
    rec
}
