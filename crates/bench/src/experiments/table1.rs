//! Table 1: unused distance calculations.
//!
//! The majority of visited nodes never survive to the final candidate
//! buffer (paper: 85–89 % discarded), which motivates direction-guided
//! selection.

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::{si_count, text_table};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    total_visits: u64,
    discarded_visits: u64,
    ratio: f64,
}

/// Counts visits vs discarded visits of the CAGRA baseline on the
/// single-GPU datasets.
pub fn run(s: &Session) -> ExperimentRecord {
    let mut rec = ExperimentRecord::new("table1", "Unused distance calculations (Table 1)");
    rec.note("paper ratios: Sift 86.2 %, Gist 88.9 %, Deep-10M 85.0 %");
    let mut rows = Vec::new();
    for profile in DatasetProfile::single_gpu_targets() {
        let w = s.workload(&profile);
        let cagra = s.cagra(&profile, 1);
        let out = cagra.search(&w.queries, &s.base_params());
        let row = Row {
            dataset: profile.name,
            total_visits: out.stats.visits,
            discarded_visits: out.stats.discarded,
            ratio: out.stats.discard_ratio(),
        };
        rec.push_row(&row);
        rows.push(vec![
            row.dataset.into(),
            si_count(row.total_visits as f64),
            si_count(row.discarded_visits as f64),
            format!("{}%", f(row.ratio * 100.0, 1)),
        ]);
    }
    header(&rec);
    print!("{}", text_table(&["dataset", "#total visits", "#discarded", "ratio"], &rows));
    rec
}
