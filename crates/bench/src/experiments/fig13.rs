//! Fig 13: recall versus iteration budget, baseline vs path extension.
//!
//! Pipelining-based path extension reaches each recall level in fewer
//! iterations because later stages start near the query (paper example:
//! recall 0.90 at 14 vs 18 iterations on Deep-10M).

use crate::experiments::{f, header};
use crate::Session;
use pathweaver_core::eval::{sweep_iterations, SearchMode};
use pathweaver_core::prelude::*;
use pathweaver_core::report::ExperimentRecord;
use pathweaver_util::fmt::text_table;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: &'static str,
    max_iterations: usize,
    baseline_recall: f64,
    pathweaver_recall: f64,
}

/// Sweeps iteration budgets and compares recall of the sharded baseline
/// against the pipelined mode on the same index.
pub fn run(s: &Session) -> ExperimentRecord {
    let devices = s.multi_devices();
    let mut rec = ExperimentRecord::new("fig13", "Recall vs iteration budget (Fig 13)");
    rec.note("same index, same parameters; only the search mode differs");
    let mut rows = Vec::new();
    for profile in DatasetProfile::multi_gpu_targets() {
        let w = s.workload(&profile);
        let idx = s.pathweaver_variant(&profile, devices, "ppe-only", |c| {
            c.ghost = None;
            c.build_dir_table = false;
        });
        // A wide beam keeps the recall ceiling high so the iteration axis
        // is what differentiates the two modes (the paper's Fig 13 setup).
        let params = SearchParams { beam: 128, candidates: 128, expand: 8, ..s.base_params() };
        let budgets = s.budgets();
        let naive = sweep_iterations(
            &idx,
            &w.queries,
            &w.ground_truth,
            &params,
            &budgets,
            SearchMode::Naive,
        );
        let piped = sweep_iterations(
            &idx,
            &w.queries,
            &w.ground_truth,
            &params,
            &budgets,
            SearchMode::Pipelined,
        );
        for (n, p) in naive.iter().zip(&piped) {
            let row = Row {
                dataset: profile.name,
                max_iterations: n.max_iterations,
                baseline_recall: n.recall,
                pathweaver_recall: p.recall,
            };
            rec.push_row(&row);
            rows.push(vec![
                row.dataset.into(),
                row.max_iterations.to_string(),
                f(row.baseline_recall, 3),
                f(row.pathweaver_recall, 3),
            ]);
        }
    }
    header(&rec);
    print!(
        "{}",
        text_table(&["dataset", "max iters", "baseline recall", "PathWeaver recall"], &rows)
    );
    rec
}
