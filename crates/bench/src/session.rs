//! Shared build/workload cache for the experiment modules.
//!
//! Graph builds and exact ground truth dominate the harness's runtime, and
//! many experiments reuse the same (profile, device-count, framework)
//! combination. A [`Session`] memoizes each by key so `reproduce all`
//! builds every index exactly once.

use parking_lot::Mutex;
use pathweaver_core::baselines::{CagraBaseline, GgnnBaseline, HnswBaseline};
use pathweaver_core::prelude::*;
use pathweaver_datasets::Workload;
use pathweaver_graph::ggnn::GgnnParams;
use pathweaver_graph::HnswParams;
use pathweaver_search::SearchParams;
use std::collections::HashMap;
use std::sync::Arc;

/// A memoizing context shared by all experiments of one harness run.
pub struct Session {
    /// Dataset scale every experiment runs at.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Queries per workload.
    pub num_queries: usize,
    /// Recall@k target size.
    pub k: usize,
    workloads: Mutex<HashMap<String, Arc<Workload>>>,
    pathweaver: Mutex<HashMap<String, Arc<PathWeaverIndex>>>,
    cagra: Mutex<HashMap<String, Arc<CagraBaseline>>>,
    ggnn: Mutex<HashMap<String, Arc<GgnnBaseline>>>,
    hnsw: Mutex<HashMap<String, Arc<HnswBaseline>>>,
}

impl Session {
    /// Creates a session at the given scale.
    pub fn new(scale: Scale) -> Self {
        let num_queries = match scale {
            Scale::Test => 24,
            _ => 400,
        };
        Self {
            scale,
            seed: 0xbe9c4,
            num_queries,
            k: 10,
            workloads: Mutex::new(HashMap::new()),
            pathweaver: Mutex::new(HashMap::new()),
            cagra: Mutex::new(HashMap::new()),
            ggnn: Mutex::new(HashMap::new()),
            hnsw: Mutex::new(HashMap::new()),
        }
    }

    /// Default search parameters at this scale.
    pub fn base_params(&self) -> SearchParams {
        SearchParams { k: self.k, hash_bits: 15, ..SearchParams::default() }
    }

    /// PathWeaver search parameters (DGS enabled).
    pub fn pathweaver_params(&self) -> SearchParams {
        SearchParams { dgs: Some(DgsParams::default()), ..self.base_params() }
    }

    /// Iteration budgets for the Fig 13 sweeps at this scale.
    pub fn budgets(&self) -> Vec<usize> {
        match self.scale {
            Scale::Test => vec![4, 12, 32],
            _ => vec![4, 6, 8, 12, 16, 24, 32, 48],
        }
    }

    /// Beam widths for the QPS–recall sweeps at this scale (the paper's
    /// primary trade-off knob).
    pub fn beams(&self) -> Vec<usize> {
        match self.scale {
            Scale::Test => vec![32, 128],
            _ => vec![16, 32, 48, 64, 96, 128, 192, 256, 384],
        }
    }

    /// The memoized workload of a profile.
    pub fn workload(&self, profile: &DatasetProfile) -> Arc<Workload> {
        let key = profile.name.to_string();
        if let Some(w) = self.workloads.lock().get(&key) {
            return w.clone();
        }
        let built = Arc::new(profile.workload(self.scale, self.num_queries, self.k, self.seed));
        self.workloads.lock().insert(key, built.clone());
        built
    }

    /// The framework configuration used at this scale.
    pub fn config(&self, devices: usize) -> PathWeaverConfig {
        match self.scale {
            Scale::Test => PathWeaverConfig::test_scale(devices),
            _ => PathWeaverConfig::full(devices),
        }
    }

    /// Memoized full-featured PathWeaver index.
    pub fn pathweaver(&self, profile: &DatasetProfile, devices: usize) -> Arc<PathWeaverIndex> {
        self.pathweaver_variant(profile, devices, "full", |_| {})
    }

    /// Memoized PathWeaver index with a config tweak, keyed by `label`.
    pub fn pathweaver_variant(
        &self,
        profile: &DatasetProfile,
        devices: usize,
        label: &str,
        tweak: impl FnOnce(&mut PathWeaverConfig),
    ) -> Arc<PathWeaverIndex> {
        let key = format!("{}/{}/{}", profile.name, devices, label);
        if let Some(i) = self.pathweaver.lock().get(&key) {
            return i.clone();
        }
        let w = self.workload(profile);
        let mut config = self.config(devices);
        tweak(&mut config);
        let built =
            Arc::new(PathWeaverIndex::build(&w.base, &config).expect("bench-scale build fits"));
        self.pathweaver.lock().insert(key, built.clone());
        built
    }

    /// Memoized CAGRA(-w/-sharding) baseline.
    pub fn cagra(&self, profile: &DatasetProfile, devices: usize) -> Arc<CagraBaseline> {
        let key = format!("{}/{}", profile.name, devices);
        if let Some(i) = self.cagra.lock().get(&key) {
            return i.clone();
        }
        let w = self.workload(profile);
        let mut config = self.config(devices);
        config.ghost = None;
        config.build_dir_table = false;
        let built =
            Arc::new(CagraBaseline::build_with(&w.base, config).expect("bench-scale build fits"));
        self.cagra.lock().insert(key, built.clone());
        built
    }

    /// Memoized GGNN-style baseline.
    pub fn ggnn(&self, profile: &DatasetProfile, devices: usize) -> Arc<GgnnBaseline> {
        let key = format!("{}/{}", profile.name, devices);
        if let Some(i) = self.ggnn.lock().get(&key) {
            return i.clone();
        }
        let w = self.workload(profile);
        let params = match self.scale {
            Scale::Test => GgnnParams {
                degree: 12,
                selection_ratio: 0.05,
                selection_degree: 6,
                ..Default::default()
            },
            _ => GgnnParams::default(),
        };
        let built = Arc::new(
            GgnnBaseline::build(&w.base, devices, &params).expect("bench-scale build fits"),
        );
        self.ggnn.lock().insert(key, built.clone());
        built
    }

    /// Memoized HNSW CPU baseline.
    pub fn hnsw(&self, profile: &DatasetProfile) -> Arc<HnswBaseline> {
        let key = profile.name.to_string();
        if let Some(i) = self.hnsw.lock().get(&key) {
            return i.clone();
        }
        let w = self.workload(profile);
        let params = match self.scale {
            Scale::Test => HnswParams { m: 8, ef_construction: 48, ..Default::default() },
            _ => HnswParams { m: 16, ef_construction: 96, ..Default::default() },
        };
        let built = Arc::new(HnswBaseline::build(&w.base, &params));
        self.hnsw.lock().insert(key, built.clone());
        built
    }

    /// Multi-GPU device count at this scale (the paper's testbed has 4).
    pub fn multi_devices(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_return_same_instance() {
        let s = Session::new(Scale::Test);
        let p = DatasetProfile::deep10m_like();
        let a = s.workload(&p);
        let b = s.workload(&p);
        assert!(Arc::ptr_eq(&a, &b));
        let i1 = s.pathweaver(&p, 2);
        let i2 = s.pathweaver(&p, 2);
        assert!(Arc::ptr_eq(&i1, &i2));
        let v = s.pathweaver_variant(&p, 2, "no-ghost", |c| c.ghost = None);
        assert!(!Arc::ptr_eq(&i1, &v));
        assert!(v.shards[0].ghost.is_none());
    }

    #[test]
    fn budgets_scale_with_session() {
        assert!(
            Session::new(Scale::Test).budgets().len() < Session::new(Scale::Bench).budgets().len()
        );
    }
}
