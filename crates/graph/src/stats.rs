//! Graph diagnostics: reachability, in-degree distribution, edge symmetry.
//!
//! The paper attributes graph-search quality to "reachability" (all vertices
//! reachable from any vertex) and "convexity" (§2.2). These diagnostics
//! quantify the former and are used in build tests and reports.

use crate::csr::FixedDegreeGraph;
use pathweaver_util::FixedBitSet;
use serde::{Deserialize, Serialize};

/// Fraction of nodes reachable from `start` by directed BFS.
pub fn reachable_fraction(graph: &FixedDegreeGraph, start: u32) -> f64 {
    let n = graph.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mut seen = FixedBitSet::new(n);
    let mut queue = std::collections::VecDeque::new();
    seen.insert(start as usize);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if seen.insert(v as usize) {
                queue.push_back(v);
            }
        }
    }
    seen.count() as f64 / n as f64
}

/// Aggregate structural statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Fixed out-degree.
    pub out_degree: usize,
    /// Minimum in-degree over all nodes.
    pub min_in_degree: usize,
    /// Maximum in-degree over all nodes.
    pub max_in_degree: usize,
    /// Mean in-degree (equals out-degree for a fixed-degree graph).
    pub mean_in_degree: f64,
    /// Fraction of edges whose reverse edge also exists.
    pub symmetry: f64,
    /// Fraction of nodes reachable from node 0.
    pub reachable_from_zero: f64,
}

/// Computes [`GraphStats`] for `graph`.
pub fn graph_stats(graph: &FixedDegreeGraph) -> GraphStats {
    let n = graph.num_nodes();
    let mut in_deg = vec![0usize; n];
    for u in 0..n {
        for &v in graph.neighbors(u as u32) {
            in_deg[v as usize] += 1;
        }
    }
    let mut symmetric = 0usize;
    for u in 0..n {
        for &v in graph.neighbors(u as u32) {
            if graph.neighbors(v).contains(&(u as u32)) {
                symmetric += 1;
            }
        }
    }
    let edges = graph.num_edges().max(1);
    GraphStats {
        num_nodes: n,
        out_degree: graph.degree(),
        min_in_degree: in_deg.iter().copied().min().unwrap_or(0),
        max_in_degree: in_deg.iter().copied().max().unwrap_or(0),
        mean_in_degree: in_deg.iter().sum::<usize>() as f64 / n.max(1) as f64,
        symmetry: symmetric as f64 / edges as f64,
        reachable_from_zero: reachable_fraction(graph, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> FixedDegreeGraph {
        let lists: Vec<Vec<u32>> = (0..n).map(|u| vec![((u + 1) % n) as u32]).collect();
        FixedDegreeGraph::from_lists(1, &lists)
    }

    #[test]
    fn ring_is_fully_reachable() {
        assert_eq!(reachable_fraction(&ring(10), 0), 1.0);
    }

    #[test]
    fn disconnected_graph_partial_reach() {
        // Two 2-cycles: 0<->1 and 2<->3.
        let lists = vec![vec![1u32], vec![0u32], vec![3u32], vec![2u32]];
        let g = FixedDegreeGraph::from_lists(1, &lists);
        assert_eq!(reachable_fraction(&g, 0), 0.5);
        let s = graph_stats(&g);
        assert_eq!(s.symmetry, 1.0);
        assert_eq!(s.reachable_from_zero, 0.5);
    }

    #[test]
    fn ring_stats() {
        let s = graph_stats(&ring(8));
        assert_eq!(s.num_nodes, 8);
        assert_eq!(s.out_degree, 1);
        assert_eq!(s.min_in_degree, 1);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.mean_in_degree, 1.0);
        assert_eq!(s.symmetry, 0.0);
    }
}
