//! A GGNN-style layered graph (baseline, paper §5.1).
//!
//! GGNN (Groh et al.) builds an HNSW-inspired hierarchy on the GPU: the base
//! layer is a (nearly) raw k-NN graph built blockwise, and upper layers hold
//! sampled representatives used to find entry points. This reproduction keeps
//! the two properties that matter for the paper's comparisons:
//!
//! - the base graph is an *unpruned* symmetric-filled k-NN graph (denser in
//!   redundant short edges than a CAGRA-optimized graph, hence slightly more
//!   distance work per hop), and
//! - search enters through a small sampled selection layer rather than from
//!   purely random nodes.
//!
//! The deep multi-layer merge of the original build is simplified to a single
//! selection layer; DESIGN.md records this substitution.

use crate::csr::FixedDegreeGraph;
use crate::ghost::{GhostParams, GhostShard};
use crate::knn_build::{nn_descent, NnDescentParams};
use pathweaver_vector::VectorSet;
use serde::{Deserialize, Serialize};

/// GGNN-style build parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GgnnParams {
    /// Base-layer out-degree (GGNN defaults are in the 20–40 range).
    pub degree: usize,
    /// Fraction of nodes promoted to the selection layer.
    pub selection_ratio: f64,
    /// Out-degree of the selection-layer graph.
    pub selection_degree: usize,
    /// NN-descent parameters for the base k-NN graph.
    pub nn_descent: NnDescentParams,
}

impl Default for GgnnParams {
    fn default() -> Self {
        Self {
            degree: 24,
            selection_ratio: 1.0 / 32.0,
            selection_degree: 12,
            nn_descent: NnDescentParams { k: 24, ..Default::default() },
        }
    }
}

/// A built GGNN-style index: base k-NN graph plus a selection layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GgnnIndex {
    /// The searchable base graph (fixed degree).
    pub base: FixedDegreeGraph,
    /// Selection layer reused from the ghost-shard machinery: sampled
    /// vectors, their graph, and the mapping to base ids.
    pub selection: GhostShard,
}

impl GgnnIndex {
    /// Builds the index over `vectors`.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or `degree == 0`.
    pub fn build(vectors: &VectorSet, params: &GgnnParams) -> Self {
        assert!(!vectors.is_empty(), "empty vector set");
        assert!(params.degree > 0, "degree must be positive");
        let nn = NnDescentParams { k: params.degree, ..params.nn_descent };
        let knn = nn_descent(vectors, &nn);
        let base = knn_to_fixed_degree(&knn, params.degree, params.nn_descent.seed);
        let selection = GhostShard::build(
            vectors,
            &GhostParams {
                sampling_ratio: params.selection_ratio,
                min_nodes: 8,
                degree: params.selection_degree,
                seed: pathweaver_util::seed_from_parts(params.nn_descent.seed, "ggnn-sel", 0),
            },
        );
        Self { base, selection }
    }
}

/// Turns raw k-NN lists into a fixed-degree graph, padding underfull rows.
///
/// Unlike [`cagra_opt::optimize`], no detour pruning happens — this keeps the
/// GGNN flavor of a dense short-edge graph.
fn knn_to_fixed_degree(knn: &[Vec<(f32, u32)>], degree: usize, seed: u64) -> FixedDegreeGraph {
    let n = knn.len();
    let mut rng = pathweaver_util::small_rng(pathweaver_util::seed_from_parts(seed, "ggnn-pad", 0));
    let mut lists = Vec::with_capacity(n);
    for (u, l) in knn.iter().enumerate() {
        let mut row: Vec<u32> = l.iter().map(|&(_, id)| id).collect();
        // GGNN's hierarchical merge stitches blocks together; emulate the
        // resulting long-range connectivity by reserving the last slot for a
        // random shortcut edge.
        if degree > 1 && row.len() >= degree {
            row.truncate(degree - 1);
        }
        let mut seen: std::collections::HashSet<u32> = row.iter().copied().collect();
        seen.insert(u as u32);
        while row.len() < degree {
            if n == 1 {
                row.push(0);
                continue;
            }
            let v = rand::Rng::gen_range(&mut rng, 0..n) as u32;
            if seen.insert(v) {
                row.push(v);
            }
        }
        row.truncate(degree);
        lists.push(row);
    }
    FixedDegreeGraph::from_lists(degree, &lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_search;
    use rand::Rng;

    fn clustered(n: usize) -> VectorSet {
        let mut rng = pathweaver_util::small_rng(13);
        VectorSet::from_fn(n, 8, |r, _| (r % 15) as f32 * 2.0 + rng.gen_range(-0.3f32..0.3))
    }

    #[test]
    fn build_shapes() {
        let set = clustered(600);
        let idx = GgnnIndex::build(&set, &GgnnParams::default());
        assert_eq!(idx.base.num_nodes(), 600);
        assert_eq!(idx.base.degree(), 24);
        assert!(idx.selection.len() >= 8);
        assert!(idx.selection.len() < 600 / 16);
    }

    #[test]
    fn base_graph_searchable() {
        let set = clustered(500);
        let idx = GgnnIndex::build(&set, &GgnnParams::default());
        let q = set.row(123).to_vec();
        // GGNN enters through its selection layer, not from arbitrary nodes.
        let sel = greedy_search(&idx.selection.graph, &idx.selection.vectors, &q, &[0], 16, 2);
        let entries: Vec<u32> = sel.iter().map(|&(_, g)| idx.selection.original_id(g)).collect();
        let hits = greedy_search(&idx.base, &set, &q, &entries, 32, 1);
        assert_eq!(hits[0].1, 123);
    }

    #[test]
    fn selection_layer_finds_entries_near_query() {
        let set = clustered(800);
        let idx = GgnnIndex::build(&set, &GgnnParams::default());
        let q = set.row(400).to_vec();
        // Search the selection layer, map to base ids, verify the entry is
        // closer to the query than a random node on average.
        let hit = greedy_search(&idx.selection.graph, &idx.selection.vectors, &q, &[0], 16, 1)[0];
        let entry = idx.selection.original_id(hit.1);
        let d_entry = pathweaver_vector::l2_squared(set.row(entry as usize), &q);
        let mut rng = pathweaver_util::small_rng(5);
        let mut d_rand = 0.0f64;
        for _ in 0..100 {
            let r = rng.gen_range(0..set.len());
            d_rand += f64::from(pathweaver_vector::l2_squared(set.row(r), &q));
        }
        assert!(f64::from(d_entry) < d_rand / 100.0);
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let set = clustered(300);
        let idx = GgnnIndex::build(&set, &GgnnParams::default());
        for u in 0..300u32 {
            let nb = idx.base.neighbors(u);
            assert!(!nb.contains(&u));
            let uniq: std::collections::HashSet<&u32> = nb.iter().collect();
            assert_eq!(uniq.len(), nb.len());
        }
    }
}
