//! CAGRA-style proximity graph optimization.
//!
//! CAGRA (Ootomo et al., ICDE'24) turns an approximate k-NN graph into a
//! search graph with a fixed out-degree `d` in two steps, both reproduced
//! here:
//!
//! 1. **Detour-count pruning** — an edge `u → v` is redundant when a two-hop
//!    path `u → w → v` exists through a closer neighbor `w`; such edges are
//!    "detourable". Each node keeps the `d/2` forward edges with the fewest
//!    detours, which preserves reachability while shedding redundancy.
//! 2. **Reverse-edge merging** — the remaining `d/2` slots are filled with
//!    reverse edges (nodes that kept `u` as a forward edge), which restores
//!    in-degree balance and gives the graph its strong navigability
//!    ("convexity" in the paper's terms).

use crate::csr::FixedDegreeGraph;
use crate::knn_build::{nn_descent, NnDescentParams};
use pathweaver_util::parallel_map;
use pathweaver_vector::{l2_squared, VectorSet};
use rand::Rng;

/// Parameters of the full CAGRA-style build (k-NN phase + optimization).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CagraBuildParams {
    /// Out-degree of the final graph (the paper fixes 64 at paper scale).
    pub degree: usize,
    /// Degree of the intermediate k-NN graph; defaults to `3/2 × degree`.
    pub knn_degree: usize,
    /// NN-descent parameters for the intermediate graph.
    pub nn_descent: NnDescentParams,
}

impl CagraBuildParams {
    /// Reasonable defaults for a final out-degree.
    pub fn with_degree(degree: usize) -> Self {
        let knn_degree = degree + degree / 2;
        Self {
            degree,
            knn_degree,
            nn_descent: NnDescentParams { k: knn_degree, ..Default::default() },
        }
    }
}

impl Default for CagraBuildParams {
    fn default() -> Self {
        Self::with_degree(32)
    }
}

/// Builds a CAGRA-style fixed-degree search graph over `vectors`.
///
/// # Panics
///
/// Panics if `vectors` is empty or `degree == 0`.
pub fn cagra_build(vectors: &VectorSet, params: &CagraBuildParams) -> FixedDegreeGraph {
    assert!(params.degree > 0, "degree must be positive");
    let nn_params =
        NnDescentParams { k: params.knn_degree.max(params.degree), ..params.nn_descent };
    let knn = nn_descent(vectors, &nn_params);
    optimize(&knn, params.degree, params.nn_descent.seed)
}

/// Optimizes sorted k-NN lists into a fixed-degree search graph.
///
/// Exposed separately so callers that already hold a k-NN graph (e.g. the
/// GGNN builder or tests using exact lists) can reuse the pruning/merging
/// stage.
pub fn optimize(knn: &[Vec<(f32, u32)>], degree: usize, seed: u64) -> FixedDegreeGraph {
    let n = knn.len();
    assert!(n > 0, "empty knn graph");

    // Forward-edge selection by detour count.
    let keep_fwd = degree - degree / 2;
    let strong: Vec<Vec<(f32, u32)>> = parallel_map(n, |u| {
        let neigh = &knn[u];
        // Sorted id view for O(log k) membership tests.
        let mut counts = vec![0u32; neigh.len()];
        for (i, &(_, w)) in neigh.iter().enumerate() {
            let wn = &knn[w as usize];
            for (j, &(duv, v)) in neigh.iter().enumerate().skip(i + 1) {
                // Does the closer neighbor w link to v with a shorter hop?
                if let Some(&(dwv, _)) = wn.iter().find(|&&(_, x)| x == v) {
                    if dwv < duv {
                        counts[j] += 1;
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..neigh.len()).collect();
        order.sort_by(|&a, &b| counts[a].cmp(&counts[b]).then(a.cmp(&b)));
        order.truncate(keep_fwd);
        order.sort_unstable(); // Restore distance rank among the kept edges.
        order.iter().map(|&i| neigh[i]).collect()
    });

    // Reverse edges of the kept forward edges, ascending by distance.
    let mut reverse: Vec<Vec<(f32, u32)>> = vec![Vec::new(); n];
    for (u, list) in strong.iter().enumerate() {
        for &(d, v) in list {
            reverse[v as usize].push((d, u as u32));
        }
    }
    for r in reverse.iter_mut() {
        r.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    }

    // Merge: strong forward edges first, then reverse, then leftover k-NN,
    // then random padding for pathological underfull nodes. When the degree
    // allows, the last slot is reserved for a random long-range shortcut:
    // detour pruning plus reverse merging keeps overwhelmingly local edges,
    // and on strongly clustered corpora that can splinter the directed
    // graph into islands; one shortcut per node restores the global
    // reachability the search algorithm assumes (§2.2), at negligible cost.
    let mut rng = pathweaver_util::small_rng(pathweaver_util::seed_from_parts(seed, "pad", 0));
    let reserve_shortcut = degree >= 8 && n > degree * 2;
    let fill_to = if reserve_shortcut { degree - 1 } else { degree };
    let mut lists: Vec<Vec<u32>> = Vec::with_capacity(n);
    for u in 0..n {
        let mut out: Vec<u32> = Vec::with_capacity(degree);
        let mut seen = std::collections::HashSet::with_capacity(degree * 2);
        seen.insert(u as u32);
        for &(_, v) in &strong[u] {
            if out.len() >= fill_to {
                break;
            }
            if seen.insert(v) {
                out.push(v);
            }
        }
        for &(_, v) in &reverse[u] {
            if out.len() >= fill_to {
                break;
            }
            if seen.insert(v) {
                out.push(v);
            }
        }
        for &(_, v) in &knn[u] {
            if out.len() >= fill_to {
                break;
            }
            if seen.insert(v) {
                out.push(v);
            }
        }
        while out.len() < degree {
            if n == 1 {
                out.push(0); // Single-node graph: self loop is the only option.
                continue;
            }
            let v = rng.gen_range(0..n) as u32;
            if seen.insert(v) {
                out.push(v);
            }
        }
        out.truncate(degree);
        lists.push(out);
    }
    FixedDegreeGraph::from_lists(degree, &lists)
}

/// Average distance of kept edges — a compactness diagnostic used by build
/// reports and ablation benches.
pub fn mean_edge_length(vectors: &VectorSet, graph: &FixedDegreeGraph) -> f64 {
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for u in 0..graph.num_nodes() {
        for &v in graph.neighbors(u as u32) {
            sum += f64::from(l2_squared(vectors.row(u), vectors.row(v as usize)).sqrt());
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn_build::exact_knn_lists;
    use crate::stats::reachable_fraction;

    fn grid_set(n: usize, dim: usize) -> VectorSet {
        let mut rng = pathweaver_util::small_rng(5);
        VectorSet::from_fn(n, dim, |r, _| (r % 23) as f32 + rng.gen_range(-0.3f32..0.3))
    }

    #[test]
    fn build_produces_fixed_degree_no_self_loops() {
        let set = grid_set(300, 8);
        let g = cagra_build(&set, &CagraBuildParams::with_degree(12));
        assert_eq!(g.num_nodes(), 300);
        assert_eq!(g.degree(), 12);
        for u in 0..300u32 {
            let nb = g.neighbors(u);
            assert!(!nb.contains(&u), "self loop at {u}");
            let uniq: std::collections::HashSet<&u32> = nb.iter().collect();
            assert_eq!(uniq.len(), 12, "duplicate neighbors at {u}");
        }
    }

    #[test]
    fn optimized_graph_is_highly_reachable() {
        let set = grid_set(400, 6);
        let g = cagra_build(&set, &CagraBuildParams::with_degree(16));
        let frac = reachable_fraction(&g, 0);
        assert!(frac > 0.99, "reachability {frac}");
    }

    #[test]
    fn optimize_from_exact_lists() {
        let set = grid_set(120, 4);
        let knn = exact_knn_lists(&set, 18);
        let g = optimize(&knn, 12, 0);
        assert_eq!(g.degree(), 12);
        assert_eq!(g.num_nodes(), 120);
    }

    #[test]
    fn pruning_shortens_edges_versus_random() {
        // The optimized graph's forward edges should be far shorter than
        // random edges would be.
        let set = grid_set(200, 6);
        let g = cagra_build(&set, &CagraBuildParams::with_degree(8));
        let mean = mean_edge_length(&set, &g);
        let mut rng = pathweaver_util::small_rng(1);
        let mut rand_sum = 0.0f64;
        for _ in 0..1000 {
            let a = rng.gen_range(0..set.len());
            let b = rng.gen_range(0..set.len());
            rand_sum += f64::from(l2_squared(set.row(a), set.row(b)).sqrt());
        }
        let rand_mean = rand_sum / 1000.0;
        assert!(mean < rand_mean * 0.6, "edges not short: {mean} vs random {rand_mean}");
    }

    #[test]
    fn single_node_graph_self_loops() {
        let knn: Vec<Vec<(f32, u32)>> = vec![Vec::new()];
        let g = optimize(&knn, 4, 0);
        assert_eq!(g.neighbors(0), &[0, 0, 0, 0]);
    }

    #[test]
    fn degree_two_keeps_one_forward_one_reverse_slot() {
        let set = grid_set(50, 4);
        let g = cagra_build(&set, &CagraBuildParams::with_degree(2));
        assert_eq!(g.degree(), 2);
    }
}
