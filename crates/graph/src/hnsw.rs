//! HNSW (Malkov & Yashunin) — the paper's CPU baseline (§5.1) and the
//! hierarchical comparison point for ghost staging (§6.1, Fig 18).
//!
//! A standard insertion-based build: each node draws a geometric level, is
//! routed greedily from the entry point through the upper layers, and is
//! connected on every layer at or below its level with an
//! `ef_construction`-wide beam and simple closest-M neighbor selection.
//! Layer 0 uses degree `2M`, upper layers `M`.

use pathweaver_util::FixedBitSet;
use pathweaver_vector::{l2_squared, VectorSet};
use serde::{Deserialize, Serialize};

/// HNSW build/search parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HnswParams {
    /// Degree budget `M` of upper layers; layer 0 keeps `2M`.
    pub m: usize,
    /// Construction beam width.
    pub ef_construction: usize,
    /// Seed for level sampling.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self { m: 12, ef_construction: 64, seed: 0x4a5b }
    }
}

/// A built HNSW index over an externally owned [`VectorSet`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hnsw {
    params: HnswParams,
    /// `layers[l][u]` is the adjacency of node `u` at layer `l`; nodes whose
    /// level is below `l` have an empty list there.
    layers: Vec<Vec<Vec<u32>>>,
    /// Level of each node.
    levels: Vec<u8>,
    /// Entry node (highest level).
    entry: u32,
}

impl Hnsw {
    /// Builds an index over `vectors` by sequential insertion.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty or `m == 0`.
    pub fn build(vectors: &VectorSet, params: &HnswParams) -> Self {
        assert!(!vectors.is_empty(), "empty vector set");
        assert!(params.m > 0, "m must be positive");
        let n = vectors.len();
        let mult = 1.0 / (params.m as f64).ln();
        let mut rng = pathweaver_util::small_rng(params.seed);
        let mut hnsw = Self {
            params: *params,
            layers: vec![vec![Vec::new(); n]],
            levels: vec![0; n],
            entry: 0,
        };
        for u in 0..n {
            let uni: f64 = rand::Rng::gen_range(&mut rng, f64::EPSILON..1.0);
            let level = ((-uni.ln() * mult).floor() as usize).min(31) as u8;
            hnsw.insert(vectors, u as u32, level);
        }
        hnsw
    }

    /// Highest layer index currently in use.
    pub fn max_level(&self) -> usize {
        self.layers.len() - 1
    }

    /// Number of indexed nodes.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Returns `true` when the index is empty (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Inserts node `u` (whose vector is `vectors.row(u)`) at `level`.
    fn insert(&mut self, vectors: &VectorSet, u: u32, level: u8) {
        let n = vectors.len();
        while self.layers.len() <= level as usize {
            self.layers.push(vec![Vec::new(); n]);
        }
        if self.levels.len() <= u as usize {
            // Supports dynamic growth when vectors were appended after build.
            self.levels.resize(u as usize + 1, 0);
            for layer in self.layers.iter_mut() {
                layer.resize(u as usize + 1, Vec::new());
            }
        }
        self.levels[u as usize] = level;
        if u == 0 {
            self.entry = 0;
            return;
        }

        let q = vectors.row(u as usize);
        let mut ep = self.entry;
        let top = self.max_level();
        // Greedy descent through layers above the node's level.
        for l in ((level as usize + 1)..=top).rev() {
            ep = self.greedy_step(vectors, q, ep, l);
        }
        // Connect on each layer from min(level, top) down to 0.
        for l in (0..=(level as usize).min(top)).rev() {
            let found = self.search_layer(vectors, q, &[ep], self.params.ef_construction, l);
            let cap = self.layer_cap(l);
            let selected = select_heuristic(vectors, &found, cap);
            for &v in &selected {
                self.layers[l][u as usize].push(v);
                self.layers[l][v as usize].push(u);
                // Shrink v's list if it overflowed, keeping a diverse set.
                if self.layers[l][v as usize].len() > cap {
                    let vv = vectors.row(v as usize);
                    let mut scored: Vec<(f32, u32)> = self.layers[l][v as usize]
                        .iter()
                        .map(|&w| (l2_squared(vv, vectors.row(w as usize)), w))
                        .collect();
                    scored
                        .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                    self.layers[l][v as usize] = select_heuristic(vectors, &scored, cap);
                }
            }
            if let Some(&(_, best)) = found.first() {
                ep = best;
            }
        }
        if level as usize >= self.max_level() && level >= self.levels[self.entry as usize] {
            self.entry = u;
        }
    }

    /// Maximum degree on layer `l`.
    fn layer_cap(&self, l: usize) -> usize {
        if l == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// One greedy hop-to-convergence pass at layer `l`, returning the closest
    /// node found.
    fn greedy_step(&self, vectors: &VectorSet, q: &[f32], mut ep: u32, l: usize) -> u32 {
        let mut best = l2_squared(vectors.row(ep as usize), q);
        loop {
            let mut improved = false;
            for &v in &self.layers[l][ep as usize] {
                let d = l2_squared(vectors.row(v as usize), q);
                if d < best {
                    best = d;
                    ep = v;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Beam search at layer `l`; returns ascending `(dist, id)` up to `ef`.
    fn search_layer(
        &self,
        vectors: &VectorSet,
        q: &[f32],
        entries: &[u32],
        ef: usize,
        l: usize,
    ) -> Vec<(f32, u32)> {
        let mut visited = FixedBitSet::new(self.levels.len());
        let mut beam: Vec<(f32, u32, bool)> = Vec::with_capacity(ef + 1);
        let push = |beam: &mut Vec<(f32, u32, bool)>, d: f32, id: u32| {
            if beam.len() == ef && d >= beam[ef - 1].0 {
                return;
            }
            let pos = beam.partition_point(|e| e.0 <= d);
            beam.insert(pos, (d, id, false));
            if beam.len() > ef {
                beam.pop();
            }
        };
        for &e in entries {
            if visited.insert(e as usize) {
                push(&mut beam, l2_squared(vectors.row(e as usize), q), e);
            }
        }
        while let Some(i) = beam.iter().position(|e| !e.2) {
            beam[i].2 = true;
            let u = beam[i].1;
            for &v in &self.layers[l][u as usize] {
                if visited.insert(v as usize) {
                    push(&mut beam, l2_squared(vectors.row(v as usize), q), v);
                }
            }
        }
        beam.into_iter().map(|(d, id, _)| (d, id)).collect()
    }

    /// k-NN search: greedy descent through upper layers, `ef`-beam at layer 0.
    ///
    /// Returns up to `k` `(squared distance, id)` pairs ascending by distance.
    pub fn search(&self, vectors: &VectorSet, q: &[f32], k: usize, ef: usize) -> Vec<(f32, u32)> {
        let mut ep = self.entry;
        for l in (1..=self.max_level()).rev() {
            ep = self.greedy_step(vectors, q, ep, l);
        }
        let mut out = self.search_layer(vectors, q, &[ep], ef.max(k), 0);
        out.truncate(k);
        out
    }

    /// Converts layer 0 into a fixed-degree graph for the GPU-kernel
    /// comparison of Fig 18 (underfull rows padded with nearest remaining
    /// candidates from upper layers, then wrap-around ids).
    pub fn layer0_as_fixed_degree(&self) -> crate::csr::FixedDegreeGraph {
        let n = self.levels.len();
        let degree = self.params.m * 2;
        let mut lists: Vec<Vec<u32>> = Vec::with_capacity(n);
        for u in 0..n {
            let mut row: Vec<u32> = self.layers[0][u].clone();
            row.dedup();
            let mut pad = 1u32;
            while row.len() < degree {
                // Deterministic wrap-around padding keeps the row full
                // without allocating randomness; duplicates are avoided.
                let cand = (u as u32 + pad) % n as u32;
                if cand != u as u32 && !row.contains(&cand) {
                    row.push(cand);
                }
                pad += 1;
            }
            row.truncate(degree);
            lists.push(row);
        }
        crate::csr::FixedDegreeGraph::from_lists(degree, &lists)
    }

    /// Inserts a new node appended to `vectors` (dynamic updates).
    ///
    /// # Panics
    ///
    /// Panics unless `vectors.len() == self.len() + 1`.
    pub fn insert_appended(&mut self, vectors: &VectorSet, seed: u64) {
        assert_eq!(vectors.len(), self.len() + 1, "insert_appended out of sync");
        let u = (vectors.len() - 1) as u32;
        let mult = 1.0 / (self.params.m as f64).ln();
        let mut rng = pathweaver_util::small_rng(seed);
        let uni: f64 = rand::Rng::gen_range(&mut rng, f64::EPSILON..1.0);
        let level = ((-uni.ln() * mult).floor() as usize).min(31) as u8;
        self.insert(vectors, u, level);
    }
}

/// HNSW's neighbor-selection heuristic (Malkov & Yashunin, Algorithm 4).
///
/// Walks the candidates in ascending distance and keeps a candidate only if
/// it is closer to the inserted point than to every already-kept neighbor.
/// This discards redundant same-direction edges in favour of diverse (often
/// longer-range) ones — the property that keeps HNSW graphs navigable across
/// cluster boundaries. Skipped candidates backfill remaining slots.
fn select_heuristic(vectors: &VectorSet, candidates: &[(f32, u32)], cap: usize) -> Vec<u32> {
    let mut kept: Vec<(f32, u32)> = Vec::with_capacity(cap);
    let mut skipped: Vec<u32> = Vec::new();
    for &(d_q, c) in candidates {
        if kept.len() == cap {
            break;
        }
        let diverse = kept
            .iter()
            .all(|&(_, r)| l2_squared(vectors.row(c as usize), vectors.row(r as usize)) > d_q);
        if diverse {
            kept.push((d_q, c));
        } else {
            skipped.push(c);
        }
    }
    let mut out: Vec<u32> = kept.into_iter().map(|(_, c)| c).collect();
    for c in skipped {
        if out.len() == cap {
            break;
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = pathweaver_util::small_rng(seed);
        VectorSet::from_fn(n, dim, |r, _| (r % 20) as f32 * 3.0 + rng.gen_range(-0.4f32..0.4))
    }

    #[test]
    fn search_recall_is_high() {
        let set = clustered(800, 8, 21);
        let hnsw = Hnsw::build(&set, &HnswParams::default());
        let mut rng = pathweaver_util::small_rng(9);
        let mut hits = 0;
        let trials = 50;
        for _ in 0..trials {
            let target = rng.gen_range(0..set.len());
            let mut q: Vec<f32> = set.row(target).to_vec();
            for v in q.iter_mut() {
                *v += rng.gen_range(-0.05f32..0.05);
            }
            // Exact nearest by brute force.
            let mut exact = (f32::INFINITY, 0usize);
            for i in 0..set.len() {
                let d = l2_squared(set.row(i), &q);
                if d < exact.0 {
                    exact = (d, i);
                }
            }
            let got = hnsw.search(&set, &q, 1, 64);
            if got[0].1 as usize == exact.1 {
                hits += 1;
            }
        }
        assert!(hits >= 45, "HNSW top-1 recall too low: {hits}/{trials}");
    }

    #[test]
    fn results_sorted_and_unique() {
        let set = clustered(300, 6, 2);
        let hnsw = Hnsw::build(&set, &HnswParams::default());
        let got = hnsw.search(&set, set.row(7), 10, 32);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        let ids: std::collections::HashSet<u32> = got.iter().map(|x| x.1).collect();
        assert_eq!(ids.len(), got.len());
        assert_eq!(got[0].1, 7); // Exact hit on an indexed vector.
    }

    #[test]
    fn degree_caps_respected() {
        let set = clustered(500, 4, 3);
        let p = HnswParams { m: 6, ef_construction: 32, seed: 1 };
        let hnsw = Hnsw::build(&set, &p);
        for u in 0..set.len() {
            assert!(hnsw.layers[0][u].len() <= 12, "layer0 degree blew up at {u}");
            for l in 1..=hnsw.max_level() {
                assert!(hnsw.layers[l][u].len() <= 6, "layer{l} degree blew up at {u}");
            }
        }
    }

    #[test]
    fn has_multiple_levels() {
        let set = clustered(2000, 4, 4);
        let hnsw = Hnsw::build(&set, &HnswParams::default());
        assert!(hnsw.max_level() >= 1, "no hierarchy emerged");
        assert!(hnsw.levels[hnsw.entry as usize] as usize == hnsw.max_level());
    }

    #[test]
    fn layer0_conversion_full_degree() {
        let set = clustered(100, 4, 5);
        let p = HnswParams { m: 4, ef_construction: 16, seed: 2 };
        let hnsw = Hnsw::build(&set, &p);
        let g = hnsw.layer0_as_fixed_degree();
        assert_eq!(g.degree(), 8);
        assert_eq!(g.num_nodes(), 100);
        for u in 0..100u32 {
            assert!(!g.neighbors(u).contains(&u), "self loop at {u}");
        }
    }

    #[test]
    fn dynamic_insert_searchable() {
        let mut set = clustered(200, 4, 6);
        let mut hnsw = Hnsw::build(&set, &HnswParams::default());
        let novel = vec![58.5f32; 4];
        set.push(&novel);
        hnsw.insert_appended(&set, 77);
        let got = hnsw.search(&set, &novel, 1, 16);
        assert_eq!(got[0].1 as usize, set.len() - 1);
    }
}
