//! NN-descent approximate k-NN graph construction.
//!
//! The paper builds its proximity graphs with CAGRA's GPU build algorithm,
//! whose first phase is an approximate k-NN graph. This module provides that
//! phase on CPU threads via NN-descent (Dong et al., WWW'11): start from
//! random neighbor lists and repeatedly join each node's neighborhood —
//! neighbors of neighbors are likely neighbors — until updates die out.
//!
//! The result feeds [`crate::cagra_opt`] for detour pruning and reverse-edge
//! merging.

use parking_lot::Mutex;
use pathweaver_util::{parallel_for, small_rng, TopK};
use pathweaver_vector::{l2_squared, VectorSet};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Parameters of the NN-descent build.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NnDescentParams {
    /// Neighbors per node in the produced k-NN lists.
    pub k: usize,
    /// Maximum local-join rounds.
    pub max_rounds: usize,
    /// Per-node sample size of new/old neighbors considered per round.
    pub sample: usize,
    /// Stop when a round's accepted updates fall below
    /// `termination_ratio × n × k`.
    pub termination_ratio: f64,
    /// RNG seed for the random initialization and sampling.
    pub seed: u64,
}

impl Default for NnDescentParams {
    fn default() -> Self {
        Self { k: 32, max_rounds: 12, sample: 12, termination_ratio: 0.002, seed: 0x9a7d }
    }
}

/// One entry of a node's bounded neighbor list.
#[derive(Debug, Clone, Copy)]
struct Entry {
    dist: f32,
    id: u32,
    is_new: bool,
}

/// A bounded, ascending-sorted neighbor list with id dedup.
struct NeighborList {
    entries: Vec<Entry>,
    capacity: usize,
}

impl NeighborList {
    fn new(capacity: usize) -> Self {
        Self { entries: Vec::with_capacity(capacity + 1), capacity }
    }

    /// Attempts to insert `(dist, id)`; returns `true` if the list changed.
    fn insert(&mut self, dist: f32, id: u32) -> bool {
        if self.entries.len() == self.capacity && dist >= self.entries[self.capacity - 1].dist {
            return false;
        }
        if self.entries.iter().any(|e| e.id == id) {
            return false;
        }
        let pos = self.entries.partition_point(|e| e.dist <= dist);
        self.entries.insert(pos, Entry { dist, id, is_new: true });
        if self.entries.len() > self.capacity {
            self.entries.pop();
        }
        true
    }
}

/// Builds approximate k-NN lists `(distance, id)` per node, ascending by
/// distance.
///
/// Lists may hold fewer than `k` entries only when the dataset has fewer
/// than `k + 1` points.
///
/// # Panics
///
/// Panics if `vectors` is empty or `params.k == 0`.
pub fn nn_descent(vectors: &VectorSet, params: &NnDescentParams) -> Vec<Vec<(f32, u32)>> {
    let n = vectors.len();
    assert!(n > 0, "cannot build a graph over an empty set");
    assert!(params.k > 0, "k must be positive");
    let k = params.k.min(n - 1).max(1);

    // Random initialization: k distinct random neighbors per node.
    let lists: Vec<Mutex<NeighborList>> =
        (0..n).map(|_| Mutex::new(NeighborList::new(k))).collect();
    parallel_for(n, |u| {
        let mut rng = small_rng(pathweaver_util::seed_from_parts(params.seed, "init", u as u64));
        let mut list = lists[u].lock();
        while list.entries.len() < k {
            let v = rng.gen_range(0..n);
            if v == u {
                continue;
            }
            let d = l2_squared(vectors.row(u), vectors.row(v));
            list.insert(d, v as u32);
        }
    });

    for round in 0..params.max_rounds {
        // Phase 1: snapshot per-node forward samples, clearing `new` flags of
        // the sampled entries.
        let mut fwd_new: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut fwd_old: Vec<Vec<u32>> = vec![Vec::new(); n];
        {
            let fwd_new = Mutex::new(&mut fwd_new);
            let fwd_old = Mutex::new(&mut fwd_old);
            parallel_for(n, |u| {
                let mut rng = small_rng(pathweaver_util::seed_from_parts(
                    params.seed,
                    "sample",
                    (round * n + u) as u64,
                ));
                let mut list = lists[u].lock();
                let mut new_ids: Vec<usize> = list
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.is_new)
                    .map(|(i, _)| i)
                    .collect();
                new_ids.shuffle(&mut rng);
                new_ids.truncate(params.sample);
                let mut news = Vec::with_capacity(new_ids.len());
                for &i in &new_ids {
                    list.entries[i].is_new = false;
                    news.push(list.entries[i].id);
                }
                let mut olds: Vec<u32> =
                    list.entries.iter().filter(|e| !e.is_new).map(|e| e.id).collect();
                olds.retain(|id| !news.contains(id));
                olds.shuffle(&mut rng);
                olds.truncate(params.sample);
                drop(list);
                fwd_new.lock()[u] = news;
                fwd_old.lock()[u] = olds;
            });
        }

        // Phase 2: reverse samples (who sampled me?), bounded per node.
        let mut rev_new: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut rev_old: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n {
            for &v in &fwd_new[u] {
                rev_new[v as usize].push(u as u32);
            }
            for &v in &fwd_old[u] {
                rev_old[v as usize].push(u as u32);
            }
        }
        let mut trim_rng =
            small_rng(pathweaver_util::seed_from_parts(params.seed, "rev-trim", round as u64));
        for l in rev_new.iter_mut().chain(rev_old.iter_mut()) {
            if l.len() > params.sample {
                l.shuffle(&mut trim_rng);
                l.truncate(params.sample);
            }
        }

        // Phase 3: local join. New candidates are tried against both new and
        // old candidates; every accepted insertion counts as an update.
        let updates = AtomicU64::new(0);
        parallel_for(n, |u| {
            let mut news = fwd_new[u].clone();
            news.extend_from_slice(&rev_new[u]);
            news.sort_unstable();
            news.dedup();
            let mut olds = fwd_old[u].clone();
            olds.extend_from_slice(&rev_old[u]);
            olds.sort_unstable();
            olds.dedup();

            let mut local = 0u64;
            for (i, &a) in news.iter().enumerate() {
                // new × new (unordered pairs).
                for &b in news.iter().skip(i + 1) {
                    if a != b {
                        local += join(vectors, &lists, a, b);
                    }
                }
                // new × old.
                for &b in &olds {
                    if a != b {
                        local += join(vectors, &lists, a, b);
                    }
                }
            }
            if local > 0 {
                // Relaxed: integer event count — addition commutes, so the
                // total is schedule-independent; `parallel_for`'s completion
                // handshake orders it before the read below.
                updates.fetch_add(local, Ordering::Relaxed);
            }
        });

        let threshold = (params.termination_ratio * n as f64 * k as f64) as u64;
        // Relaxed: all contributing threads quiesced when `parallel_for`
        // returned, so this read observes the full round's total.
        if updates.load(Ordering::Relaxed) <= threshold {
            break;
        }
    }

    lists
        .into_iter()
        .map(|m| m.into_inner().entries.into_iter().map(|e| (e.dist, e.id)).collect())
        .collect()
}

/// Tries the symmetric insertion of the pair `(a, b)`; returns the number of
/// list changes (0–2).
fn join(vectors: &VectorSet, lists: &[Mutex<NeighborList>], a: u32, b: u32) -> u64 {
    let d = l2_squared(vectors.row(a as usize), vectors.row(b as usize));
    let mut changed = 0;
    if lists[a as usize].lock().insert(d, b) {
        changed += 1;
    }
    if lists[b as usize].lock().insert(d, a) {
        changed += 1;
    }
    changed
}

/// Exact k-NN lists by brute force — the oracle used in tests and for tiny
/// sets (ghost shards) where exactness is cheap.
pub fn exact_knn_lists(vectors: &VectorSet, k: usize) -> Vec<Vec<(f32, u32)>> {
    let n = vectors.len();
    let k = k.min(n.saturating_sub(1)).max(1);
    // Chunked through the blocked SIMD kernel; pushes stay in ascending-id
    // order (skipping the self pair) so TopK tie-breaking is unchanged.
    const CHUNK: usize = 256;
    pathweaver_util::parallel_map(n, |u| {
        let mut top = TopK::new(k);
        let mut dists = [0.0f32; CHUNK];
        let mut v = 0;
        while v < n {
            let m = CHUNK.min(n - v);
            pathweaver_vector::l2_squared_rows(vectors, v, vectors.row(u), &mut dists[..m]);
            for (j, &d) in dists[..m].iter().enumerate() {
                if v + j != u {
                    top.push(d, (v + j) as u64);
                }
            }
            v += m;
        }
        top.into_sorted().into_iter().map(|(d, id)| (d, id as u32)).collect()
    })
}

/// Fraction of exact k-NN edges recovered by `approx` (graph-build quality
/// metric).
pub fn knn_recall(exact: &[Vec<(f32, u32)>], approx: &[Vec<(f32, u32)>]) -> f64 {
    assert_eq!(exact.len(), approx.len());
    let mut hit = 0usize;
    let mut total = 0usize;
    for (e, a) in exact.iter().zip(approx) {
        let truth: std::collections::HashSet<u32> = e.iter().map(|x| x.1).collect();
        total += e.len();
        hit += a.iter().filter(|x| truth.contains(&x.1)).count();
    }
    if total == 0 {
        0.0
    } else {
        hit as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = small_rng(seed);
        VectorSet::from_fn(n, dim, |r, _| {
            let center = (r % 10) as f32 * 5.0;
            center + rng.gen_range(-0.5f32..0.5)
        })
    }

    #[test]
    fn neighbor_list_insert_sorted_dedup() {
        let mut l = NeighborList::new(3);
        assert!(l.insert(5.0, 1));
        assert!(l.insert(2.0, 2));
        assert!(!l.insert(2.0, 2));
        assert!(l.insert(9.0, 3));
        assert!(l.insert(1.0, 4)); // Evicts id 3.
        assert!(!l.insert(10.0, 5));
        let ids: Vec<u32> = l.entries.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![4, 2, 1]);
        let dists: Vec<f32> = l.entries.iter().map(|e| e.dist).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn nn_descent_recovers_most_exact_edges() {
        let set = clustered_set(600, 12, 42);
        let params =
            NnDescentParams { k: 8, max_rounds: 10, sample: 8, termination_ratio: 0.001, seed: 1 };
        let approx = nn_descent(&set, &params);
        let exact = exact_knn_lists(&set, 8);
        let recall = knn_recall(&exact, &approx);
        assert!(recall > 0.90, "NN-descent recall too low: {recall}");
    }

    #[test]
    fn lists_have_k_entries_and_no_self_loops() {
        let set = clustered_set(200, 8, 7);
        let params = NnDescentParams { k: 6, ..Default::default() };
        let lists = nn_descent(&set, &params);
        for (u, l) in lists.iter().enumerate() {
            assert_eq!(l.len(), 6, "node {u}");
            assert!(l.iter().all(|&(_, id)| id as usize != u), "self loop at {u}");
            assert!(l.windows(2).all(|w| w[0].0 <= w[1].0), "unsorted at {u}");
            let ids: std::collections::HashSet<u32> = l.iter().map(|x| x.1).collect();
            assert_eq!(ids.len(), 6, "duplicates at {u}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let set = clustered_set(150, 6, 3);
        let params = NnDescentParams { k: 4, ..Default::default() };
        assert_eq!(nn_descent(&set, &params), nn_descent(&set, &params));
    }

    #[test]
    fn tiny_set_caps_k() {
        let set = clustered_set(4, 3, 9);
        let params = NnDescentParams { k: 10, ..Default::default() };
        let lists = nn_descent(&set, &params);
        for l in &lists {
            assert_eq!(l.len(), 3);
        }
    }

    #[test]
    fn exact_knn_matches_ground_truth_semantics() {
        let set = VectorSet::from_fn(20, 2, |r, _| r as f32);
        let lists = exact_knn_lists(&set, 2);
        // Node 5's nearest are 4 and 6 (distance 2.0 in squared-L2, both dims).
        let ids: Vec<u32> = lists[5].iter().map(|x| x.1).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&4) && ids.contains(&6));
    }
}
