//! Proximity graph construction and auxiliary structures for PathWeaver.
//!
//! The paper assumes a pre-built proximity graph per shard (it uses CAGRA's
//! build algorithm) and adds three auxiliary structures at build time:
//! inter-shard edge tables (§3.1), ghost shards (§3.2) and direction-bit
//! tables (§3.3). This crate implements all of them, plus the baselines'
//! graphs:
//!
//! - [`csr`]: [`FixedDegreeGraph`], the flat fixed-out-degree adjacency both
//!   CAGRA and this reproduction search over.
//! - [`knn_build`]: NN-descent approximate k-NN graph construction.
//! - [`cagra_opt`]: CAGRA-style graph optimization (rank-sorted adjacency,
//!   detour-count pruning, reverse-edge merging).
//! - [`greedy`]: a plain best-first graph search used *at build time* (for
//!   inter-shard tables and HNSW insertion). The instrumented runtime kernel
//!   lives in `pathweaver-search`.
//! - [`hnsw`]: the HNSW baseline (hierarchical graph + CPU search).
//! - [`ggnn`]: a GGNN-style layered graph baseline.
//! - [`ghost`]: ghost-shard sampling and its lightweight graph (§3.2).
//! - [`intershard`]: the `I(u)` nearest-in-next-shard edge table (§3.1).
//! - [`dirtable`]: packed sign-bit direction codes for every edge (§3.3).
//! - [`stats`]: reachability and degree diagnostics.
//! - [`serialize`]: compact binary graph (de)serialization.
//! - [`build_report`]: build-phase timing breakdown (Fig 17).

#![forbid(unsafe_code)]

pub mod build_report;
pub mod cagra_opt;
pub mod csr;
pub mod dirtable;
pub mod ggnn;
pub mod ghost;
pub mod greedy;
pub mod hnsw;
pub mod intershard;
pub mod knn_build;
pub mod serialize;
pub mod stats;

pub use build_report::BuildReport;
pub use cagra_opt::{cagra_build, CagraBuildParams};
pub use csr::FixedDegreeGraph;
pub use dirtable::DirectionTable;
pub use ghost::{GhostParams, GhostShard};
pub use greedy::greedy_search;
pub use hnsw::{Hnsw, HnswParams};
pub use intershard::{InterShardParams, InterShardTable};
pub use knn_build::{nn_descent, NnDescentParams};
