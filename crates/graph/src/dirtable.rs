//! Packed direction-bit tables (paper §3.3, §4).
//!
//! For every edge `u → v` of a shard graph, the table stores the sign bits of
//! `v - u` packed into `u32` words. At search time the kernel computes the
//! query-direction code `sign(q - u)` once per visited node and ranks `u`'s
//! neighbors by matching bits with one XOR + popcount per word — avoiding the
//! full vector read for neighbors that point away from the query.
//!
//! Layout: row-major `num_nodes × degree × words_per_code`, so the codes of
//! one node's whole adjacency row are contiguous (a single coalesced load in
//! the simulated kernel).

use crate::csr::FixedDegreeGraph;
use pathweaver_util::parallel_chunks_mut;
use pathweaver_vector::{sign_code, sign_code_words, VectorSet};
use serde::{Deserialize, Serialize};

/// The per-edge packed direction codes of one shard graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectionTable {
    dim: usize,
    degree: usize,
    words: usize,
    codes: Vec<u32>,
}

impl DirectionTable {
    /// Builds the table for `graph` over `vectors`.
    ///
    /// Mirrors the paper's CPU-side preprocessing: one worker handles the
    /// edges of a contiguous block of parent nodes, packing each comparison
    /// into `u32` words.
    ///
    /// # Panics
    ///
    /// Panics if the graph and vector set disagree on node count.
    pub fn build(vectors: &VectorSet, graph: &FixedDegreeGraph) -> Self {
        assert_eq!(vectors.len(), graph.num_nodes(), "graph/vector size mismatch");
        let dim = vectors.dim();
        let degree = graph.degree();
        let words = sign_code_words(dim);
        let mut codes = vec![0u32; graph.num_nodes() * degree * words];
        let row_len = degree * words;
        parallel_chunks_mut(&mut codes, row_len, |u, chunk| {
            let src = vectors.row(u);
            for (j, &v) in graph.neighbors(u as u32).iter().enumerate() {
                let dst = vectors.row(v as usize);
                sign_code(src, dst, &mut chunk[j * words..(j + 1) * words]);
            }
        });
        Self { dim, degree, words, codes }
    }

    /// Vector dimensionality the codes encode.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of `u32` words per edge code.
    pub fn words_per_code(&self) -> usize {
        self.words
    }

    /// Returns the packed code of edge `(u, j)` — the `j`-th neighbor of `u`.
    ///
    /// # Panics
    ///
    /// Panics if the edge coordinates are out of range.
    #[inline]
    pub fn edge_code(&self, u: u32, j: usize) -> &[u32] {
        let start = (u as usize * self.degree + j) * self.words;
        &self.codes[start..start + self.words]
    }

    /// Returns all codes of node `u`'s adjacency row, concatenated.
    #[inline]
    pub fn node_codes(&self, u: u32) -> &[u32] {
        let start = u as usize * self.degree * self.words;
        &self.codes[start..start + self.degree * self.words]
    }

    /// Memory footprint in bytes (Fig 17 build-overhead analysis).
    pub fn nbytes(&self) -> usize {
        self.codes.len() * std::mem::size_of::<u32>()
    }

    /// The packed code words in their exact in-memory layout (row-major
    /// `num_nodes × degree × words_per_code`), for persistence.
    pub fn as_words(&self) -> &[u32] {
        &self.codes
    }

    /// Rebuilds a table from persisted code words.
    ///
    /// # Errors
    ///
    /// A description of the structural violation when the shape parameters
    /// are inconsistent with the word count or with `dim`.
    pub fn try_from_words(dim: usize, degree: usize, codes: Vec<u32>) -> Result<Self, String> {
        if dim == 0 || degree == 0 {
            return Err("zero dim or degree".into());
        }
        let words = sign_code_words(dim);
        if !codes.len().is_multiple_of(degree * words) {
            return Err(format!(
                "code count {} not a multiple of degree {degree} x {words} words",
                codes.len()
            ));
        }
        Ok(Self { dim, degree, words, codes })
    }

    /// Recomputes the codes of one node's adjacency row in place (dynamic
    /// updates, §6.2).
    pub fn rebuild_node(&mut self, vectors: &VectorSet, graph: &FixedDegreeGraph, u: u32) {
        let src = vectors.row(u as usize);
        for (j, &v) in graph.neighbors(u).iter().enumerate() {
            let start = (u as usize * self.degree + j) * self.words;
            let end = start + self.words;
            sign_code(src, vectors.row(v as usize), &mut self.codes[start..end]);
        }
    }

    /// Appends codes for a newly added node's adjacency row (dynamic
    /// updates).
    ///
    /// # Panics
    ///
    /// Panics if the graph does not already contain the new node as its last
    /// row.
    pub fn push_node(&mut self, vectors: &VectorSet, graph: &FixedDegreeGraph) {
        let u = graph.num_nodes() - 1;
        assert_eq!(self.codes.len(), u * self.degree * self.words, "push_node called out of sync");
        let src = vectors.row(u);
        let mut buf = vec![0u32; self.words];
        for &v in graph.neighbors(u as u32) {
            sign_code(src, vectors.row(v as usize), &mut buf);
            self.codes.extend_from_slice(&buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathweaver_vector::{hamming_matches, SignCodeBuf};

    fn small_world() -> (VectorSet, FixedDegreeGraph) {
        let set = VectorSet::from_fn(10, 40, |r, c| ((r * 7 + c * 3) % 11) as f32 - 5.0);
        let lists: Vec<Vec<u32>> =
            (0..10).map(|u| vec![((u + 1) % 10) as u32, ((u + 2) % 10) as u32]).collect();
        (set, FixedDegreeGraph::from_lists(2, &lists))
    }

    #[test]
    fn codes_match_direct_computation() {
        let (set, g) = small_world();
        let t = DirectionTable::build(&set, &g);
        assert_eq!(t.words_per_code(), 2);
        for u in 0..10u32 {
            for (j, &v) in g.neighbors(u).iter().enumerate() {
                let mut want = vec![0u32; 2];
                sign_code(set.row(u as usize), set.row(v as usize), &mut want);
                assert_eq!(t.edge_code(u, j), want.as_slice(), "edge ({u},{j})");
            }
        }
    }

    #[test]
    fn node_codes_are_row_concat() {
        let (set, g) = small_world();
        let t = DirectionTable::build(&set, &g);
        let row = t.node_codes(3);
        assert_eq!(&row[..2], t.edge_code(3, 0));
        assert_eq!(&row[2..4], t.edge_code(3, 1));
    }

    #[test]
    fn aligned_edge_scores_high_match() {
        // Node at origin, neighbor along +x, query along +x: the edge code
        // must match the query code on every dimension.
        let mut set = VectorSet::empty(32);
        set.push(&[0.0; 32]); // node 0
        set.push(&[1.0; 32]); // node 1: all coords increase
        let g = FixedDegreeGraph::from_lists(1, &[vec![1], vec![0]]);
        let t = DirectionTable::build(&set, &g);
        let query = [2.0f32; 32];
        let mut qcode = SignCodeBuf::new(32);
        qcode.encode(set.row(0), &query);
        assert_eq!(hamming_matches(qcode.words(), t.edge_code(0, 0), 32), 32);
    }

    #[test]
    fn rebuild_node_tracks_graph_change() {
        let (set, mut g) = small_world();
        let mut t = DirectionTable::build(&set, &g);
        g.set_neighbors(0, &[5, 6]);
        t.rebuild_node(&set, &g, 0);
        let mut want = vec![0u32; 2];
        sign_code(set.row(0), set.row(5), &mut want);
        assert_eq!(t.edge_code(0, 0), want.as_slice());
    }

    #[test]
    fn push_node_appends() {
        let (mut set, mut g) = small_world();
        let mut t = DirectionTable::build(&set, &g);
        set.push(&[0.5; 40]);
        g.push_node(&[0, 1]);
        t.push_node(&set, &g);
        let mut want = vec![0u32; 2];
        sign_code(set.row(10), set.row(0), &mut want);
        assert_eq!(t.edge_code(10, 0), want.as_slice());
    }

    #[test]
    fn nbytes_accounts_all_edges() {
        let (set, g) = small_world();
        let t = DirectionTable::build(&set, &g);
        assert_eq!(t.nbytes(), 10 * 2 * 2 * 4);
    }
}
