//! Build-time best-first graph search.
//!
//! A plain, uninstrumented beam search over a [`FixedDegreeGraph`]. It is
//! used where search quality matters but the GPU cost model does not: the
//! inter-shard table build (every node queries the adjacent shard, paper §4)
//! and graph-quality diagnostics. The runtime kernel with counters, hash
//! tables and direction-guided selection lives in `pathweaver-search`.

use crate::csr::FixedDegreeGraph;
use pathweaver_util::FixedBitSet;
use pathweaver_vector::{l2_squared, VectorSet};

/// One search result: squared distance and node id.
pub type Hit = (f32, u32);

/// Best-first beam search for the `k` nearest nodes to `query`.
///
/// `beam` is the working-set width (≥ k for sensible recall; commonly called
/// `ef`). `entries` seeds the beam; duplicates are tolerated.
///
/// Returns up to `k` hits ascending by distance.
///
/// # Panics
///
/// Panics if `entries` is empty, `beam == 0`, or `k == 0`.
pub fn greedy_search(
    graph: &FixedDegreeGraph,
    vectors: &VectorSet,
    query: &[f32],
    entries: &[u32],
    beam: usize,
    k: usize,
) -> Vec<Hit> {
    assert!(!entries.is_empty(), "need at least one entry point");
    assert!(beam > 0 && k > 0, "beam and k must be positive");
    let n = graph.num_nodes();
    let mut visited = FixedBitSet::new(n);

    // Working beam: ascending by distance, bounded to `beam` entries.
    // `expanded` marks nodes whose adjacency has been fetched.
    let mut heap: Vec<(f32, u32, bool)> = Vec::with_capacity(beam + 1);
    let push = |heap: &mut Vec<(f32, u32, bool)>, d: f32, id: u32| {
        if heap.len() == beam && d >= heap[beam - 1].0 {
            return;
        }
        let pos = heap.partition_point(|e| e.0 <= d);
        heap.insert(pos, (d, id, false));
        if heap.len() > beam {
            heap.pop();
        }
    };

    for &e in entries {
        if visited.insert(e as usize) {
            push(&mut heap, l2_squared(vectors.row(e as usize), query), e);
        }
    }

    // Expand the best unexpanded node within the beam until none remain.
    while let Some(idx) = heap.iter().position(|e| !e.2) {
        heap[idx].2 = true;
        let u = heap[idx].1;
        for &v in graph.neighbors(u) {
            if visited.insert(v as usize) {
                push(&mut heap, l2_squared(vectors.row(v as usize), query), v);
            }
        }
    }

    heap.into_iter().take(k).map(|(d, id, _)| (d, id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cagra_opt::{cagra_build, CagraBuildParams};

    fn line_world(n: usize) -> (FixedDegreeGraph, VectorSet) {
        let set = VectorSet::from_fn(n, 2, |r, _| r as f32);
        let g = cagra_build(&set, &CagraBuildParams::with_degree(8));
        (g, set)
    }

    #[test]
    fn finds_nearest_on_line() {
        let (g, set) = line_world(200);
        let hits = greedy_search(&g, &set, &[57.3, 57.3], &[0], 32, 3);
        assert_eq!(hits[0].1, 57);
        assert!(hits.iter().map(|h| h.1).collect::<Vec<_>>().contains(&58));
        assert!(hits.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn wider_beam_never_hurts() {
        let (g, set) = line_world(300);
        let query = [222.4f32, 222.4];
        let narrow = greedy_search(&g, &set, &query, &[0], 4, 1);
        let wide = greedy_search(&g, &set, &query, &[0], 64, 1);
        assert!(wide[0].0 <= narrow[0].0);
    }

    #[test]
    fn multiple_entries_accepted() {
        let (g, set) = line_world(100);
        let hits = greedy_search(&g, &set, &[10.0, 10.0], &[0, 50, 99, 0], 16, 2);
        assert_eq!(hits[0].1, 10);
    }

    #[test]
    fn k_capped_by_beam() {
        let (g, set) = line_world(50);
        let hits = greedy_search(&g, &set, &[25.0, 25.0], &[0], 4, 10);
        assert!(hits.len() <= 4);
    }

    #[test]
    #[should_panic(expected = "entry point")]
    fn empty_entries_panic() {
        let (g, set) = line_world(10);
        let _ = greedy_search(&g, &set, &[0.0, 0.0], &[], 4, 1);
    }
}
