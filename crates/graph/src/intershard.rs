//! Inter-shard edge tables for pipelining-based path extension (paper §3.1).
//!
//! For each node `u` of shard `i`, the table stores
//! `I(u) = argmin_{w ∈ shard (i+1) mod N} dist(u, w)` — the (approximately)
//! nearest node in the next shard of the ring. At query time, a converged
//! local result `z` on shard `i` seeds the search on shard `i+1` at `I(z)`.
//!
//! As in the paper (§4, §5.7), the table is built by *searching* the adjacent
//! shard's already-built proximity graph with every local node as a query and
//! keeping the top-1, which is dramatically cheaper than exact all-pairs.

use crate::csr::FixedDegreeGraph;
use crate::greedy::greedy_search;
use pathweaver_util::parallel_map;
use pathweaver_vector::VectorSet;
use serde::{Deserialize, Serialize};

/// Parameters of the inter-shard table build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterShardParams {
    /// Beam width of the build-time search in the adjacent shard.
    pub beam: usize,
    /// Number of random entry points per build-time search.
    pub entries: usize,
    /// Seed for entry sampling.
    pub seed: u64,
}

impl Default for InterShardParams {
    fn default() -> Self {
        Self { beam: 32, entries: 4, seed: 0x15edce }
    }
}

/// The `I(u)` mapping from every node of a source shard into the adjacent
/// (target) shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterShardTable {
    targets: Vec<u32>,
}

impl InterShardTable {
    /// Creates an empty table, to be filled with [`InterShardTable::push`]
    /// (used when deserializing a persisted index).
    pub fn empty() -> Self {
        Self { targets: Vec::new() }
    }

    /// Builds the table: each vector of `source` searches `target_graph`
    /// (over `target_vectors`) and keeps its top-1.
    ///
    /// # Panics
    ///
    /// Panics if either shard is empty.
    pub fn build(
        source: &VectorSet,
        target_vectors: &VectorSet,
        target_graph: &FixedDegreeGraph,
        params: &InterShardParams,
    ) -> Self {
        assert!(!source.is_empty(), "empty source shard");
        assert!(!target_vectors.is_empty(), "empty target shard");
        assert_eq!(target_vectors.len(), target_graph.num_nodes(), "target shard inconsistent");
        let tn = target_vectors.len();
        let targets = parallel_map(source.len(), |u| {
            let mut rng = pathweaver_util::small_rng(pathweaver_util::seed_from_parts(
                params.seed,
                "entry",
                u as u64,
            ));
            let entries: Vec<u32> = (0..params.entries.max(1))
                .map(|_| rand::Rng::gen_range(&mut rng, 0..tn) as u32)
                .collect();
            greedy_search(target_graph, target_vectors, source.row(u), &entries, params.beam, 1)[0]
                .1
        });
        Self { targets }
    }

    /// Builds the exact table by brute force — the oracle used in tests and
    /// for tiny shards.
    pub fn build_exact(source: &VectorSet, target_vectors: &VectorSet) -> Self {
        assert!(!target_vectors.is_empty(), "empty target shard");
        // Chunked through the blocked SIMD kernel; the strict `<` scan in
        // ascending target order keeps the historical argmin tie-breaking.
        const CHUNK: usize = 256;
        let targets = parallel_map(source.len(), |u| {
            let mut best = (f32::INFINITY, 0u32);
            let mut dists = [0.0f32; CHUNK];
            let mut w = 0;
            while w < target_vectors.len() {
                let n = CHUNK.min(target_vectors.len() - w);
                pathweaver_vector::l2_squared_rows(
                    target_vectors,
                    w,
                    source.row(u),
                    &mut dists[..n],
                );
                for (j, &d) in dists[..n].iter().enumerate() {
                    if d < best.0 {
                        best = (d, (w + j) as u32);
                    }
                }
                w += n;
            }
            best.1
        });
        Self { targets }
    }

    /// Returns `I(u)`: the target-shard node seeding continuation searches.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn target(&self, u: u32) -> u32 {
        self.targets[u as usize]
    }

    /// Number of source nodes covered.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` for an empty table.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Memory footprint in bytes (Fig 17 build-overhead analysis).
    pub fn nbytes(&self) -> usize {
        self.targets.len() * std::mem::size_of::<u32>()
    }

    /// Appends the mapping of a newly inserted source node (dynamic updates,
    /// paper §6.2).
    pub fn push(&mut self, target: u32) {
        self.targets.push(target);
    }

    /// The raw target ids in their exact in-memory layout, for persistence.
    pub fn as_targets(&self) -> &[u32] {
        &self.targets
    }

    /// Rebuilds a table from persisted targets (range checks against the
    /// adjacent shard are the caller's, which knows the ring).
    pub fn from_targets(targets: Vec<u32>) -> Self {
        Self { targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cagra_opt::{cagra_build, CagraBuildParams};
    use rand::Rng;

    fn two_shards(n: usize) -> (VectorSet, VectorSet) {
        let mut rng = pathweaver_util::small_rng(17);
        let a =
            VectorSet::from_fn(n, 4, |r, _| (r % 13) as f32 * 0.4 + rng.gen_range(-0.3f32..0.3));
        let mut rng2 = pathweaver_util::small_rng(23);
        let b =
            VectorSet::from_fn(n, 4, |r, _| (r % 13) as f32 * 0.4 + rng2.gen_range(-0.3f32..0.3));
        (a, b)
    }

    #[test]
    fn searched_table_mostly_matches_exact() {
        let (src, dst) = two_shards(400);
        let g = cagra_build(&dst, &CagraBuildParams::with_degree(12));
        let approx = InterShardTable::build(&src, &dst, &g, &InterShardParams::default());
        let exact = InterShardTable::build_exact(&src, &dst);
        // The searched targets must be near-optimal: compare achieved
        // distances rather than identities (ties are common on grids).
        let mut regret = 0.0f64;
        for u in 0..src.len() {
            let da = pathweaver_vector::l2_squared(
                src.row(u),
                dst.row(approx.target(u as u32) as usize),
            );
            let de =
                pathweaver_vector::l2_squared(src.row(u), dst.row(exact.target(u as u32) as usize));
            regret += f64::from(da - de);
        }
        assert!(regret / src.len() as f64 <= 0.05, "mean regret too high: {regret}");
    }

    #[test]
    fn exact_table_is_argmin() {
        let src = VectorSet::from_flat(1, vec![0.0, 5.0, 9.0]);
        let dst = VectorSet::from_flat(1, vec![1.0, 6.0, 8.0]);
        let t = InterShardTable::build_exact(&src, &dst);
        assert_eq!(t.target(0), 0);
        assert_eq!(t.target(1), 1);
        assert_eq!(t.target(2), 2);
    }

    #[test]
    fn table_len_and_bytes() {
        let (src, dst) = two_shards(50);
        let t = InterShardTable::build_exact(&src, &dst);
        assert_eq!(t.len(), 50);
        assert_eq!(t.nbytes(), 200);
    }

    #[test]
    fn push_extends_table() {
        let (src, dst) = two_shards(10);
        let mut t = InterShardTable::build_exact(&src, &dst);
        t.push(3);
        assert_eq!(t.len(), 11);
        assert_eq!(t.target(10), 3);
    }
}
