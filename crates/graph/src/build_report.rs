//! Build-phase timing breakdown (paper §5.7, Fig 17).
//!
//! The paper shows PathWeaver's auxiliary structures (inter-shard edges,
//! ghost connections, direction-bit vectors) add <10–15 % to CAGRA's graph
//! build time. [`BuildReport`] accumulates wall-clock timings per phase so
//! the `reproduce fig17` harness can print the same breakdown.

use pathweaver_obs::Stopwatch;
use serde::{Deserialize, Serialize};

/// Wall-clock build-time breakdown in seconds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildReport {
    /// Core proximity graph build (CAGRA's "graph build" bar).
    pub graph_build_s: f64,
    /// Inter-shard edge table construction (§3.1).
    pub intershard_s: f64,
    /// Ghost shard sampling + graph (§3.2).
    pub ghost_s: f64,
    /// Direction-bit table generation (§3.3).
    pub dirtable_s: f64,
    /// Int8 quantized-tier encoding (scale/offset scan + code rows).
    pub quantize_s: f64,
}

impl BuildReport {
    /// Creates an all-zero report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total build time across all phases.
    pub fn total_s(&self) -> f64 {
        self.graph_build_s + self.intershard_s + self.ghost_s + self.dirtable_s + self.quantize_s
    }

    /// PathWeaver-specific overhead over the core graph build, as a fraction
    /// of the total (the quantity Fig 17 bounds at 4–15 %).
    pub fn overhead_fraction(&self) -> f64 {
        let aux = self.intershard_s + self.ghost_s + self.dirtable_s + self.quantize_s;
        let total = self.total_s();
        if total <= 0.0 {
            0.0
        } else {
            aux / total
        }
    }

    /// Runs `f`, adding its wall time to the field selected by `phase`.
    pub fn time<T>(&mut self, phase: BuildPhase, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let out = f();
        let dt = sw.elapsed_secs();
        match phase {
            BuildPhase::GraphBuild => self.graph_build_s += dt,
            BuildPhase::InterShard => self.intershard_s += dt,
            BuildPhase::Ghost => self.ghost_s += dt,
            BuildPhase::DirTable => self.dirtable_s += dt,
            BuildPhase::Quantize => self.quantize_s += dt,
        }
        out
    }

    /// Merges another report (e.g. per-shard reports) into this one.
    pub fn merge(&mut self, other: &BuildReport) {
        self.graph_build_s += other.graph_build_s;
        self.intershard_s += other.intershard_s;
        self.ghost_s += other.ghost_s;
        self.dirtable_s += other.dirtable_s;
        self.quantize_s += other.quantize_s;
    }
}

/// Phases of an index build, matching Fig 17's bars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildPhase {
    /// Core proximity graph construction.
    GraphBuild,
    /// Inter-shard edge table.
    InterShard,
    /// Ghost shard.
    Ghost,
    /// Direction-bit table.
    DirTable,
    /// Int8 quantized-tier encoding.
    Quantize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_accumulates() {
        let mut r = BuildReport::new();
        let out = r.time(BuildPhase::GraphBuild, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(r.graph_build_s >= 0.004);
        assert_eq!(r.intershard_s, 0.0);
    }

    #[test]
    fn overhead_fraction_math() {
        let r = BuildReport {
            graph_build_s: 9.0,
            intershard_s: 0.4,
            ghost_s: 0.2,
            dirtable_s: 0.3,
            quantize_s: 0.1,
        };
        assert!((r.total_s() - 10.0).abs() < 1e-12);
        assert!((r.overhead_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_report_overhead_zero() {
        assert_eq!(BuildReport::new().overhead_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = BuildReport { graph_build_s: 1.0, ..Default::default() };
        let b = BuildReport { ghost_s: 2.0, dirtable_s: 0.5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.graph_build_s, 1.0);
        assert_eq!(a.ghost_s, 2.0);
        assert_eq!(a.total_s(), 3.5);
    }
}
