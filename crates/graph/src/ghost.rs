//! Ghost staging structures (paper §3.2).
//!
//! A ghost shard is a small random sample of a shard's points with its own
//! lightweight proximity graph. A query first runs a few iterations on the
//! ghost graph — whose sparse long-range structure acts as a "highway" — and
//! the best ghost hits become entry points into the full shard graph. The
//! ghost-to-original transition is the identity on vectors: every ghost node
//! *is* an original node, so the "inter-shard edge" of the paper maps ghost
//! index to original index.

use crate::cagra_opt::{cagra_build, optimize, CagraBuildParams};
use crate::csr::FixedDegreeGraph;
use crate::knn_build::exact_knn_lists;
use pathweaver_vector::VectorSet;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Parameters of ghost-shard construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GhostParams {
    /// Fraction of shard points sampled as ghost nodes (paper Fig 14 sweeps
    /// 1e-4 … 1e-1; small ratios win).
    pub sampling_ratio: f64,
    /// Minimum number of ghost nodes regardless of ratio.
    pub min_nodes: usize,
    /// Out-degree of the ghost graph.
    pub degree: usize,
    /// Seed for sampling.
    pub seed: u64,
}

impl Default for GhostParams {
    fn default() -> Self {
        Self { sampling_ratio: 0.01, min_nodes: 16, degree: 16, seed: 0x60057 }
    }
}

/// A ghost shard: sampled vectors, their lightweight graph and the mapping
/// back to original node ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GhostShard {
    /// `ghost index -> original node id` mapping.
    pub to_original: Vec<u32>,
    /// Sampled vectors (row `g` is the vector of original node
    /// `to_original[g]`).
    pub vectors: VectorSet,
    /// Ghost proximity graph over the sampled vectors.
    pub graph: FixedDegreeGraph,
}

impl GhostShard {
    /// Builds a ghost shard over `shard_vectors`.
    ///
    /// Uses an exact k-NN graph when the sample is small (≤ 2048 nodes) and
    /// the NN-descent build otherwise; both are then CAGRA-optimized.
    ///
    /// # Panics
    ///
    /// Panics if the shard is empty.
    pub fn build(shard_vectors: &VectorSet, params: &GhostParams) -> Self {
        let n = shard_vectors.len();
        assert!(n > 0, "empty shard");
        let target =
            ((n as f64 * params.sampling_ratio).ceil() as usize).max(params.min_nodes).min(n);
        let mut ids: Vec<usize> = (0..n).collect();
        let mut rng = pathweaver_util::small_rng(params.seed);
        ids.shuffle(&mut rng);
        ids.truncate(target);
        ids.sort_unstable();
        let vectors = shard_vectors.gather(&ids);
        let degree = params.degree.min(target.saturating_sub(1)).max(1);
        let graph = if target <= 2048 {
            let knn = exact_knn_lists(&vectors, degree + degree / 2);
            optimize(&knn, degree, params.seed)
        } else {
            cagra_build(&vectors, &CagraBuildParams::with_degree(degree))
        };
        Self { to_original: ids.into_iter().map(|i| i as u32).collect(), vectors, graph }
    }

    /// Number of ghost nodes.
    pub fn len(&self) -> usize {
        self.to_original.len()
    }

    /// Returns `true` when the ghost shard has no nodes (never happens for
    /// shards built with [`GhostShard::build`]).
    pub fn is_empty(&self) -> bool {
        self.to_original.is_empty()
    }

    /// Maps a ghost node id to its original node id.
    ///
    /// # Panics
    ///
    /// Panics if `ghost_id` is out of range.
    pub fn original_id(&self, ghost_id: u32) -> u32 {
        self.to_original[ghost_id as usize]
    }

    /// Memory footprint of the auxiliary structures in bytes (used by the
    /// build-overhead analysis of Fig 17).
    pub fn nbytes(&self) -> usize {
        self.to_original.len() * 4 + self.vectors.nbytes() + self.graph.nbytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn shard(n: usize) -> VectorSet {
        let mut rng = pathweaver_util::small_rng(3);
        VectorSet::from_fn(n, 6, |r, _| (r % 17) as f32 + rng.gen_range(-0.2f32..0.2))
    }

    #[test]
    fn respects_sampling_ratio() {
        let s = shard(2000);
        let g = GhostShard::build(
            &s,
            &GhostParams { sampling_ratio: 0.05, min_nodes: 8, degree: 8, seed: 1 },
        );
        assert_eq!(g.len(), 100);
        assert_eq!(g.vectors.len(), 100);
        assert_eq!(g.graph.num_nodes(), 100);
    }

    #[test]
    fn min_nodes_floor_applies() {
        let s = shard(500);
        let g = GhostShard::build(
            &s,
            &GhostParams { sampling_ratio: 0.0001, min_nodes: 16, degree: 8, seed: 2 },
        );
        assert_eq!(g.len(), 16);
    }

    #[test]
    fn mapping_points_to_matching_vectors() {
        let s = shard(300);
        let g = GhostShard::build(&s, &GhostParams::default());
        for gi in 0..g.len() {
            let orig = g.original_id(gi as u32) as usize;
            assert_eq!(g.vectors.row(gi), s.row(orig), "ghost {gi}");
        }
    }

    #[test]
    fn mapping_ids_unique_and_sorted() {
        let s = shard(400);
        let g = GhostShard::build(&s, &GhostParams::default());
        assert!(g.to_original.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tiny_shard_degenerates_gracefully() {
        let s = shard(5);
        let g = GhostShard::build(
            &s,
            &GhostParams { sampling_ratio: 0.5, min_nodes: 3, degree: 8, seed: 4 },
        );
        assert!(g.len() >= 3);
        assert!(g.graph.degree() >= 1);
    }

    #[test]
    fn ratio_one_takes_all() {
        let s = shard(64);
        let g = GhostShard::build(
            &s,
            &GhostParams { sampling_ratio: 1.0, min_nodes: 1, degree: 6, seed: 5 },
        );
        assert_eq!(g.len(), 64);
    }
}
