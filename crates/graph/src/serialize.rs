//! Compact binary (de)serialization of graphs and tables.
//!
//! A small framed format (magic, version, dims, payload) so built indices can
//! be cached on disk between benchmark runs. Serde/JSON would inflate a
//! 30k×32 adjacency by ~4×; this writes raw little-endian words.

use crate::csr::FixedDegreeGraph;
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

const MAGIC: u32 = 0x5057_4752; // "PWGR"
const VERSION: u16 = 1;

/// Errors raised by graph (de)serialization.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Wrong magic, version, or malformed payload.
    Format(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Format(m) => write!(f, "bad graph file: {m}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<io::Error> for SerializeError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes `graph` in the framed binary format.
pub fn write_graph(mut w: impl Write, graph: &FixedDegreeGraph) -> Result<(), SerializeError> {
    let mut buf = Vec::with_capacity(16 + graph.num_edges() * 4);
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0); // Reserved flags.
    buf.put_u32_le(graph.degree() as u32);
    buf.put_u32_le(graph.num_nodes() as u32);
    for &v in graph.as_flat() {
        buf.put_u32_le(v);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a graph written by [`write_graph`].
pub fn read_graph(mut r: impl Read) -> Result<FixedDegreeGraph, SerializeError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    if buf.remaining() < 16 {
        return Err(SerializeError::Format("truncated header".into()));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(SerializeError::Format("bad magic".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(SerializeError::Format(format!("unsupported version {version}")));
    }
    let _flags = buf.get_u16_le();
    let degree = buf.get_u32_le() as usize;
    let nodes = buf.get_u32_le() as usize;
    let want =
        nodes.checked_mul(degree).ok_or_else(|| SerializeError::Format("size overflow".into()))?;
    if buf.remaining() != want * 4 {
        return Err(SerializeError::Format(format!(
            "payload size {} != expected {}",
            buf.remaining(),
            want * 4
        )));
    }
    if degree == 0 {
        return Err(SerializeError::Format("zero degree".into()));
    }
    let mut adj = Vec::with_capacity(want);
    for _ in 0..want {
        adj.push(buf.get_u32_le());
    }
    // Structural validation (range checks) lives with the graph type so the
    // durable store's segment loader shares it verbatim.
    FixedDegreeGraph::try_from_flat(degree, adj).map_err(SerializeError::Format)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FixedDegreeGraph {
        let lists: Vec<Vec<u32>> =
            (0..9u32).map(|u| vec![(u + 1) % 9, (u + 3) % 9, (u + 7) % 9]).collect();
        FixedDegreeGraph::from_lists(3, &lists)
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let back = read_graph(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &sample()).unwrap();
        buf[0] ^= 0xff;
        assert!(matches!(read_graph(&buf[..]), Err(SerializeError::Format(_))));
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 4);
        assert!(matches!(read_graph(&buf[..]), Err(SerializeError::Format(_))));
    }

    #[test]
    fn rejects_out_of_range_neighbor() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &sample()).unwrap();
        // Corrupt the first adjacency word to an invalid id.
        let off = 16;
        buf[off..off + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(read_graph(&buf[..]), Err(SerializeError::Format(_))));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        write_graph(&mut buf, &sample()).unwrap();
        buf[4] = 99;
        assert!(matches!(read_graph(&buf[..]), Err(SerializeError::Format(_))));
    }
}
