//! Fixed-out-degree adjacency storage.
//!
//! CAGRA-family search kernels want every node to have exactly `degree`
//! neighbors so a warp can fetch the adjacency row with one coalesced load
//! and process it without divergence. The paper fixes the out-degree to 64
//! for all datasets (§5.1); this reproduction keeps it configurable.

use serde::{Deserialize, Serialize};

/// A proximity graph with exactly `degree` out-edges per node, stored as one
/// flat row-major `u32` array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedDegreeGraph {
    degree: usize,
    /// `num_nodes × degree` neighbor ids.
    adjacency: Vec<u32>,
}

impl FixedDegreeGraph {
    /// Creates a graph from a flat `num_nodes × degree` adjacency array.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`, the buffer is not a multiple of `degree`, or
    /// any neighbor id is out of range.
    pub fn from_flat(degree: usize, adjacency: Vec<u32>) -> Self {
        match Self::try_from_flat(degree, adjacency) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`FixedDegreeGraph::from_flat`] for loaders that
    /// must turn structural problems into errors instead of panics (the
    /// durable store rejects corrupt adjacency sections this way).
    ///
    /// # Errors
    ///
    /// A description of the structural violation: zero degree, ragged
    /// buffer, or an out-of-range neighbor id.
    pub fn try_from_flat(degree: usize, adjacency: Vec<u32>) -> Result<Self, String> {
        if degree == 0 {
            return Err("degree must be positive".into());
        }
        if !adjacency.len().is_multiple_of(degree) {
            return Err(format!(
                "adjacency length {} not a multiple of degree {degree}",
                adjacency.len()
            ));
        }
        let n = adjacency.len() / degree;
        if !adjacency.iter().all(|&v| (v as usize) < n) {
            return Err(format!("neighbor id out of range for {n} nodes"));
        }
        Ok(Self { degree, adjacency })
    }

    /// Creates a graph from per-node neighbor lists, each exactly `degree`
    /// long.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FixedDegreeGraph::from_flat`],
    /// or if any list has the wrong length.
    pub fn from_lists(degree: usize, lists: &[Vec<u32>]) -> Self {
        let mut adjacency = Vec::with_capacity(lists.len() * degree);
        for (u, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), degree, "node {u} has {} neighbors, want {degree}", list.len());
            adjacency.extend_from_slice(list);
        }
        Self::from_flat(degree, adjacency)
    }

    /// Returns the fixed out-degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Returns the number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len() / self.degree
    }

    /// Returns the neighbors of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let start = u as usize * self.degree;
        &self.adjacency[start..start + self.degree]
    }

    /// Returns the flat adjacency buffer.
    pub fn as_flat(&self) -> &[u32] {
        &self.adjacency
    }

    /// Returns the memory footprint of the adjacency in bytes.
    pub fn nbytes(&self) -> usize {
        self.adjacency.len() * std::mem::size_of::<u32>()
    }

    /// Returns the total number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.len()
    }

    /// Replaces the adjacency row of node `u`.
    ///
    /// Used by the dynamic-update path when a shard absorbs insertions.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != degree` or any id is out of range.
    pub fn set_neighbors(&mut self, u: u32, row: &[u32]) {
        assert_eq!(row.len(), self.degree, "row length mismatch");
        let n = self.num_nodes();
        assert!(row.iter().all(|&v| (v as usize) < n), "neighbor id out of range");
        let start = u as usize * self.degree;
        self.adjacency[start..start + self.degree].copy_from_slice(row);
    }

    /// Appends a new node with the given adjacency row, returning its id.
    ///
    /// The new node may reference any id `<= num_nodes()` (including itself).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != degree` or any id exceeds the new node count.
    pub fn push_node(&mut self, row: &[u32]) -> u32 {
        assert_eq!(row.len(), self.degree, "row length mismatch");
        let new_id = self.num_nodes() as u32;
        assert!(row.iter().all(|&v| v <= new_id), "neighbor id out of range");
        self.adjacency.extend_from_slice(row);
        new_id
    }

    /// Builds the reverse adjacency: for each node, the list of nodes that
    /// point to it.
    pub fn reverse_lists(&self) -> Vec<Vec<u32>> {
        let n = self.num_nodes();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n {
            for &v in self.neighbors(u as u32) {
                rev[v as usize].push(u as u32);
            }
        }
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, degree: usize) -> FixedDegreeGraph {
        let lists: Vec<Vec<u32>> =
            (0..n).map(|u| (1..=degree).map(|s| ((u + s) % n) as u32).collect()).collect();
        FixedDegreeGraph::from_lists(degree, &lists)
    }

    #[test]
    fn ring_adjacency() {
        let g = ring(5, 2);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.degree(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(4), &[0, 1]);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn set_neighbors_replaces_row() {
        let mut g = ring(4, 2);
        g.set_neighbors(1, &[3, 0]);
        assert_eq!(g.neighbors(1), &[3, 0]);
    }

    #[test]
    fn push_node_grows_graph() {
        let mut g = ring(3, 2);
        let id = g.push_node(&[0, 3]); // May self-reference the new node.
        assert_eq!(id, 3);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.neighbors(3), &[0, 3]);
    }

    #[test]
    fn reverse_lists_inverts() {
        let g = ring(4, 1); // u -> u+1
        let rev = g.reverse_lists();
        assert_eq!(rev[0], vec![3]);
        assert_eq!(rev[1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_ids() {
        let _ = FixedDegreeGraph::from_flat(2, vec![0, 5, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_flat() {
        let _ = FixedDegreeGraph::from_flat(2, vec![0, 1, 0]);
    }

    #[test]
    fn nbytes_counts_u32() {
        let g = ring(10, 4);
        assert_eq!(g.nbytes(), 10 * 4 * 4);
    }
}
