//! Unconditional wall-clock measurement.
//!
//! [`SpanTimer`](crate::span::SpanTimer) is gated on the obs flags and inert
//! while they are off — correct for instrumentation, wrong for code that must
//! always report elapsed time (build reports, CLI summaries). [`Stopwatch`]
//! is the sanctioned home for that: the rest of the workspace is barred from
//! `std::time::Instant` by pwlint's D001 rule, so every wall-clock read
//! funnels through here, where it is *measured and reported* but never fed
//! back into control flow. Keeping the type in `crates/obs` keeps that
//! contract auditable in one place.

use std::time::Instant;

/// A started wall-clock timer.
///
/// ```
/// let sw = pathweaver_obs::Stopwatch::start();
/// let _elapsed = sw.elapsed_secs();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Self { started: Instant::now() }
    }

    /// Seconds elapsed since [`start`](Self::start), as `f64`.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Milliseconds elapsed since [`start`](Self::start), as `f64`.
    #[must_use]
    pub fn elapsed_millis(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Nanoseconds elapsed since [`start`](Self::start), saturating at
    /// `u64::MAX` (~584 years).
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed_millis() >= 0.0);
    }

    #[test]
    fn copies_share_the_start_instant() {
        let sw = Stopwatch::start();
        let copy = sw;
        // A copy measures from the same start, so a strictly later read
        // through the copy can never be smaller.
        let first = sw.elapsed_nanos();
        let later = copy.elapsed_nanos();
        assert!(later >= first);
    }
}
