//! Structured per-stage query traces with JSONL export.
//!
//! When tracing is enabled (see [`crate::set_tracing`]), every pipeline
//! stage records one [`TraceEvent`] describing the work one query chunk did
//! on one shard hop: iterations, distance computations, bytes streamed, and
//! host wall time. Events from concurrent device threads land in a global
//! sink; [`drain_sorted`] returns them in the canonical deterministic order
//! `(batch, chunk, stage)`.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// One pipeline-stage hop of one query chunk.
///
/// All fields except `wall_ns` and `batch` are derived from the
/// deterministic simulated-clock counters; [`TraceEvent::normalized`] zeroes
/// the non-deterministic pair for replay comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Batch sequence number (process-global, see [`next_batch_id`]).
    pub batch: u64,
    /// Origin chunk index (= the device the chunk started on).
    pub chunk: usize,
    /// Device that executed this stage.
    pub device: usize,
    /// Stage index along the ring (0 = unseeded first hop).
    pub stage: usize,
    /// Queries in the chunk.
    pub queries: u64,
    /// Search iterations executed in this stage.
    pub iterations: u64,
    /// Exact distance computations in this stage.
    pub dist_calcs: u64,
    /// Bytes streamed from simulated device memory (vectors + adjacency +
    /// direction table).
    pub bytes_read: u64,
    /// Bytes forwarded to the next device after this stage.
    pub comm_bytes: u64,
    /// Host wall time of the stage in nanoseconds (not simulated time; 0
    /// when the stage ran with tracing disabled mid-flight).
    pub wall_ns: u64,
}

impl TraceEvent {
    /// The event with the non-deterministic fields (`wall_ns`, `batch`)
    /// zeroed, leaving only simulated-clock-derived content. Two runs of the
    /// same workload must produce identical normalized traces.
    pub fn normalized(&self) -> TraceEvent {
        TraceEvent { wall_ns: 0, batch: 0, ..*self }
    }
}

static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static NEXT_BATCH: AtomicU64 = AtomicU64::new(0);

/// Allocates the next batch sequence number.
pub fn next_batch_id() -> u64 {
    NEXT_BATCH.fetch_add(1, Ordering::Relaxed)
}

/// Resets the batch sequence counter (test isolation).
pub fn reset_batch_ids() {
    NEXT_BATCH.store(0, Ordering::Relaxed);
}

/// Appends an event to the global sink.
pub fn record(ev: TraceEvent) {
    SINK.lock().push(ev);
}

/// Number of events currently buffered.
pub fn len() -> usize {
    SINK.lock().len()
}

/// Discards all buffered events.
pub fn clear() {
    SINK.lock().clear();
}

/// Removes and returns all buffered events in `(batch, chunk, stage)` order.
///
/// Device threads complete stages in a wall-clock-dependent order; sorting
/// by the logical key makes the returned trace (and hence JSONL exports)
/// deterministic for a deterministic workload.
pub fn drain_sorted() -> Vec<TraceEvent> {
    let mut events = std::mem::take(&mut *SINK.lock());
    events.sort_by_key(|e| (e.batch, e.chunk, e.stage));
    events
}

/// Writes events as JSON Lines (one object per line).
///
/// # Errors
///
/// Propagates IO errors; serialization itself cannot fail for
/// [`TraceEvent`].
pub fn write_jsonl(path: impl AsRef<Path>, events: &[TraceEvent]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for ev in events {
        let line = serde_json::to_string(ev).map_err(std::io::Error::other)?;
        f.write_all(line.as_bytes())?;
        f.write_all(b"\n")?;
    }
    f.flush()
}

/// Reads a JSONL trace written by [`write_jsonl`]. Blank lines are skipped.
///
/// # Errors
///
/// IO errors or malformed JSON on any line.
pub fn read_jsonl(path: impl AsRef<Path>) -> std::io::Result<Vec<TraceEvent>> {
    let f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for line in f.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line).map_err(std::io::Error::other)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(batch: u64, chunk: usize, stage: usize) -> TraceEvent {
        TraceEvent {
            batch,
            chunk,
            device: (chunk + stage) % 4,
            stage,
            queries: 8,
            iterations: 12,
            dist_calcs: 3456,
            bytes_read: 1 << 20,
            comm_bytes: 256,
            wall_ns: 98_765,
        }
    }

    #[test]
    fn drain_sorts_by_logical_key() {
        clear();
        record(ev(1, 0, 0));
        record(ev(0, 1, 1));
        record(ev(0, 1, 0));
        record(ev(0, 0, 0));
        let got = drain_sorted();
        let keys: Vec<(u64, usize, usize)> =
            got.iter().map(|e| (e.batch, e.chunk, e.stage)).collect();
        assert_eq!(keys, vec![(0, 0, 0), (0, 1, 0), (0, 1, 1), (1, 0, 0)]);
        assert_eq!(len(), 0, "drain empties the sink");
    }

    #[test]
    fn jsonl_roundtrip() {
        let events: Vec<TraceEvent> = (0..5).map(|i| ev(0, i, i % 2)).collect();
        let path = std::env::temp_dir().join(format!("pw-trace-{}.jsonl", std::process::id()));
        write_jsonl(&path, &events).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, events);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_skips_blank_lines() {
        let path =
            std::env::temp_dir().join(format!("pw-trace-blank-{}.jsonl", std::process::id()));
        let body = format!(
            "{}\n\n{}\n",
            serde_json::to_string(&ev(0, 0, 0)).unwrap(),
            serde_json::to_string(&ev(0, 1, 0)).unwrap()
        );
        std::fs::write(&path, body).unwrap();
        assert_eq!(read_jsonl(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn normalized_zeroes_nondeterministic_fields() {
        let e = ev(7, 2, 1);
        let n = e.normalized();
        assert_eq!(n.wall_ns, 0);
        assert_eq!(n.batch, 0);
        assert_eq!(n.dist_calcs, e.dist_calcs);
        assert_eq!(n.stage, e.stage);
    }

    #[test]
    fn batch_ids_are_sequential_after_reset() {
        reset_batch_ids();
        assert_eq!(next_batch_id(), 0);
        assert_eq!(next_batch_id(), 1);
        reset_batch_ids();
        assert_eq!(next_batch_id(), 0);
    }
}
