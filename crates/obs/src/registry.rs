//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name → metric handle) takes a short `RwLock` critical
//! section; all subsequent updates through the returned `Arc` handle are
//! plain atomic operations. Call sites on the query path look a metric up
//! once per batch or stage — never per neighbor — so the lock is far off the
//! hot loop.

use crate::histogram::{Histogram, HistogramSummary};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` metric (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A namespace of metrics, usually accessed through [`crate::registry()`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Looks up `name` in `map`, inserting a default entry when missing.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().get(name) {
        return Arc::clone(m);
    }
    Arc::clone(map.write().entry(name.to_string()).or_default())
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// Returns (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// Returns (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Takes a point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.read().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.read().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Drops every registered metric (test isolation between runs).
    ///
    /// Handles obtained before the reset keep working but are no longer
    /// reachable from the registry or its snapshots.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

/// A serializable point-in-time view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The snapshot with every wall-clock-derived metric removed.
    ///
    /// By convention every metric measuring host wall time has a name ending
    /// in `wall_ns`; everything else is derived from the deterministic
    /// simulated-clock counters and must be bit-identical across reruns of
    /// the same workload. Determinism tests compare this view.
    pub fn without_wallclock(&self) -> MetricsSnapshot {
        let keep = |k: &String| !k.ends_with("wall_ns");
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Pretty-printed JSON rendering.
    ///
    /// # Panics
    ///
    /// Never in practice: the snapshot's maps always serialize.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = MetricsRegistry::new();
        r.counter("a").add(3);
        r.counter("a").inc();
        r.gauge("g").set(0.25);
        let s = r.snapshot();
        assert_eq!(s.counters["a"], 4);
        assert_eq!(s.gauges["g"], 0.25);
    }

    #[test]
    fn handles_survive_and_share_state() {
        let r = MetricsRegistry::new();
        let h1 = r.counter("x");
        let h2 = r.counter("x");
        h1.add(1);
        h2.add(1);
        assert_eq!(r.counter("x").get(), 2);
    }

    #[test]
    fn histogram_registered_and_summarized() {
        let r = MetricsRegistry::new();
        for v in [1u64, 2, 3] {
            r.histogram("h").record(v);
        }
        let s = r.snapshot();
        assert_eq!(s.histograms["h"].count, 3);
        assert_eq!(s.histograms["h"].sum, 6);
    }

    #[test]
    fn reset_clears_names() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.reset();
        assert!(r.snapshot().counters.is_empty());
        assert_eq!(r.counter("a").get(), 0);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let r = MetricsRegistry::new();
        r.counter("c").add(7);
        r.gauge("g").set(1.5);
        r.histogram("h").record(42);
        let s = r.snapshot();
        let back: MetricsSnapshot = serde_json::from_str(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn without_wallclock_filters_by_suffix() {
        let r = MetricsRegistry::new();
        r.counter("pipeline.stage0.dist_calcs").add(1);
        r.histogram("pipeline.stage0.wall_ns").record(123);
        r.histogram("pipeline.stage0.iterations").record(4);
        let s = r.snapshot().without_wallclock();
        assert!(s.counters.contains_key("pipeline.stage0.dist_calcs"));
        assert!(s.histograms.contains_key("pipeline.stage0.iterations"));
        assert!(!s.histograms.contains_key("pipeline.stage0.wall_ns"));
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let r = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        r.counter("c").inc();
                        r.histogram("h").record(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("c").get(), 4000);
        assert_eq!(r.histogram("h").count(), 4000);
    }
}
