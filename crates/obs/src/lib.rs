//! Query-level observability for the PathWeaver workspace.
//!
//! Three pieces, all process-global and lock-cheap:
//!
//! - [`registry()`]: a [`MetricsRegistry`] of named [`Counter`]s, [`Gauge`]s,
//!   and log-linear [`Histogram`]s with p50/p95/p99 summaries
//!   ([`MetricsSnapshot`] serializes the whole registry).
//! - [`span::SpanTimer`]: wall-clock stage timers feeding the per-stage
//!   `*.wall_ns` latency histograms.
//! - [`trace`]: structured per-stage query traces ([`trace::TraceEvent`])
//!   with JSONL export.
//!
//! # Overhead contract
//!
//! Everything is gated on two process-global atomic flags, both off by
//! default. While disabled, instrumented code paths execute exactly one
//! relaxed atomic load and skip all metric work — the overhead bench
//! (`obs_overhead` in the wallclock harness) holds the disabled path within
//! noise of the uninstrumented baseline. Instrumentation reads the
//! simulated-clock counters but never writes them, never draws from a search
//! RNG, and never reorders search work, so enabling it cannot perturb search
//! results or the deterministic simulated clock (asserted by
//! `tests/observability.rs`).
//!
//! # Enabling
//!
//! Programmatically via [`set_enabled`] / [`set_tracing`], or through the
//! environment on first query: `PATHWEAVER_OBS=1` enables metrics,
//! `PATHWEAVER_TRACE=1` enables both metrics and trace collection.

#![forbid(unsafe_code)]

pub mod histogram;
pub mod registry;
pub mod span;
pub mod stopwatch;
pub mod trace;

pub use histogram::{Histogram, HistogramSummary};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use span::SpanTimer;
pub use stopwatch::Stopwatch;
pub use trace::TraceEvent;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

const FLAG_OFF: u8 = 0;
const FLAG_ON: u8 = 1;
const FLAG_UNSET: u8 = 2;

static METRICS_FLAG: AtomicU8 = AtomicU8::new(FLAG_UNSET);
static TRACE_FLAG: AtomicU8 = AtomicU8::new(FLAG_UNSET);

/// Reads a flag, consulting its environment variable on first use.
#[inline]
fn flag(state: &AtomicU8, env: &str) -> bool {
    match state.load(Ordering::Relaxed) {
        FLAG_ON => true,
        FLAG_OFF => false,
        _ => init_flag(state, env),
    }
}

#[cold]
fn init_flag(state: &AtomicU8, env: &str) -> bool {
    let on = matches!(std::env::var(env).as_deref(), Ok("1") | Ok("true") | Ok("on"));
    state.store(if on { FLAG_ON } else { FLAG_OFF }, Ordering::Relaxed);
    on
}

/// Whether metric recording is enabled. One relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    flag(&METRICS_FLAG, "PATHWEAVER_OBS")
}

/// Whether trace collection is enabled. Tracing implies metrics make sense,
/// but the flags are independent; [`set_tracing`]`(true)` also enables
/// metrics for convenience.
#[inline]
pub fn tracing_enabled() -> bool {
    flag(&TRACE_FLAG, "PATHWEAVER_TRACE")
}

/// Turns metric recording on or off (overrides `PATHWEAVER_OBS`).
pub fn set_enabled(on: bool) {
    METRICS_FLAG.store(if on { FLAG_ON } else { FLAG_OFF }, Ordering::Relaxed);
}

/// Turns trace collection on or off (overrides `PATHWEAVER_TRACE`); enabling
/// tracing also enables metrics.
pub fn set_tracing(on: bool) {
    TRACE_FLAG.store(if on { FLAG_ON } else { FLAG_OFF }, Ordering::Relaxed);
    if on {
        set_enabled(true);
    }
}

/// The process-global registry every PathWeaver crate records into.
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Snapshot of the global registry.
pub fn global_snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

/// Clears the global registry, the trace sink, and the batch counter —
/// full observability reset for deterministic reruns.
pub fn reset() {
    registry().reset();
    trace::clear();
    trace::reset_batch_ids();
}

#[cfg(test)]
pub(crate) fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    // Tests that toggle the process-global flags serialize on this lock so
    // the default parallel test harness cannot interleave them.
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    LOCK.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_toggle() {
        let _g = test_guard();
        set_enabled(false);
        set_tracing(false);
        assert!(!enabled());
        assert!(!tracing_enabled());
        set_tracing(true);
        assert!(tracing_enabled());
        assert!(enabled(), "tracing implies metrics");
        set_tracing(false);
        set_enabled(false);
    }

    #[test]
    fn global_registry_is_shared() {
        let _g = test_guard();
        registry().counter("lib.test.shared").add(2);
        assert_eq!(global_snapshot().counters["lib.test.shared"], 2);
        reset();
        assert!(!global_snapshot().counters.contains_key("lib.test.shared"));
    }
}
