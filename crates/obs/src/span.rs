//! Span-style stage timers.
//!
//! A [`SpanTimer`] is the wall-clock half of stage instrumentation: started
//! at stage entry, read at stage exit, and recorded into a `*.wall_ns`
//! histogram. When observability is disabled the timer never touches the
//! clock — construction is a single relaxed atomic load.

use std::time::Instant;

/// A wall-clock timer that is a no-op while observability is disabled.
#[derive(Debug)]
pub struct SpanTimer(Option<Instant>);

impl SpanTimer {
    /// Starts a timer; inert unless metrics or tracing are enabled.
    #[inline]
    pub fn start() -> Self {
        if crate::enabled() || crate::tracing_enabled() {
            Self(Some(Instant::now()))
        } else {
            Self(None)
        }
    }

    /// Elapsed nanoseconds since [`SpanTimer::start`]; 0 for an inert timer
    /// (and saturated at `u64::MAX` for implausibly long spans).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        match self.0 {
            Some(t) => u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
            None => 0,
        }
    }

    /// Whether the timer is actually measuring.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_when_disabled() {
        let _g = crate::test_guard();
        crate::set_enabled(false);
        crate::set_tracing(false);
        let t = SpanTimer::start();
        assert!(!t.is_active());
        assert_eq!(t.elapsed_ns(), 0);
    }

    #[test]
    fn measures_when_enabled() {
        let _g = crate::test_guard();
        crate::set_enabled(true);
        let t = SpanTimer::start();
        assert!(t.is_active());
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(t.elapsed_ns() > 0);
        crate::set_enabled(false);
    }
}
