//! Lock-free log-linear histograms with percentile summaries.
//!
//! The bucket layout is HdrHistogram-style log-linear: each power-of-two
//! octave is split into `SUB_BUCKETS` linear sub-buckets, so the relative
//! quantization error of any recorded value is bounded by
//! `1 / SUB_BUCKETS = 12.5 %` regardless of magnitude. Values `< SUB_BUCKETS`
//! are stored exactly. Every slot is an `AtomicU64`, so concurrent recording
//! from pipeline device threads needs no lock.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave.
const SUB_BUCKETS: u64 = 8;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 3;
/// Total bucket count: exact small values plus `SUB_BUCKETS` per octave for
/// octaves `SUB_BITS..64`.
const NUM_BUCKETS: usize = (SUB_BUCKETS as usize) * (64 - SUB_BITS as usize + 1);

/// A concurrent log-linear histogram of `u64` samples.
///
/// Recording is wait-free (a handful of relaxed atomic RMWs); reading takes a
/// consistent-enough snapshot for reporting (individual bucket loads are
/// atomic, cross-bucket skew is bounded by in-flight recordings).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of `v`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v < SUB_BUCKETS {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (octave - SUB_BITS)) & (SUB_BUCKETS - 1);
        ((octave - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize
    }

    /// Inclusive value range `[lo, hi]` covered by bucket `b`.
    fn bucket_range(b: usize) -> (u64, u64) {
        if b < SUB_BUCKETS as usize {
            return (b as u64, b as u64);
        }
        let octave = (b as u64 / SUB_BUCKETS - 1) as u32 + SUB_BITS;
        let sub = b as u64 & (SUB_BUCKETS - 1);
        let width = 1u64 << (octave - SUB_BITS);
        let lo = (1u64 << octave) + sub * width;
        // `lo + (width - 1)`: adding first would overflow in the top octave.
        (lo, lo + (width - 1))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records `n` occurrences of the same sample value.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Computes the summary (count, mean, min/max, p50/p95/p99).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSummary::default();
        }
        let sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        let pct = |q: f64| -> u64 {
            // Rank of the q-quantile among `total` sorted samples.
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (b, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    let (lo, hi) = Self::bucket_range(b);
                    // Bucket midpoint, clamped to the observed extremes so a
                    // single-sample histogram reports the exact value.
                    return lo.midpoint(hi).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            mean: sum as f64 / count as f64,
            min,
            max,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
///
/// Percentiles are bucket midpoints, so they carry the histogram's bounded
/// 12.5 % relative quantization error; `min`, `max`, `sum`, and `count` are
/// exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Arithmetic mean (`sum / count`; 0 when empty).
    pub mean: f64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, SUB_BUCKETS);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, SUB_BUCKETS - 1);
        // With 8 exact samples 0..=7 the median rank is 4, i.e. the value 3.
        assert_eq!(s.p50, 3);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(Histogram::new().summary(), HistogramSummary::default());
    }

    #[test]
    fn percentiles_bounded_relative_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        for (got, want) in [(s.p50, 5_000.0), (s.p95, 9_500.0), (s.p99, 9_900.0)] {
            let rel = (got as f64 - want).abs() / want;
            assert!(rel < 0.13, "got {got} want {want} rel {rel}");
        }
    }

    #[test]
    fn single_sample_reports_exactly() {
        let h = Histogram::new();
        h.record(123_456);
        let s = h.summary();
        assert_eq!(s.min, 123_456);
        assert_eq!(s.max, 123_456);
        assert_eq!(s.p50, 123_456);
        assert_eq!(s.p99, 123_456);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(77, 5);
        for _ in 0..5 {
            b.record(77);
        }
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn bucket_ranges_tile_the_u64_line() {
        // Every bucket's range must start right after the previous one ends,
        // and bucket_of must map each boundary into its own bucket.
        let mut expect_lo = 0u64;
        for b in 0..NUM_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(b);
            assert_eq!(lo, expect_lo, "bucket {b}");
            assert!(hi >= lo);
            assert_eq!(Histogram::bucket_of(lo), b, "lo of bucket {b}");
            assert_eq!(Histogram::bucket_of(hi), b, "hi of bucket {b}");
            if hi == u64::MAX {
                break;
            }
            expect_lo = hi + 1;
        }
    }

    #[test]
    fn max_value_has_a_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.summary().max, u64::MAX);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn percentile_order_and_bounds(values in proptest::collection::vec(0u64..1u64 << 48, 1..300)) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.summary();
            prop_assert_eq!(s.count, values.len() as u64);
            prop_assert_eq!(s.sum, values.iter().sum::<u64>());
            prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99);
            prop_assert!(s.p99 <= s.max);
        }
    }
}
