//! Streaming query serving over the persistent ring executor.
//!
//! `search_pipelined` is strictly one-batch-at-a-time: the caller blocks
//! while a single batch circulates and devices idle whenever their stage
//! finishes early. [`Server`] closes that gap — the throughput mode the
//! paper's pipelining exists for:
//!
//! - **Micro-batching admission queue.** Queries from any number of
//!   submitter threads accumulate in a bounded queue; an admission thread
//!   flushes a batch when [`ServeConfig::max_batch`] queries are pending or
//!   the oldest query has waited [`ServeConfig::flush_interval_ms`].
//! - **Backpressure.** [`Server::try_submit`] never blocks: when
//!   [`ServeConfig::queue_capacity`] queries are already pending it returns
//!   [`SubmitError::QueueFull`] and the caller decides (retry, shed, …).
//! - **Overlapped execution.** Flushed batches go straight to a
//!   [`RingExecutor`], so stage `s` of batch `b` on device `d` runs while
//!   device `d-1` executes stage `s` of batch `b+1` — the inter-batch
//!   pipelining of paper §3.1, measurable via
//!   [`PipelineTimeline::overlapped_makespan_s`].
//! - **Deadlines.** With [`ServeConfig::deadline_ms`] set, a batch that
//!   exceeds its budget stops searching: remaining stages become no-op hops
//!   and every query returns the hits accumulated so far, flagged
//!   [`QueryResult::timed_out`].
//! - **Clean shutdown.** [`Server::shutdown`] (or drop) flushes the
//!   admission queue, drains every in-flight batch, and joins all threads —
//!   every accepted ticket is answered.
//!
//! **Determinism contract:** with no deadline configured, a batch formed
//! from queries `q0..qn` (in submission order) produces bit-identical hits
//! and stats to `search_pipelined` on the same rows — chunking, stage
//! execution, and reduction are the same code. Deadlines trade that
//! determinism for bounded latency: whether a stage is skipped depends on
//! wall-clock time.
//!
//! **Snapshot pinning.** Every batch resolves its index exactly once, at
//! flush time: a [`Server::new`] server pins the same `Arc` for every batch
//! (bit-identical to serving the index directly), while a
//! [`Server::new_dynamic`] server pins the latest
//! [`IndexSnapshot`](crate::snapshot::IndexSnapshot) from a
//! [`ConcurrentIndex`] — concurrent inserts/deletes/rebuilds never touch a
//! batch mid-flight, and the batch's staleness is observable as the
//! `serve.snapshot_lag` histogram (published versions behind at
//! completion) next to the `serve.merge_backlog` gauge.

use crate::index::{PathWeaverIndex, SearchOutput};
use crate::pipeline::{make_chunks, reduce_chunks, ChunkState};
use crate::snapshot::ConcurrentIndex;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use pathweaver_gpusim::{BatchHandle, CostModel, PipelineTimeline, RingExecutor, RingMessage};
use pathweaver_obs::{trace, Stopwatch};
use pathweaver_search::{BatchStats, SearchParams};
use pathweaver_vector::VectorSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Serving-layer configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush the admission queue as soon as this many queries are pending.
    pub max_batch: usize,
    /// Flush a partial batch once its oldest query has waited this long.
    pub flush_interval_ms: f64,
    /// Maximum pending queries before [`Server::try_submit`] sheds load.
    pub queue_capacity: usize,
    /// Per-batch execution budget, measured from batch formation; `None`
    /// serves every batch to completion (the deterministic mode).
    pub deadline_ms: Option<f64>,
    /// Search parameters applied to every batch.
    pub params: SearchParams,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            flush_interval_ms: 2.0,
            queue_capacity: 1024,
            deadline_ms: None,
            params: SearchParams::default(),
        }
    }
}

impl ServeConfig {
    /// Validates internal consistency.
    ///
    /// `queue_capacity` may be smaller than `max_batch` — batches then never
    /// fill to `max_batch` and flush on the interval instead, which is a
    /// legitimate (if unusual) low-memory configuration.
    ///
    /// # Panics
    ///
    /// Panics when `max_batch == 0`, `queue_capacity == 0`, or
    /// `flush_interval_ms`/`deadline_ms` are not positive.
    pub fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
        assert!(self.flush_interval_ms > 0.0, "flush_interval_ms must be positive");
        if let Some(d) = self.deadline_ms {
            assert!(d > 0.0, "deadline_ms must be positive");
        }
        self.params.validate();
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at [`ServeConfig::queue_capacity`].
    QueueFull,
    /// [`Server::shutdown`] has begun; no new queries are accepted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull => f.write_str("admission queue full"),
            Self::ShuttingDown => f.write_str("server shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Serving-layer failure surfaced by [`Server::new`], [`QueryTicket::wait`]
/// and [`serve_once`] — the typed form of what used to be a panic, so hot
/// callers (the cluster node front end) can turn it into an error frame.
#[derive(Debug)]
pub enum ServeError {
    /// An OS-level thread spawn failed while starting the server.
    Spawn(std::io::Error),
    /// The server tore down without delivering an accepted query. Shutdown
    /// drains every accepted ticket, so this indicates a server-thread
    /// panic; the query's result is unrecoverable.
    Disconnected,
    /// A submission was rejected.
    Submit(SubmitError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Spawn(e) => write!(f, "cannot spawn serving thread: {e}"),
            Self::Disconnected => f.write_str("server tore down without delivering"),
            Self::Submit(e) => write!(f, "submission rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Spawn(e) => Some(e),
            Self::Submit(e) => Some(e),
            Self::Disconnected => None,
        }
    }
}

impl From<SubmitError> for ServeError {
    fn from(e: SubmitError) -> Self {
        Self::Submit(e)
    }
}

/// Result of one served query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// `(squared distance, global id)` hits, ascending, length ≤ k. Partial
    /// (possibly empty) when [`timed_out`](Self::timed_out) is set.
    pub hits: Vec<(f32, u32)>,
    /// Statistics of the whole micro-batch this query rode in.
    pub stats: BatchStats,
    /// Whether the batch hit its deadline and stopped searching early.
    pub timed_out: bool,
    /// Executor batch id (submission sequence number).
    pub batch_id: u64,
}

/// A claim ticket for one accepted query.
pub struct QueryTicket {
    rx: Receiver<QueryResult>,
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTicket").finish_non_exhaustive()
    }
}

impl QueryTicket {
    /// Blocks until the query's batch completes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Disconnected`] when the server was torn down without
    /// delivering — shutdown drains every accepted query, so this indicates
    /// a server-thread panic.
    pub fn wait(self) -> Result<QueryResult, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// Returns the result if the batch has already completed.
    pub fn try_wait(&self) -> Option<QueryResult> {
        self.rx.try_recv()
    }
}

/// Where a server's batches get their index view from.
#[derive(Debug, Clone)]
pub enum ServeSource {
    /// A frozen index: every batch reads the same `Arc`. Identical to the
    /// historical single-index server.
    Static(Arc<PathWeaverIndex>),
    /// A snapshot-isolated dynamic index: each batch pins the snapshot
    /// published at its flush instant and keeps it for the whole batch.
    Dynamic(Arc<ConcurrentIndex>),
}

impl ServeSource {
    /// Resolves the index view one batch will use, plus its snapshot
    /// version (0 for static sources).
    fn pin_batch(&self) -> (Arc<PathWeaverIndex>, u64) {
        match self {
            Self::Static(index) => (Arc::clone(index), 0),
            Self::Dynamic(index) => {
                let snap = index.pin();
                (Arc::clone(snap.index()), snap.version())
            }
        }
    }

    /// How many snapshot publications a batch pinned at `pinned` is behind;
    /// `None` for static sources (nothing can lag).
    fn snapshot_lag(&self, pinned: u64) -> Option<u64> {
        match self {
            Self::Static(_) => None,
            Self::Dynamic(index) => Some(index.latest_version().saturating_sub(pinned)),
        }
    }

    /// Mutations the dynamic source has not folded yet; `None` for static.
    fn merge_backlog(&self) -> Option<u64> {
        match self {
            Self::Static(_) => None,
            Self::Dynamic(index) => Some(index.merge_backlog()),
        }
    }
}

/// Shared per-batch context: the formed queries, the pinned index view,
/// and deadline state.
struct BatchCtx {
    queries: VectorSet,
    params: SearchParams,
    /// The index view every stage of this batch reads — pinned at flush,
    /// immutable for the batch's lifetime.
    index: Arc<PathWeaverIndex>,
    /// Snapshot version of `index` (0 on static servers).
    pinned_version: u64,
    trace_batch: u64,
    /// `(started at flush, budget in ms)`.
    deadline: Option<(Stopwatch, f64)>,
    expired: AtomicBool,
}

/// One chunk of a served batch riding the ring.
struct ServeChunk {
    state: ChunkState,
    ctx: Arc<BatchCtx>,
}

/// One pending query in the admission queue.
struct Pending {
    query: Vec<f32>,
    tx: Sender<QueryResult>,
    enqueued: Stopwatch,
}

/// Admission queue state behind the server mutex.
struct AdmissionState {
    pending: VecDeque<Pending>,
    shutting_down: bool,
}

struct ServerInner {
    config: ServeConfig,
    dim: usize,
    /// Index provider; batches pin their view from it at flush time.
    source: ServeSource,
    state: Mutex<AdmissionState>,
    /// Wakes the admission thread on arrivals and shutdown.
    wakeup: Condvar,
}

/// A finished-forming batch travelling from admission to completion.
struct BatchJob {
    handle: BatchHandle<ServeChunk>,
    ctx: Arc<BatchCtx>,
    /// Result channel and enqueue stopwatch per query, in batch row order.
    tickets: Vec<(Sender<QueryResult>, Stopwatch)>,
}

/// Streaming query server over a persistent device ring.
///
/// ```no_run
/// use pathweaver_core::prelude::*;
/// use pathweaver_core::serve::{ServeConfig, Server};
/// use std::sync::Arc;
///
/// # let dataset = pathweaver_datasets::DatasetProfile::deep10m_like()
/// #     .workload(pathweaver_datasets::Scale::Test, 1, 10, 1).base;
/// let index = Arc::new(PathWeaverIndex::build(&dataset, &PathWeaverConfig::test_scale(2)).unwrap());
/// let server = Server::new(Arc::clone(&index), ServeConfig::default()).unwrap();
/// let ticket = server.try_submit(dataset.row(0)).unwrap();
/// let result = ticket.wait().unwrap();
/// assert!(!result.hits.is_empty());
/// server.shutdown();
/// ```
pub struct Server {
    inner: Arc<ServerInner>,
    timeline: Arc<Mutex<PipelineTimeline>>,
    admission: Option<std::thread::JoinHandle<()>>,
    completion: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the serving threads (admission, completion, and one device
    /// thread per shard).
    ///
    /// # Errors
    ///
    /// [`ServeError::Spawn`] when the OS refuses a serving thread; the ring
    /// and any thread already started are torn down before returning.
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`ServeConfig::validate`].
    pub fn new(index: Arc<PathWeaverIndex>, config: ServeConfig) -> Result<Self, ServeError> {
        Self::with_source(ServeSource::Static(index), config)
    }

    /// Starts a server over a snapshot-isolated dynamic index: each batch
    /// pins the latest published snapshot at flush time, so streaming
    /// inserts/deletes/rebuilds never block or tear an in-flight batch.
    /// With zero in-flight mutations this is bit-identical to
    /// [`Server::new`] on the wrapped index.
    ///
    /// # Errors
    ///
    /// As [`Server::new`].
    pub fn new_dynamic(
        index: Arc<ConcurrentIndex>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::with_source(ServeSource::Dynamic(index), config)
    }

    /// Starts the serving threads over an explicit [`ServeSource`].
    ///
    /// # Errors
    ///
    /// As [`Server::new`].
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`ServeConfig::validate`].
    pub fn with_source(source: ServeSource, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate();
        // The device count, cost model, and dimensionality are fixed for
        // the server's lifetime: snapshots never change shard count or dim.
        let (initial, _) = source.pin_batch();
        let n = initial.num_devices();
        let cost = CostModel::new(initial.config.device);
        let executor =
            RingExecutor::new(n, n, move |device, stage, msg: &mut RingMessage<ServeChunk>| {
                let ServeChunk { state, ctx } = &mut msg.payload;
                if let Some((started, budget_ms)) = &ctx.deadline {
                    // Relaxed: the flag is a one-way latch that only skips
                    // optional work; a stale read delays the skip by at most
                    // one stage and no data is published through it.
                    if ctx.expired.load(Ordering::Relaxed) || started.elapsed_millis() > *budget_ms
                    {
                        ctx.expired.store(true, Ordering::Relaxed);
                        return None;
                    }
                }
                // The batch's pinned view, not a server-global index: every
                // stage of this batch reads the same snapshot.
                ctx.index.run_stage(
                    device,
                    stage,
                    msg.origin_chunk,
                    state,
                    &ctx.queries,
                    &ctx.params,
                    &cost,
                    ctx.trace_batch,
                )
            });

        let inner = Arc::new(ServerInner {
            config,
            dim: initial.dim(),
            source,
            state: Mutex::new(AdmissionState { pending: VecDeque::new(), shutting_down: false }),
            wakeup: Condvar::new(),
        });
        let timeline = Arc::new(Mutex::new(PipelineTimeline::new()));

        let (job_tx, job_rx) = channel::unbounded::<BatchJob>();
        let admission = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("pathweaver-admission".into())
                .spawn(move || admission_loop(&inner, &executor, &job_tx))
                .map_err(ServeError::Spawn)?
        };
        let completion = {
            let timeline = Arc::clone(&timeline);
            let lag_source = inner.source.clone();
            let spawned = std::thread::Builder::new()
                .name("pathweaver-completion".into())
                .spawn(move || completion_loop(&job_rx, &timeline, &lag_source));
            match spawned {
                Ok(h) => h,
                Err(e) => {
                    // Unwind the admission thread (which owns the ring) so a
                    // failed start leaks nothing.
                    inner.state.lock().shutting_down = true;
                    inner.wakeup.notify_all();
                    let _ = admission.join();
                    return Err(ServeError::Spawn(e));
                }
            }
        };
        Ok(Self { inner, timeline, admission: Some(admission), completion: Some(completion) })
    }

    /// Enqueues one query without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::ShuttingDown`]
    /// after [`shutdown`](Self::shutdown) began.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the index dimensionality.
    pub fn try_submit(&self, query: &[f32]) -> Result<QueryTicket, SubmitError> {
        assert_eq!(query.len(), self.inner.dim, "dimensionality mismatch");
        let (tx, rx) = channel::unbounded();
        let depth = {
            let mut st = self.inner.state.lock();
            if st.shutting_down {
                return Err(SubmitError::ShuttingDown);
            }
            if st.pending.len() >= self.inner.config.queue_capacity {
                drop(st);
                if pathweaver_obs::enabled() {
                    pathweaver_obs::registry().counter("serve.rejected").inc();
                }
                return Err(SubmitError::QueueFull);
            }
            st.pending.push_back(Pending {
                query: query.to_vec(),
                tx,
                enqueued: Stopwatch::start(),
            });
            st.pending.len()
        };
        self.inner.wakeup.notify_all();
        if pathweaver_obs::enabled() {
            let r = pathweaver_obs::registry();
            r.counter("serve.submitted").inc();
            r.gauge("serve.queue_depth").set(depth as f64);
        }
        Ok(QueryTicket { rx })
    }

    /// Submits every row of `queries` in order, returning one ticket per
    /// row. The cluster layer's per-node front end serves each RPC through
    /// this path (on a server sized to the request, so the rows form one
    /// exclusive micro-batch — the determinism contract above).
    ///
    /// # Errors
    ///
    /// Fails like [`try_submit`](Self::try_submit); on failure the already-
    /// accepted prefix is still answered (tickets are dropped, results
    /// discarded).
    ///
    /// # Panics
    ///
    /// Panics if the batch dimensionality differs from the index's.
    pub fn submit_batch(&self, queries: &VectorSet) -> Result<Vec<QueryTicket>, SubmitError> {
        (0..queries.len()).map(|r| self.try_submit(queries.row(r))).collect()
    }

    /// Number of queries currently pending admission.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().pending.len()
    }

    /// Snapshot of the merged timeline across every completed batch;
    /// [`PipelineTimeline::overlapped_makespan_s`] on it is the stream's
    /// simulated wall time.
    pub fn timeline(&self) -> PipelineTimeline {
        self.timeline.lock().clone()
    }

    /// Stops accepting queries, flushes the admission queue, drains every
    /// in-flight batch, and joins the serving threads. Every ticket accepted
    /// before the call is answered.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.inner.state.lock().shutting_down = true;
        self.inner.wakeup.notify_all();
        if let Some(h) = self.admission.take() {
            let _ = h.join();
        }
        if let Some(h) = self.completion.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// Admission loop: wait for a flush condition, form a batch, submit it.
/// Owns the executor — dropping out of this function (after the final flush)
/// drains the ring; dropping `job_tx` then lets the completion loop finish.
fn admission_loop(
    inner: &ServerInner,
    executor: &RingExecutor<ServeChunk>,
    job_tx: &Sender<BatchJob>,
) {
    loop {
        let batch: Vec<Pending> = {
            let mut st = inner.state.lock();
            loop {
                if st.shutting_down || st.pending.len() >= inner.config.max_batch {
                    break;
                }
                match st.pending.front() {
                    None => inner.wakeup.wait(&mut st),
                    Some(oldest) => {
                        let age_ms = oldest.enqueued.elapsed_millis();
                        if age_ms >= inner.config.flush_interval_ms {
                            break;
                        }
                        let remain_ms = inner.config.flush_interval_ms - age_ms;
                        // Cheap truncation: the wait re-checks age on wake.
                        let micros = (remain_ms * 1000.0).max(50.0) as u64;
                        let _ = inner
                            .wakeup
                            .wait_for(&mut st, std::time::Duration::from_micros(micros));
                    }
                }
            }
            if st.pending.is_empty() {
                debug_assert!(st.shutting_down, "flush without work or shutdown");
                return;
            }
            let take = st.pending.len().min(inner.config.max_batch);
            let batch: Vec<Pending> = st.pending.drain(..take).collect();
            if pathweaver_obs::enabled() {
                pathweaver_obs::registry().gauge("serve.queue_depth").set(st.pending.len() as f64);
            }
            batch
        };

        // Form the batch outside the lock: submitters keep enqueueing while
        // the VectorSet is assembled and the chunks hit the ring.
        let mut queries = VectorSet::empty(inner.dim);
        let mut tickets = Vec::with_capacity(batch.len());
        for p in batch {
            queries.push(&p.query);
            tickets.push((p.tx, p.enqueued));
        }
        if pathweaver_obs::enabled() {
            let r = pathweaver_obs::registry();
            r.counter("serve.batches").inc();
            r.histogram("serve.batch_size").record(tickets.len() as u64);
            let q_hist = r.histogram("serve.queue_wall_ns");
            for (_, enq) in &tickets {
                q_hist.record(enq.elapsed_nanos());
            }
        }
        let trace_batch =
            if pathweaver_obs::tracing_enabled() { trace::next_batch_id() } else { 0 };
        // Pin the batch's index view exactly once, at flush: every stage
        // and the final reduction read this snapshot, whatever mutations
        // land while the batch is in flight.
        let (index, pinned_version) = inner.source.pin_batch();
        let ctx = Arc::new(BatchCtx {
            deadline: inner.config.deadline_ms.map(|ms| (Stopwatch::start(), ms)),
            queries,
            params: inner.config.params,
            index,
            pinned_version,
            trace_batch,
            expired: AtomicBool::new(false),
        });
        let chunks: Vec<(usize, ServeChunk)> =
            make_chunks(ctx.queries.len(), executor.num_devices())
                .into_iter()
                .map(|(origin, state)| (origin, ServeChunk { state, ctx: Arc::clone(&ctx) }))
                .collect();
        let handle = executor.submit(chunks);
        if job_tx.send(BatchJob { handle, ctx, tickets }).is_err() {
            // Completion thread died; nothing left to deliver to.
            return;
        }
    }
}

/// Completion loop: wait for each batch in submission order, reduce it, and
/// answer its tickets. Runs until the admission loop drops its job sender.
fn completion_loop(
    job_rx: &Receiver<BatchJob>,
    timeline: &Mutex<PipelineTimeline>,
    source: &ServeSource,
) {
    while let Ok(job) = job_rx.recv() {
        let batch_id = job.handle.batch_id();
        let (finished, batch_timeline) = job.handle.wait();
        timeline.lock().extend(&batch_timeline);
        let messages: Vec<RingMessage<ChunkState>> = finished
            .into_iter()
            .map(|m| RingMessage { origin_chunk: m.origin_chunk, payload: m.payload.state })
            .collect();
        let (hits_by_row, stats) = reduce_chunks(messages, job.ctx.queries.len(), job.ctx.params.k);
        // Relaxed: read-only view of the latch after the batch finished; the
        // channel recv above already ordered everything that matters.
        let timed_out = job.ctx.expired.load(Ordering::Relaxed);
        if pathweaver_obs::enabled() {
            let r = pathweaver_obs::registry();
            r.counter("serve.completed").add(job.tickets.len() as u64);
            if timed_out {
                r.counter("serve.timeouts").inc();
            }
            // Dynamic sources: how stale this batch's pinned snapshot is by
            // the time it answers, and the mutation backlog the maintainer
            // has not folded yet.
            if let Some(lag) = source.snapshot_lag(job.ctx.pinned_version) {
                r.histogram("serve.snapshot_lag").record(lag);
            }
            if let Some(backlog) = source.merge_backlog() {
                r.gauge("serve.merge_backlog").set(backlog as f64);
            }
        }
        for (hits, (tx, enqueued)) in hits_by_row.into_iter().zip(job.tickets) {
            if pathweaver_obs::enabled() {
                pathweaver_obs::registry()
                    .histogram("serve.e2e_wall_ns")
                    .record(enqueued.elapsed_nanos());
            }
            // A dropped ticket is a caller that stopped caring; ignore.
            let _ = tx.send(QueryResult { hits, stats, timed_out, batch_id });
        }
    }
}

/// One-shot convenience: serves `queries` as a single batch through a
/// temporary [`Server`] and reassembles a [`SearchOutput`] — mainly for
/// comparing the streamed path against `search_pipelined` in tests.
///
/// # Errors
///
/// [`ServeError`] when the server cannot start or dies mid-batch; the
/// cluster node front end maps it to an error frame instead of unwinding.
///
/// # Panics
///
/// Panics on an empty or wrongly-sized batch.
pub fn serve_once(
    index: &Arc<PathWeaverIndex>,
    queries: &VectorSet,
    params: &SearchParams,
) -> Result<SearchOutput, ServeError> {
    assert!(!queries.is_empty(), "empty query batch");
    let config = ServeConfig {
        max_batch: queries.len(),
        queue_capacity: queries.len(),
        params: *params,
        ..ServeConfig::default()
    };
    let server = Server::new(Arc::clone(index), config)?;
    // The server is sized to the batch, so submission cannot shed load; a
    // rejection would still surface as Submit, never a panic.
    let tickets = server.submit_batch(queries)?;
    let results: Vec<QueryResult> =
        tickets.into_iter().map(QueryTicket::wait).collect::<Result<_, _>>()?;
    let timeline = server.timeline();
    server.shutdown();
    let stats = results[0].stats;
    let hits = results.into_iter().map(|r| r.hits).collect();
    Ok(SearchOutput::from_parts(hits, stats, timeline, queries.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathWeaverConfig;
    use pathweaver_datasets::{DatasetProfile, Scale};

    fn built(devices: usize) -> (pathweaver_datasets::Workload, Arc<PathWeaverIndex>) {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 17);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(devices)).unwrap();
        (w, Arc::new(idx))
    }

    #[test]
    fn single_query_roundtrip() {
        let (w, idx) = built(2);
        let server = Server::new(Arc::clone(&idx), ServeConfig::default()).unwrap();
        let t = server.try_submit(w.queries.row(0)).unwrap();
        let res = t.wait().unwrap();
        assert!(!res.hits.is_empty());
        assert!(!res.timed_out);
        server.shutdown();
    }

    #[test]
    fn queue_full_sheds_load() {
        let (w, idx) = built(2);
        // Capacity below max_batch with an hour-long flush window: the
        // admission thread cannot flush (pending never reaches max_batch and
        // the interval is far away), so the third submission must bounce —
        // deterministically.
        let config = ServeConfig {
            max_batch: 16,
            queue_capacity: 2,
            flush_interval_ms: 3_600_000.0,
            ..ServeConfig::default()
        };
        let server = Server::new(Arc::clone(&idx), config).unwrap();
        let t0 = server.try_submit(w.queries.row(0)).unwrap();
        let t1 = server.try_submit(w.queries.row(1)).unwrap();
        assert_eq!(server.queue_depth(), 2);
        assert_eq!(server.try_submit(w.queries.row(2)).unwrap_err(), SubmitError::QueueFull);
        server.shutdown(); // Must answer everything accepted.
        assert!(!t0.wait().unwrap().hits.is_empty());
        assert!(!t1.wait().unwrap().hits.is_empty());
    }

    #[test]
    fn shutdown_rejects_new_queries() {
        let (w, idx) = built(2);
        let server = Server::new(Arc::clone(&idx), ServeConfig::default()).unwrap();
        // Flip the flag the way a concurrent shutdown's first step would.
        server.inner.state.lock().shutting_down = true;
        assert_eq!(server.try_submit(w.queries.row(0)).unwrap_err(), SubmitError::ShuttingDown);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_queries() {
        let (w, idx) = built(2);
        let config = ServeConfig {
            max_batch: 64,
            flush_interval_ms: 3_600_000.0, // Never flush on time alone.
            ..ServeConfig::default()
        };
        let server = Server::new(Arc::clone(&idx), config).unwrap();
        let tickets: Vec<QueryTicket> =
            (0..w.queries.len()).map(|r| server.try_submit(w.queries.row(r)).unwrap()).collect();
        server.shutdown(); // Must flush + drain, not strand.
        for t in tickets {
            assert!(!t.wait().unwrap().hits.is_empty());
        }
    }

    #[test]
    fn deadline_yields_partial_results() {
        let (w, idx) = built(2);
        let config = ServeConfig {
            max_batch: 1,
            deadline_ms: Some(0.0000001), // Expires before stage 0 runs.
            ..ServeConfig::default()
        };
        // validate() demands positive deadline; tiny but positive.
        let server = Server::new(Arc::clone(&idx), config).unwrap();
        let res = server.try_submit(w.queries.row(0)).unwrap().wait().unwrap();
        assert!(res.timed_out, "deadline should have fired");
        assert!(res.hits.is_empty(), "no stage ran, no hits");
        server.shutdown();
    }

    #[test]
    fn micro_batching_coalesces_queries() {
        let (w, idx) = built(2);
        let config = ServeConfig {
            max_batch: w.queries.len(),
            flush_interval_ms: 3_600_000.0,
            ..ServeConfig::default()
        };
        let server = Server::new(Arc::clone(&idx), config).unwrap();
        let tickets: Vec<QueryTicket> =
            (0..w.queries.len()).map(|r| server.try_submit(w.queries.row(r)).unwrap()).collect();
        let results: Vec<QueryResult> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        // One flush: every query rode the same executor batch.
        let ids: std::collections::BTreeSet<u64> = results.iter().map(|r| r.batch_id).collect();
        assert_eq!(ids.len(), 1, "expected one coalesced batch, got {ids:?}");
        server.shutdown();
    }
}
