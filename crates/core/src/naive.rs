//! The sharding baseline (paper §3.1.1, Fig 4b).
//!
//! Every device independently searches the *entire* query batch against its
//! own shard, then the host reduces the `N × k` candidates per query. No
//! inter-GPU communication happens, but every query pays a full from-scratch
//! search on every shard — the source of the poor scale efficiency the paper
//! diagnoses (Fig 3).

use crate::index::{PathWeaverIndex, SearchOutput};
use crate::reduce::reduce_hits;
use pathweaver_gpusim::{CostModel, PipelineTimeline, StageRecord};
use pathweaver_search::{BatchStats, EntryPolicy, SearchParams};
use pathweaver_vector::VectorSet;

impl PathWeaverIndex {
    /// Sharded (non-pipelined) search: the multi-GPU baseline mode.
    ///
    /// Ghost staging still applies when the index has ghost shards (this is
    /// the "Naïve PathWeaver" configuration of Fig 9b); build with
    /// [`crate::config::PathWeaverConfig::cagra_sharding`] for the plain
    /// CAGRA-w/-sharding baseline.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or of the wrong dimensionality.
    pub fn search_naive(&self, queries: &VectorSet, params: &SearchParams) -> SearchOutput {
        assert!(!queries.is_empty(), "empty query batch");
        assert_eq!(queries.dim(), self.dim(), "query dimensionality mismatch");
        let cost = CostModel::new(self.config.device);

        // All devices run concurrently on the full batch (stage 0 only);
        // the lock-step makespan is then the slowest device.
        let per_device = pathweaver_util::parallel_map(self.num_devices(), |d| {
            let shard = &self.shards[d];
            let out = shard.search_local(
                queries,
                params,
                &[EntryPolicy::Random { count: params.candidates }],
                shard.ghost.is_some(),
                &self.config,
            );
            let breakdown = cost.kernel_time(&out.counters, self.dim());
            (d, out, breakdown)
        });

        let mut timeline = PipelineTimeline::new();
        let mut stats = BatchStats::default();
        let mut per_query: Vec<Vec<(f32, u32)>> = vec![Vec::new(); queries.len()];
        for (d, out, breakdown) in per_device {
            timeline.push(StageRecord {
                device: d,
                stage: 0,
                origin_chunk: d,
                batch: 0,
                breakdown,
                counters: out.counters,
            });
            stats.merge(&out.stats);
            let shard = &self.shards[d];
            for (q, hits) in out.hits.iter().enumerate() {
                per_query[q]
                    .extend(hits.iter().map(|&(dist, local)| (dist, shard.to_global(local))));
            }
        }

        let hits: Vec<Vec<(f32, u32)>> =
            per_query.into_iter().map(|h| reduce_hits(&[h], params.k)).collect();
        SearchOutput::from_parts(hits, stats, timeline, queries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathWeaverConfig;
    use pathweaver_datasets::{recall_batch, DatasetProfile, Scale};

    fn workload() -> pathweaver_datasets::Workload {
        DatasetProfile::deep10m_like().workload(Scale::Test, 10, 10, 55)
    }

    #[test]
    fn naive_search_reaches_high_recall() {
        let w = workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::cagra_sharding(3)).unwrap();
        let out = idx.search_naive(&w.queries, &SearchParams::default());
        let recall = recall_batch(&w.ground_truth, &out.results, 10);
        assert!(recall > 0.8, "recall {recall}");
        assert_eq!(out.breakdown.comm_s, 0.0, "sharding must not communicate");
    }

    #[test]
    fn total_iterations_scale_with_shards() {
        // Fig 3b: per-query total iterations grow with the shard count
        // because every shard runs a full search.
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 16, 10, 77);
        let params = SearchParams::default();
        let idx1 = PathWeaverIndex::build(&w.base, &PathWeaverConfig::cagra_sharding(1)).unwrap();
        let idx4 = PathWeaverIndex::build(&w.base, &PathWeaverConfig::cagra_sharding(4)).unwrap();
        let it1 = idx1.search_naive(&w.queries, &params).stats.iterations;
        let it4 = idx4.search_naive(&w.queries, &params).stats.iterations;
        assert!(
            it4 as f64 > 2.0 * it1 as f64,
            "sharded total iterations should blow up: {it1} vs {it4}"
        );
    }

    #[test]
    fn pipelined_does_less_distance_work_than_naive() {
        // The headline claim: path extension removes redundant from-scratch
        // searches, so the total distance work shrinks. (Makespan at this
        // tiny test scale is launch-overhead-dominated — the bench harness
        // compares makespans at realistic batch sizes.)
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 20, 10, 99);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(3)).unwrap();
        let params = SearchParams::default();
        let naive = idx.search_naive(&w.queries, &params);
        let piped = idx.search_pipelined(&w.queries, &params);
        let naive_dists = naive.timeline.aggregate_counters().dist_calcs;
        let piped_dists = piped.timeline.aggregate_counters().dist_calcs;
        assert!(
            piped_dists < naive_dists,
            "pipelined {piped_dists} should beat naive {naive_dists}"
        );
    }

    #[test]
    fn naive_all_devices_record_stage_zero() {
        let w = workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::cagra_sharding(3)).unwrap();
        let out = idx.search_naive(&w.queries, &SearchParams::default());
        assert_eq!(out.timeline.num_stages(), 1);
        assert_eq!(out.timeline.records().len(), 3);
    }
}
