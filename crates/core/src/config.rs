//! Framework configuration.

use pathweaver_gpusim::{DeviceSpec, LinkSpec, RingTopology};
use pathweaver_graph::{CagraBuildParams, GhostParams, InterShardParams};
use serde::Serialize;

/// Full configuration of a PathWeaver deployment.
///
/// The three feature toggles (`ghost`, `build_dir_table`, and the pipelined
/// search mode chosen at query time) are the ablation axes of Fig 11: the
/// baseline is sharded CAGRA, `+PPE` switches to pipelined search, `+GS`
/// adds ghost shards, `+DGS` adds direction tables and enables filtering.
#[derive(Debug, Clone, Serialize)]
pub struct PathWeaverConfig {
    /// Number of simulated devices (= shards).
    pub num_devices: usize,
    /// Device model used for simulated timing.
    pub device: DeviceSpec,
    /// Ring interconnect between devices.
    pub topology: RingTopology,
    /// Per-shard proximity graph build parameters.
    pub graph: CagraBuildParams,
    /// Ghost staging (§3.2); `None` disables it.
    pub ghost: Option<GhostParams>,
    /// Inter-shard edge table build parameters (§3.1); tables are only
    /// built when `num_devices > 1`.
    pub intershard: InterShardParams,
    /// Whether to build direction tables (§3.3) so DGS can run at query
    /// time.
    pub build_dir_table: bool,
    /// Whether to build the int8 quantized tier so quantized traversal
    /// ([`pathweaver_search::SearchParams::quantized`]) can run at query
    /// time. Costs len × aligned-dim bytes of extra device memory.
    pub build_quantized: bool,
    /// Results forwarded per query per stage. The paper empirically sends 1
    /// on 2.5M-node shards; at this reproduction's laptop-scale shards the
    /// basin around a single `I(z)` is narrow relative to the beam, so the
    /// default forwards the top 4 — communication stays at 16 B/query,
    /// still ~10⁴× below the memory traffic (§6.4).
    pub forward_width: usize,
    /// Iteration cap of the ghost stage.
    pub ghost_iterations: usize,
    /// Random entries used in the ghost stage.
    pub ghost_entries: usize,
    /// Ghost-stage beam width.
    pub ghost_beam: usize,
    /// Number of ghost hits promoted to shard-graph entry seeds.
    pub ghost_seeds: usize,
    /// Random entries added alongside seeds (ghost hits or forwarded
    /// `I(z)`) as an escape hatch from local minima; small relative to the
    /// candidate buffer so the seeded fast path dominates.
    pub seed_extra_random: usize,
    /// Master seed.
    pub seed: u64,
}

impl PathWeaverConfig {
    /// Full-featured configuration for `num_devices` simulated A6000s.
    pub fn full(num_devices: usize) -> Self {
        Self {
            num_devices,
            device: DeviceSpec::rtx_a6000(),
            topology: if num_devices == 4 {
                RingTopology::paper_testbed()
            } else {
                RingTopology::uniform(num_devices, LinkSpec::nvlink_bridge())
            },
            graph: CagraBuildParams::with_degree(32),
            ghost: Some(GhostParams::default()),
            intershard: InterShardParams::default(),
            build_dir_table: true,
            build_quantized: true,
            forward_width: 4,
            ghost_iterations: 8,
            ghost_entries: 8,
            ghost_beam: 16,
            ghost_seeds: 2,
            seed_extra_random: 8,
            seed: 0x7a1b,
        }
    }

    /// The sharded-CAGRA ablation baseline: no ghost shards, no direction
    /// tables, no inter-shard tables beyond what sharding needs.
    pub fn cagra_sharding(num_devices: usize) -> Self {
        Self {
            ghost: None,
            build_dir_table: false,
            build_quantized: false,
            ..Self::full(num_devices)
        }
    }

    /// Small parameters for fast tests: tiny graphs and ghost shards.
    pub fn test_scale(num_devices: usize) -> Self {
        let mut c = Self::full(num_devices);
        c.graph = CagraBuildParams::with_degree(16);
        c.ghost = Some(GhostParams { sampling_ratio: 0.05, min_nodes: 8, degree: 6, seed: 7 });
        c.intershard = InterShardParams { beam: 16, entries: 8, seed: 3 };
        c.ghost_iterations = 4;
        c.ghost_entries = 4;
        c.ghost_beam = 8;
        c
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when device/topology sizes disagree or widths are zero.
    pub fn validate(&self) {
        assert!(self.num_devices > 0, "need at least one device");
        assert_eq!(
            self.topology.num_devices(),
            self.num_devices,
            "topology size must match device count"
        );
        assert!(self.forward_width > 0, "forward_width must be positive");
        assert!(self.graph.degree > 0, "graph degree must be positive");
        if self.ghost.is_some() {
            assert!(self.ghost_iterations > 0, "ghost_iterations must be positive");
            assert!(
                self.ghost_beam > 0 && self.ghost_seeds > 0,
                "ghost beam/seeds must be positive"
            );
        }
    }
}

/// Configuration of the multi-node cluster layer (`crate::cluster`).
///
/// Sizing (`partitions`, `replication`) and behaviour (timeouts, retry
/// budget, health cadence) of a deployment; the same value is handed to the
/// router and to the harness that boots nodes so both compute identical
/// placement from the same seed.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterConfig {
    /// Number of data partitions the collection is split into. Each
    /// partition is an independent [`PathWeaverIndex`](crate::index::PathWeaverIndex) over a slice of the
    /// dataset.
    pub partitions: usize,
    /// Replicas per partition (N-way). Clamped to the node count at
    /// placement time.
    pub replication: usize,
    /// Virtual nodes per physical node on the consistent-hash ring.
    pub vnodes: usize,
    /// Per-request receive budget; an unanswered request after this long is
    /// treated as a replica fault and retried on a sibling.
    pub request_timeout_ms: u64,
    /// Extra scatter rounds over the replica set after every replica of a
    /// partition failed once (covers "all replicas marked dead by a stale
    /// health view" — the second round re-probes them).
    pub retry_rounds: usize,
    /// Cadence of the background health prober; `None` runs health checks
    /// only on demand ([`crate::cluster::Router::check_health`]), the
    /// deterministic mode tests use.
    pub health_interval_ms: Option<u64>,
    /// Seed for ring placement.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            partitions: 1,
            replication: 1,
            vnodes: 16,
            request_timeout_ms: 2_000,
            retry_rounds: 1,
            health_interval_ms: None,
            seed: 0xc1a5,
        }
    }
}

impl ClusterConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when any sizing field is zero.
    pub fn validate(&self) {
        assert!(self.partitions > 0, "need at least one partition");
        assert!(self.replication > 0, "need at least one replica");
        assert!(self.vnodes > 0, "need at least one virtual node");
        assert!(self.request_timeout_ms > 0, "request_timeout_ms must be positive");
        if let Some(ms) = self.health_interval_ms {
            assert!(ms > 0, "health_interval_ms must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_default_validates() {
        ClusterConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replication_rejected() {
        ClusterConfig { replication: 0, ..ClusterConfig::default() }.validate();
    }

    #[test]
    fn presets_validate() {
        PathWeaverConfig::full(1).validate();
        PathWeaverConfig::full(4).validate();
        PathWeaverConfig::cagra_sharding(2).validate();
        PathWeaverConfig::test_scale(3).validate();
    }

    #[test]
    fn four_devices_use_paper_testbed() {
        let c = PathWeaverConfig::full(4);
        assert_eq!(c.topology.link(0).name, "nvlink-bridge");
        assert_eq!(c.topology.link(1).name, "pcie4-x16");
    }

    #[test]
    fn cagra_baseline_disables_pathweaver_structures() {
        let c = PathWeaverConfig::cagra_sharding(4);
        assert!(c.ghost.is_none());
        assert!(!c.build_dir_table);
        assert!(!c.build_quantized);
    }

    #[test]
    fn full_and_test_scales_build_quantized_tier() {
        assert!(PathWeaverConfig::full(2).build_quantized);
        assert!(PathWeaverConfig::test_scale(2).build_quantized);
    }

    #[test]
    #[should_panic(expected = "topology size")]
    fn mismatched_topology_rejected() {
        let mut c = PathWeaverConfig::full(2);
        c.num_devices = 3;
        c.validate();
    }
}
