//! Snapshot-isolated concurrent mutation (MVCC, the ROADMAP's "live index"
//! item).
//!
//! [`PathWeaverIndex`]'s mutations take `&mut self`, so under the serving
//! layer a single insert stalls every in-flight search. [`ConcurrentIndex`]
//! removes that coupling with a multi-version scheme built on the index's
//! shard-granular copy-on-write spine (`Vec<Arc<ShardIndex>>`):
//!
//! - **Readers pin, never lock.** [`ConcurrentIndex::pin`] hands out the
//!   current [`IndexSnapshot`] — an immutable point-in-time view (shards,
//!   tombstone bitmaps, assignment) behind an `Arc`. A search batch pins
//!   once and reads the same snapshot for its whole lifetime; no torn
//!   tombstone words, no half-published delta, ever.
//! - **Writers serialize and publish atomically.** Mutations run against a
//!   private writer master under a mutex. The first write after a publish
//!   copies only the shard it lands on (`Arc::make_mut`); untouched shards
//!   stay shared with every pinned snapshot. Publication swaps one Arc.
//! - **WAL-before-publish.** On a durable index the WAL append (fsynced)
//!   strictly precedes both the master mutation and the publish, so no
//!   reader can ever observe state the log does not already contain, and
//!   replay reconstructs the latest published snapshot.
//! - **Background maintenance off the hot path.**
//!   [`ConcurrentIndex::maintain`] finds heavily-deleted shards and clones
//!   their Arcs under a short lock, runs the expensive CAGRA rebuilds with
//!   the lock *released* (searches and mutations proceed), then re-locks,
//!   installs each rebuild whose shard is epoch-unchanged (a raced shard is
//!   simply retried next pass), folds the WAL into the segment, and
//!   publishes. [`ConcurrentIndex::spawn_maintainer`] runs this on a timer
//!   thread.

use crate::dynamic::{self, DeleteOutcome, DurableIndex, MaintainError};
use crate::index::{PathWeaverIndex, ShardIndex};
use crate::store::{self, wal, StoreError};
use parking_lot::{Condvar, Mutex, RwLock};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable point-in-time view of the index.
///
/// Everything a search touches — shard vectors, graphs, auxiliaries,
/// tombstone bitmaps, the assignment — is frozen at the version this
/// snapshot was published. Snapshots are cheap: the contained index shares
/// its shards (`Arc` per shard) with the writer master and with every other
/// snapshot that has not diverged from it.
#[derive(Debug, Clone)]
pub struct IndexSnapshot {
    index: Arc<PathWeaverIndex>,
    version: u64,
}

impl IndexSnapshot {
    /// The frozen index. Searching through this reference is always
    /// consistent, regardless of concurrent mutation.
    pub fn index(&self) -> &Arc<PathWeaverIndex> {
        &self.index
    }

    /// Monotonic publication version (0 = the initially loaded state).
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Errors surfaced by [`ConcurrentIndex`] mutations.
#[derive(Debug)]
pub enum ConcurrentError {
    /// WAL/segment IO failed (durable indices only).
    Store(StoreError),
    /// Invalid maintenance parameters.
    Maintain(MaintainError),
}

impl std::fmt::Display for ConcurrentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Store(e) => write!(f, "{e}"),
            Self::Maintain(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConcurrentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Store(e) => Some(e),
            Self::Maintain(e) => Some(e),
        }
    }
}

impl From<StoreError> for ConcurrentError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

impl From<MaintainError> for ConcurrentError {
    fn from(e: MaintainError) -> Self {
        Self::Maintain(e)
    }
}

/// The writer's private state: the master index every mutation applies to,
/// the durability hooks, and per-shard mutation epochs for the off-lock
/// maintainer's install-time validation.
struct WriterState {
    master: PathWeaverIndex,
    /// Present on durable indices; appended (fsynced) before every apply.
    wal: Option<wal::WalWriter>,
    /// Store directory for segment folds; `None` for in-memory indices.
    dir: Option<PathBuf>,
    /// Bumped whenever the corresponding shard's content changes. The
    /// maintainer records an epoch when it clones a shard for rebuild and
    /// discards the rebuild if the epoch moved before install.
    epochs: Vec<u64>,
}

/// A snapshot-isolated dynamic index: concurrent searches pin immutable
/// snapshots while mutations stream through a serialized writer, and a
/// background maintainer rebuilds heavily-deleted shards off the hot path.
///
/// ```
/// use pathweaver_core::prelude::*;
/// use pathweaver_core::snapshot::ConcurrentIndex;
///
/// let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, 7);
/// let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
/// let ci = ConcurrentIndex::new(idx);
///
/// let snap = ci.pin(); // a reader's frozen view
/// let id = ci.insert(w.base.row(0)).unwrap(); // does not disturb `snap`
/// assert_eq!(snap.index().num_vectors + 1, ci.pin().index().num_vectors);
/// assert!(ci.delete(id).unwrap());
/// ```
pub struct ConcurrentIndex {
    /// The latest published snapshot; readers clone the Arc under a read
    /// lock held for nanoseconds, writers replace it after mutating.
    published: RwLock<Arc<IndexSnapshot>>,
    writer: Mutex<WriterState>,
    /// Mutations applied since the last maintenance fold — the serving
    /// layer's `serve.merge_backlog` gauge.
    backlog: AtomicU64,
}

impl std::fmt::Debug for ConcurrentIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentIndex")
            .field("version", &self.latest_version())
            .finish_non_exhaustive()
    }
}

impl ConcurrentIndex {
    /// Wraps a built index for in-memory concurrent mutation (no WAL).
    pub fn new(index: PathWeaverIndex) -> Self {
        Self::from_parts(index, None, None)
    }

    /// Wraps a [`DurableIndex`], taking over its WAL: every mutation keeps
    /// the WAL-before-publish ordering, and maintenance folds the log into
    /// the segment exactly like [`DurableIndex::compact`].
    pub fn durable(index: DurableIndex) -> Self {
        let (index, wal, dir) = index.into_parts();
        Self::from_parts(index, Some(wal), Some(dir))
    }

    fn from_parts(
        index: PathWeaverIndex,
        wal: Option<wal::WalWriter>,
        dir: Option<PathBuf>,
    ) -> Self {
        let epochs = vec![0; index.num_devices()];
        let snapshot = Arc::new(IndexSnapshot { index: Arc::new(index.clone()), version: 0 });
        Self {
            published: RwLock::new(snapshot),
            writer: Mutex::new(WriterState { master: index, wal, dir, epochs }),
            backlog: AtomicU64::new(0),
        }
    }

    /// Pins the latest published snapshot. Never blocks on writers beyond
    /// the nanoseconds of the version-slot read lock; in particular it never
    /// waits for an in-flight insert, delete, or rebuild.
    pub fn pin(&self) -> Arc<IndexSnapshot> {
        Arc::clone(&self.published.read())
    }

    /// Version of the latest published snapshot.
    pub fn latest_version(&self) -> u64 {
        self.published.read().version
    }

    /// Mutations applied since the last maintenance fold.
    pub fn merge_backlog(&self) -> u64 {
        // Relaxed: monotonic stat, reset under the writer lock; nothing is
        // published through it.
        self.backlog.load(Ordering::Relaxed)
    }

    /// Inserts a vector and publishes the new snapshot, returning the new
    /// global id. Concurrent readers keep their pinned snapshots; the next
    /// [`pin`](Self::pin) sees the insert.
    ///
    /// # Errors
    ///
    /// [`ConcurrentError::Store`] when the WAL append fails (durable
    /// indices); nothing is applied or published on error.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from the index dimensionality.
    pub fn insert(&self, vector: &[f32]) -> Result<u32, ConcurrentError> {
        let mut st = self.writer.lock();
        let expected = st.master.num_vectors as u32;
        if let Some(w) = st.wal.as_mut() {
            // WAL-before-publish: the record is durable before any reader
            // can observe the state that contains it.
            w.append_insert(expected, vector).map_err(ConcurrentError::Store)?;
        }
        let target = st.master.assignment.smallest_shard();
        let id = st.master.insert(vector);
        debug_assert_eq!(id, expected);
        st.epochs[target] += 1;
        // Relaxed: monotonic stat, reset under the writer lock (held here);
        // nothing is published through it.
        self.backlog.fetch_add(1, Ordering::Relaxed);
        self.publish(&st);
        if pathweaver_obs::enabled() {
            let r = pathweaver_obs::registry();
            r.counter("dyn.delta_inserts").inc();
            r.gauge("serve.merge_backlog").set(self.merge_backlog() as f64);
        }
        Ok(id)
    }

    /// Logically deletes a global id; `Ok(true)` when it was live. See
    /// [`delete_outcome`](Self::delete_outcome) for the three-way result.
    ///
    /// # Errors
    ///
    /// [`ConcurrentError::Store`] when the WAL append fails.
    pub fn delete(&self, global_id: u32) -> Result<bool, ConcurrentError> {
        Ok(self.delete_outcome(global_id)?.applied())
    }

    /// Logically deletes a global id, reporting the [`DeleteOutcome`], and
    /// publishes the new snapshot when the tombstone landed. No-op outcomes
    /// (unknown id, double delete) publish nothing — the state did not
    /// change — but are still WAL-logged; replaying them is idempotent.
    ///
    /// # Errors
    ///
    /// [`ConcurrentError::Store`] when the WAL append fails.
    pub fn delete_outcome(&self, global_id: u32) -> Result<DeleteOutcome, ConcurrentError> {
        let mut st = self.writer.lock();
        if let Some(w) = st.wal.as_mut() {
            w.append_delete(global_id).map_err(ConcurrentError::Store)?;
        }
        let hit =
            st.master.shards.iter().position(|sh| sh.global_ids.binary_search(&global_id).is_ok());
        let outcome = st.master.delete_outcome(global_id);
        if outcome.applied() {
            if let Some(s) = hit {
                st.epochs[s] += 1;
            }
            // Relaxed: monotonic stat, reset under the writer lock (held
            // here); nothing is published through it.
            self.backlog.fetch_add(1, Ordering::Relaxed);
            self.publish(&st);
            if pathweaver_obs::enabled() {
                let r = pathweaver_obs::registry();
                r.counter("dyn.delta_deletes").inc();
                r.gauge("serve.merge_backlog").set(self.merge_backlog() as f64);
            }
        }
        Ok(outcome)
    }

    /// Rebuilds every shard whose tombstone fraction reaches
    /// `rebuild_threshold`, with the expensive graph builds running
    /// **outside** the writer lock: searches pin snapshots and mutations
    /// stream throughout. A shard mutated between the off-lock rebuild and
    /// the install is detected by its epoch and skipped (retried on the
    /// next pass). On durable indices an install folds the WAL into the
    /// segment in the same critical section — a rebuild changes shard
    /// sizes, and replaying the old log against the new shape would send
    /// replayed inserts to different shards. Returns the number of shards
    /// whose rebuilds were installed.
    ///
    /// # Errors
    ///
    /// [`ConcurrentError::Maintain`] for a threshold outside `(0, 1]`;
    /// [`ConcurrentError::Store`] when the durable fold fails (the in-memory
    /// install has already happened and is preserved).
    pub fn maintain(&self, rebuild_threshold: f64) -> Result<usize, ConcurrentError> {
        if !(rebuild_threshold > 0.0 && rebuild_threshold <= 1.0) {
            return Err(MaintainError::InvalidThreshold { got: rebuild_threshold }.into());
        }
        // Phase 1 — short lock: pick candidates, pin their inputs.
        let (candidates, config) = {
            let st = self.writer.lock();
            let picks: Vec<(usize, Arc<ShardIndex>, u64)> = st
                .master
                .shards
                .iter()
                .enumerate()
                .filter(|(_, sh)| dynamic::shard_needs_rebuild(sh, rebuild_threshold))
                .map(|(s, sh)| (s, Arc::clone(sh), st.epochs[s]))
                .collect();
            (picks, st.master.config.clone())
        };
        if candidates.is_empty() {
            return Ok(0);
        }

        // Phase 2 — no lock: the CAGRA rebuilds, the expensive part.
        let built: Vec<(usize, u64, ShardIndex)> = candidates
            .into_iter()
            .map(|(s, sh, epoch)| (s, epoch, dynamic::rebuild_shard(&sh, &config, s)))
            .collect();

        // Phase 3 — lock: validate epochs, install, fold, publish.
        let mut st = self.writer.lock();
        let mut installed = 0;
        for (s, epoch, shard) in built {
            if st.epochs[s] != epoch {
                // The shard changed under the rebuild; its replacement was
                // computed from stale survivors. Drop it — the tombstones
                // are still there, the next pass rebuilds from fresh state.
                continue;
            }
            st.master.install_rebuilt(s, Arc::new(shard));
            st.epochs[s] += 1;
            let n = st.master.shards.len();
            if n > 1 {
                // `install_rebuilt` also replaced the predecessor's
                // inter-shard table.
                st.epochs[(s + n - 1) % n] += 1;
            }
            installed += 1;
        }
        if installed > 0 {
            self.fold_locked(&mut st)?;
            // Relaxed: monotonic stat, reset under the writer lock (held
            // here); nothing is published through it.
            self.backlog.store(0, Ordering::Relaxed);
            self.publish(&st);
            if pathweaver_obs::enabled() {
                let r = pathweaver_obs::registry();
                r.counter("dyn.delta_folds").inc();
                r.counter("dyn.rebuilds").add(installed as u64);
                r.gauge("serve.merge_backlog").set(0.0);
            }
        }
        Ok(installed)
    }

    /// Starts a background thread that runs [`maintain`](Self::maintain)
    /// every `interval_ms` until the returned handle is stopped or dropped.
    /// Fold IO errors are counted (`dyn.maintain_errors`) and the loop keeps
    /// going — a transient disk error must not silently end maintenance.
    ///
    /// # Errors
    ///
    /// [`ConcurrentError::Maintain`] for a threshold outside `(0, 1]`
    /// (validated up front so the background loop cannot fail on it);
    /// [`ConcurrentError::Store`] when the OS refuses the thread.
    pub fn spawn_maintainer(
        self: &Arc<Self>,
        rebuild_threshold: f64,
        interval_ms: f64,
    ) -> Result<MaintainerHandle, ConcurrentError> {
        if !(rebuild_threshold > 0.0 && rebuild_threshold <= 1.0) {
            return Err(MaintainError::InvalidThreshold { got: rebuild_threshold }.into());
        }
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let index = Arc::clone(self);
        let thread_stop = Arc::clone(&stop);
        let wait = std::time::Duration::from_micros((interval_ms * 1000.0).max(100.0) as u64);
        let thread = std::thread::Builder::new()
            .name("pathweaver-maintainer".into())
            .spawn(move || loop {
                {
                    let (flag, cv) = &*thread_stop;
                    let mut stopped = flag.lock();
                    if !*stopped {
                        let _ = cv.wait_for(&mut stopped, wait);
                    }
                    if *stopped {
                        return;
                    }
                }
                if index.maintain(rebuild_threshold).is_err() && pathweaver_obs::enabled() {
                    pathweaver_obs::registry().counter("dyn.maintain_errors").inc();
                }
            })
            .map_err(|e| ConcurrentError::Store(StoreError::Io(e)))?;
        Ok(MaintainerHandle { stop, thread: Some(thread) })
    }

    fn publish(&self, st: &WriterState) {
        // The master's shards are Arcs, so this clone copies the spine and
        // the assignment, never vector/graph payloads.
        let index = Arc::new(st.master.clone());
        let mut slot = self.published.write();
        *slot = Arc::new(IndexSnapshot { index, version: slot.version + 1 });
    }

    /// Folds the WAL into a fresh segment (durable indices; no-op
    /// otherwise). Same crash contract as [`DurableIndex::compact`]: the
    /// segment is replaced before the WAL resets, and replay is idempotent
    /// across the window between the two.
    fn fold_locked(&self, st: &mut WriterState) -> Result<(), StoreError> {
        let Some(dir) = st.dir.clone() else {
            return Ok(());
        };
        store::segment::write_segment(&st.master, dir.join(store::SEGMENT_FILE))?;
        st.wal = Some(wal::WalWriter::create(dir.join(store::WAL_FILE), st.master.dim())?);
        Ok(())
    }
}

/// Owns the background maintainer thread; stopping (or dropping) the handle
/// wakes and joins it.
#[derive(Debug)]
pub struct MaintainerHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MaintainerHandle {
    /// Stops the maintainer and waits for the in-flight pass to finish.
    pub fn stop(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        {
            let (flag, cv) = &*self.stop;
            *flag.lock() = true;
            cv.notify_all();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MaintainerHandle {
    fn drop(&mut self) {
        self.teardown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathWeaverConfig;
    use pathweaver_datasets::{DatasetProfile, Scale};
    use pathweaver_search::SearchParams;

    fn built(seed: u64) -> (pathweaver_datasets::Workload, PathWeaverIndex) {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 6, 5, seed);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        (w, idx)
    }

    #[test]
    fn pinned_snapshot_is_isolated_from_mutation() {
        let (w, idx) = built(41);
        let before_live = idx.live_vectors();
        let ci = ConcurrentIndex::new(idx);
        let snap = ci.pin();
        assert_eq!(snap.version(), 0);

        let id = ci.insert(w.base.row(0)).unwrap();
        assert!(ci.delete(3).unwrap());

        // The pinned snapshot still sees the pre-mutation state.
        assert_eq!(snap.index().live_vectors(), before_live);
        assert_eq!(snap.index().num_vectors as u32, id);
        // A fresh pin sees both mutations and a bumped version.
        let now = ci.pin();
        assert!(now.version() > snap.version());
        assert_eq!(now.index().live_vectors(), before_live); // +1 insert −1 delete
        assert!(now.index().num_vectors as u32 > id);
    }

    #[test]
    fn snapshot_search_is_bitwise_stable_under_streaming_writes() {
        let (w, idx) = built(43);
        let params = SearchParams::default();
        let ci = ConcurrentIndex::new(idx);
        let snap = ci.pin();
        let baseline = snap.index().search_pipelined(&w.queries, &params);
        for i in 0..8 {
            let novel: Vec<f32> = w.base.row(i).iter().map(|x| x * 1.01).collect();
            ci.insert(&novel).unwrap();
            ci.delete(i as u32).unwrap();
            let again = snap.index().search_pipelined(&w.queries, &params);
            assert_eq!(baseline.results, again.results, "pinned snapshot drifted");
        }
    }

    #[test]
    fn zero_mutation_snapshot_matches_plain_index_bitwise() {
        let (w, idx) = built(47);
        let params = SearchParams::default();
        let direct = idx.search_pipelined(&w.queries, &params);
        let ci = ConcurrentIndex::new(idx);
        let snapped = ci.pin().index().search_pipelined(&w.queries, &params);
        assert_eq!(direct.results, snapped.results);
        for (a, b) in direct.hits.iter().zip(&snapped.hits) {
            assert_eq!(a.len(), b.len());
            for (&(da, ia), &(db, ib)) in a.iter().zip(b) {
                assert_eq!((da.to_bits(), ia), (db.to_bits(), ib));
            }
        }
    }

    #[test]
    fn maintain_off_lock_matches_inline_maintain() {
        let (w, idx) = built(53);
        let mut inline = idx.clone();
        let ci = ConcurrentIndex::new(idx);
        let victims: Vec<u32> = inline.shards[0]
            .global_ids
            .iter()
            .step_by(2)
            .copied()
            .take(inline.shards[0].len() * 2 / 5)
            .collect();
        for &g in &victims {
            assert!(inline.delete(g));
            assert!(ci.delete(g).unwrap());
        }
        assert_eq!(inline.maintain(0.3).unwrap(), 1);
        assert_eq!(ci.maintain(0.3).unwrap(), 1);
        let snap = ci.pin();
        let a = inline.search_pipelined(&w.queries, &SearchParams::default());
        let b = snap.index().search_pipelined(&w.queries, &SearchParams::default());
        assert_eq!(a.results, b.results, "off-lock maintain diverged from inline maintain");
    }

    #[test]
    fn maintain_rejects_bad_threshold_as_value() {
        let (_, idx) = built(59);
        let ci = ConcurrentIndex::new(idx);
        assert!(matches!(
            ci.maintain(0.0),
            Err(ConcurrentError::Maintain(MaintainError::InvalidThreshold { .. }))
        ));
        assert!(matches!(ci.maintain(1.5), Err(ConcurrentError::Maintain(_))));
        let arc = Arc::new(ci);
        assert!(arc.spawn_maintainer(-1.0, 5.0).is_err());
    }

    #[test]
    fn backlog_tracks_unfolded_mutations() {
        let (w, idx) = built(61);
        let ci = ConcurrentIndex::new(idx);
        assert_eq!(ci.merge_backlog(), 0);
        ci.insert(w.base.row(0)).unwrap();
        ci.delete(0).unwrap();
        assert_eq!(ci.merge_backlog(), 2);
        // Double delete is a no-op and does not inflate the backlog.
        assert_eq!(ci.delete_outcome(0).unwrap(), DeleteOutcome::AlreadyDeleted);
        assert_eq!(ci.merge_backlog(), 2);
    }

    #[test]
    fn delete_outcome_distinguishes_unknown_from_double_delete() {
        let (_, idx) = built(67);
        let ci = ConcurrentIndex::new(idx);
        assert_eq!(ci.delete_outcome(999_999).unwrap(), DeleteOutcome::Unknown);
        assert_eq!(ci.delete_outcome(5).unwrap(), DeleteOutcome::Applied);
        assert_eq!(ci.delete_outcome(5).unwrap(), DeleteOutcome::AlreadyDeleted);
    }

    #[test]
    fn background_maintainer_folds_heavy_deletions() {
        let (w, idx) = built(71);
        let shard0_ids: Vec<u32> = idx.shards[0].global_ids.clone();
        let ci = Arc::new(ConcurrentIndex::new(idx));
        let handle = ci.spawn_maintainer(0.3, 2.0).unwrap();
        for &g in shard0_ids.iter().step_by(2).take(shard0_ids.len() * 2 / 5) {
            assert!(ci.delete(g).unwrap());
        }
        // Wait (bounded) for the maintainer to fold the tombstones away.
        let mut folded = false;
        for _ in 0..500 {
            let snap = ci.pin();
            if snap.index().shards[0].deleted.count() == 0 {
                folded = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        handle.stop();
        assert!(folded, "maintainer never rebuilt the heavily-deleted shard");
        let out = ci.pin().index().search_pipelined(&w.queries, &SearchParams::default());
        assert_eq!(out.results.len(), w.queries.len());
    }
}
