//! Host-side top-k reduction (paper §3.1.2).
//!
//! After a sharded or pipelined search, every query holds one candidate list
//! per shard/stage (`N × k` candidates in global ids); the CPU merges them
//! into the final top-k.

/// Merges several `(squared distance, global id)` lists into the global
/// top-k, deduplicating ids (keeping each id's best distance).
pub fn reduce_hits(lists: &[Vec<(f32, u32)>], k: usize) -> Vec<(f32, u32)> {
    let as_u64: Vec<Vec<(f32, u64)>> =
        lists.iter().map(|l| l.iter().map(|&(d, id)| (d, u64::from(id))).collect()).collect();
    pathweaver_util::topk::merge_topk(&as_u64, k)
        .into_iter()
        .map(|(d, id)| (d, id as u32))
        .collect()
}

/// Reduces per-query accumulated hits for a whole batch.
///
/// `per_query[q]` is the concatenation of all candidate lists of query `q`.
pub fn reduce_batch(per_query: Vec<Vec<(f32, u32)>>, k: usize) -> Vec<Vec<(f32, u32)>> {
    per_query.into_iter().map(|hits| reduce_hits(&[hits], k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_across_shards() {
        let a = vec![(1.0, 10), (4.0, 11)];
        let b = vec![(2.0, 20), (3.0, 21)];
        let out = reduce_hits(&[a, b], 3);
        assert_eq!(out, vec![(1.0, 10), (2.0, 20), (3.0, 21)]);
    }

    #[test]
    fn dedups_keeping_best() {
        let a = vec![(5.0, 7)];
        let b = vec![(2.0, 7), (9.0, 8)];
        let out = reduce_hits(&[a, b], 2);
        assert_eq!(out, vec![(2.0, 7), (9.0, 8)]);
    }

    #[test]
    fn batch_reduces_each_query() {
        let q0 = vec![(3.0, 1), (1.0, 2), (2.0, 3)];
        let q1 = vec![(9.0, 4)];
        let out = reduce_batch(vec![q0, q1], 2);
        assert_eq!(out[0], vec![(1.0, 2), (2.0, 3)]);
        assert_eq!(out[1], vec![(9.0, 4)]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(reduce_hits(&[], 5).is_empty());
    }
}
