//! Host-side top-k reduction (paper §3.1.2).
//!
//! After a sharded or pipelined search, every query holds one candidate list
//! per shard/stage (`N × k` candidates in global ids); the CPU merges them
//! into the final top-k.

/// Merges several `(squared distance, global id)` lists into the global
/// top-k, deduplicating ids (keeping each id's best distance).
pub fn reduce_hits(lists: &[Vec<(f32, u32)>], k: usize) -> Vec<(f32, u32)> {
    let as_u64: Vec<Vec<(f32, u64)>> =
        lists.iter().map(|l| l.iter().map(|&(d, id)| (d, u64::from(id))).collect()).collect();
    pathweaver_util::topk::merge_topk(&as_u64, k)
        .into_iter()
        .map(|(d, id)| (d, id as u32))
        .collect()
}

/// Reduces per-query accumulated hits for a whole batch.
///
/// `per_query[q]` is the concatenation of all candidate lists of query `q`.
pub fn reduce_batch(per_query: Vec<Vec<(f32, u32)>>, k: usize) -> Vec<Vec<(f32, u32)>> {
    per_query.into_iter().map(|hits| reduce_hits(&[hits], k)).collect()
}

/// Merges per-partition batch results into cluster-wide top-k, per query.
///
/// `per_partition[p][q]` is partition `p`'s hit list for query `q` in
/// cluster-global ids; the output is the per-query merge across partitions
/// with [`reduce_hits`]'s dedup-keeping-best and deterministic tie-breaking.
/// Replicas answering for the same partition return identical lists, so a
/// duplicated partition entry (possible during failover races) merges to the
/// same result. With one partition this is the identity on already-reduced
/// lists — the cluster layer's bit-identity contract leans on that.
///
/// # Panics
///
/// Panics when partitions disagree about the query count.
pub fn reduce_partitions(per_partition: &[Vec<Vec<(f32, u32)>>], k: usize) -> Vec<Vec<(f32, u32)>> {
    let Some(first) = per_partition.first() else { return Vec::new() };
    let queries = first.len();
    for (p, lists) in per_partition.iter().enumerate() {
        assert_eq!(lists.len(), queries, "partition {p} answered a different query count");
    }
    (0..queries)
        .map(|q| {
            let lists: Vec<Vec<(f32, u32)>> = per_partition.iter().map(|p| p[q].clone()).collect();
            reduce_hits(&lists, k)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_across_shards() {
        let a = vec![(1.0, 10), (4.0, 11)];
        let b = vec![(2.0, 20), (3.0, 21)];
        let out = reduce_hits(&[a, b], 3);
        assert_eq!(out, vec![(1.0, 10), (2.0, 20), (3.0, 21)]);
    }

    #[test]
    fn dedups_keeping_best() {
        let a = vec![(5.0, 7)];
        let b = vec![(2.0, 7), (9.0, 8)];
        let out = reduce_hits(&[a, b], 2);
        assert_eq!(out, vec![(2.0, 7), (9.0, 8)]);
    }

    #[test]
    fn batch_reduces_each_query() {
        let q0 = vec![(3.0, 1), (1.0, 2), (2.0, 3)];
        let q1 = vec![(9.0, 4)];
        let out = reduce_batch(vec![q0, q1], 2);
        assert_eq!(out[0], vec![(1.0, 2), (2.0, 3)]);
        assert_eq!(out[1], vec![(9.0, 4)]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(reduce_hits(&[], 5).is_empty());
    }

    #[test]
    fn partitions_merge_per_query() {
        let p0 = vec![vec![(1.0, 0), (5.0, 1)], vec![(2.0, 2)]];
        let p1 = vec![vec![(0.5, 10)], vec![(2.0, 1)]];
        let out = reduce_partitions(&[p0, p1], 2);
        assert_eq!(out[0], vec![(0.5, 10), (1.0, 0)]);
        // Equal distances tie-break toward the smaller global id.
        assert_eq!(out[1], vec![(2.0, 1), (2.0, 2)]);
    }

    #[test]
    fn single_partition_is_identity_on_reduced_lists() {
        let p0 = vec![vec![(1.0, 3), (2.0, 1)], vec![(4.0, 9)]];
        assert_eq!(reduce_partitions(std::slice::from_ref(&p0), 2), p0);
    }

    #[test]
    fn duplicated_partition_merges_identically() {
        let p0 = vec![vec![(1.0, 3), (2.0, 1)]];
        let once = reduce_partitions(std::slice::from_ref(&p0), 2);
        let twice = reduce_partitions(&[p0.clone(), p0], 2);
        assert_eq!(once, twice, "a duplicate replica answer must not change the merge");
    }
}
