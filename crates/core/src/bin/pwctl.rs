//! `pwctl` — command-line front end for the PathWeaver library.
//!
//! ```text
//! pwctl synth  --profile deep10m-like --scale bench --out base.fvecs
//! pwctl gt     --base base.fvecs --queries q.fvecs --k 10 --out gt.ivecs
//! pwctl build  --base base.fvecs --devices 4 [--degree 32] [--no-ghost]
//!              [--no-dgs] --out index-dir
//! pwctl search --index index-dir --queries q.fvecs [--k 10] [--beam 64]
//!              [--dgs] [--naive] [--quantized] [--out results.ivecs]
//! pwctl eval    --results results.ivecs --gt gt.ivecs --k 10
//! pwctl info    --index index-dir
//! pwctl verify  --index index-dir
//! pwctl compact --index index-dir
//! pwctl cluster --base base.fvecs --queries q.fvecs [--nodes 2]
//!               [--partitions 1] [--replication 2] [--devices 2]
//!               [--batches 4] [--k 10] [--beam 64] [--tcp]
//! ```
//!
//! All vector files use the TexMex `fvecs`/`ivecs` formats, so the real
//! Sift/Gist/Deep corpora work directly. `verify` checksum-audits a store
//! without loading it; `compact` folds the write-ahead log into a fresh
//! segment (and migrates legacy directory stores to the segment format).
//! `cluster` boots an in-process multi-node cluster (partitioned, replicated
//! node processes behind the frame RPC layer — TCP loopback with `--tcp`,
//! the deterministic channel transport otherwise), routes query batches
//! through it, and reports per-node load, failovers and simulated QPS.

use pathweaver_core::prelude::*;
use pathweaver_core::store::{is_segment_store, load_index, save_index, verify_store};
use pathweaver_datasets::io::{read_fvecs_file, read_ivecs, write_fvecs, write_ivecs};
use pathweaver_datasets::recall_at_k;
use std::collections::BTreeMap;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: pwctl <synth|gt|build|search|eval|info|verify|compact|cluster> [--flag value ...]"
    );
    eprintln!("run with a subcommand and no flags for its specific usage");
    exit(2)
}

/// Parses `--key value` pairs (plus bare `--key` switches) after the
/// subcommand.
fn parse_flags(args: &[String]) -> BTreeMap<String, String> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--").unwrap_or_else(|| usage()).to_string();
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            flags.insert(key, args[i + 1].clone());
            i += 2;
        } else {
            flags.insert(key, String::from("true"));
            i += 1;
        }
    }
    flags
}

fn req<'a>(flags: &'a BTreeMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing required flag --{key}");
        exit(2)
    })
}

fn opt_parse<T: std::str::FromStr>(flags: &BTreeMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v}");
            exit(2)
        }),
    }
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    exit(1)
}

fn profile_by_name(name: &str) -> DatasetProfile {
    DatasetProfile::all().into_iter().find(|p| p.name == name).unwrap_or_else(|| {
        eprintln!("unknown profile '{name}'; available:");
        for p in DatasetProfile::all() {
            eprintln!("  {}", p.name);
        }
        exit(2)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { usage() };
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "synth" => synth(&flags),
        "gt" => gt(&flags),
        "build" => build(&flags),
        "search" => search(&flags),
        "eval" => eval(&flags),
        "info" => info(&flags),
        "verify" => verify(&flags),
        "compact" => compact(&flags),
        "cluster" => cluster(&flags),
        _ => usage(),
    }
}

fn synth(flags: &BTreeMap<String, String>) {
    let profile = profile_by_name(req(flags, "profile"));
    let scale = match flags.get("scale").map(String::as_str) {
        Some("test") => Scale::Test,
        None | Some("bench") => Scale::Bench,
        Some(other) => fail(format!("unknown scale '{other}'")),
    };
    let queries = opt_parse(flags, "queries", 0usize);
    let seed = opt_parse(flags, "seed", 42u64);
    let spec = profile.base_spec(scale, seed);
    let spec = pathweaver_datasets::SyntheticSpec { len: spec.len + queries, ..spec };
    let all = spec.generate();
    let out = req(flags, "out");
    if queries > 0 {
        let (base, qs) = pathweaver_datasets::query::split_queries(&all, queries, seed ^ 1);
        write_fvecs(std::fs::File::create(out).unwrap_or_else(|e| fail(e)), &base)
            .unwrap_or_else(|e| fail(e));
        let qout = format!("{out}.queries");
        write_fvecs(std::fs::File::create(&qout).unwrap_or_else(|e| fail(e)), &qs)
            .unwrap_or_else(|e| fail(e));
        println!("wrote {} base vectors to {out} and {queries} queries to {qout}", base.len());
    } else {
        write_fvecs(std::fs::File::create(out).unwrap_or_else(|e| fail(e)), &all)
            .unwrap_or_else(|e| fail(e));
        println!("wrote {} vectors (dim {}) to {out}", all.len(), all.dim());
    }
}

fn gt(flags: &BTreeMap<String, String>) {
    let base = read_fvecs_file(req(flags, "base"), None).unwrap_or_else(|e| fail(e));
    let queries = read_fvecs_file(req(flags, "queries"), None).unwrap_or_else(|e| fail(e));
    let k = opt_parse(flags, "k", 10usize);
    let sw = pathweaver_obs::Stopwatch::start();
    let gt = pathweaver_datasets::brute_force_knn(&base, &queries, k);
    let records: Vec<Vec<u32>> = (0..gt.num_queries()).map(|q| gt.neighbors(q).to_vec()).collect();
    let out = req(flags, "out");
    write_ivecs(std::fs::File::create(out).unwrap_or_else(|e| fail(e)), &records)
        .unwrap_or_else(|e| fail(e));
    println!(
        "wrote exact top-{k} of {} queries over {} vectors to {out} ({:.1}s)",
        queries.len(),
        base.len(),
        sw.elapsed_secs()
    );
}

fn build(flags: &BTreeMap<String, String>) {
    let base = read_fvecs_file(req(flags, "base"), None).unwrap_or_else(|e| fail(e));
    let devices = opt_parse(flags, "devices", 1usize);
    let degree = opt_parse(flags, "degree", 32usize);
    let mut config = PathWeaverConfig::full(devices);
    config.graph = pathweaver::graph_params(degree);
    if flags.contains_key("no-ghost") {
        config.ghost = None;
    }
    if flags.contains_key("no-dgs") {
        config.build_dir_table = false;
    }
    let sw = pathweaver_obs::Stopwatch::start();
    let index = PathWeaverIndex::build(&base, &config).unwrap_or_else(|e| fail(e));
    let out = req(flags, "out");
    save_index(&index, out).unwrap_or_else(|e| fail(e));
    println!(
        "built {} shards over {} vectors in {:.1}s ({:.1}% auxiliary overhead); saved to {out}",
        devices,
        base.len(),
        sw.elapsed_secs(),
        index.build_report.overhead_fraction() * 100.0
    );
}

/// Tiny indirection so the binary reads naturally above.
mod pathweaver {
    pub fn graph_params(degree: usize) -> pathweaver_graph::CagraBuildParams {
        pathweaver_graph::CagraBuildParams::with_degree(degree)
    }
}

fn search(flags: &BTreeMap<String, String>) {
    let index = load_index(req(flags, "index")).unwrap_or_else(|e| fail(e));
    let queries = read_fvecs_file(req(flags, "queries"), None).unwrap_or_else(|e| fail(e));
    if queries.dim() != index.dim() {
        fail(format!(
            "query dimensionality {} does not match the index ({})",
            queries.dim(),
            index.dim()
        ));
    }
    let k = opt_parse(flags, "k", 10usize);
    let beam = opt_parse(flags, "beam", 64usize);
    let mut params = SearchParams {
        k,
        beam,
        candidates: beam,
        expand: (beam / 16).max(4),
        hash_bits: 15,
        ..SearchParams::default()
    };
    if flags.contains_key("dgs") {
        params.dgs = Some(DgsParams::default());
    }
    if flags.contains_key("quantized") {
        params.quantized = true;
    }
    let out = if flags.contains_key("naive") {
        index.search_naive(&queries, &params)
    } else {
        index.search_pipelined(&queries, &params)
    };
    println!(
        "searched {} queries: simulated makespan {:.3} ms, sim-QPS {:.0}",
        queries.len(),
        out.makespan_s * 1e3,
        out.qps
    );
    println!(
        "time split: {:.1}% L2 / {:.1}% rest / {:.1}% comm",
        100.0 * out.breakdown.dist_s / out.breakdown.total_s().max(f64::MIN_POSITIVE),
        100.0 * out.breakdown.other_s / out.breakdown.total_s().max(f64::MIN_POSITIVE),
        100.0 * out.breakdown.comm_s / out.breakdown.total_s().max(f64::MIN_POSITIVE),
    );
    if let Some(path) = flags.get("out") {
        write_ivecs(std::fs::File::create(path).unwrap_or_else(|e| fail(e)), &out.results)
            .unwrap_or_else(|e| fail(e));
        println!("wrote result ids to {path}");
    } else {
        for (q, hits) in out.results.iter().enumerate().take(5) {
            println!("query {q}: {hits:?}");
        }
        if out.results.len() > 5 {
            println!("... ({} more; use --out to save all)", out.results.len() - 5);
        }
    }
}

fn eval(flags: &BTreeMap<String, String>) {
    let results =
        read_ivecs(std::fs::File::open(req(flags, "results")).unwrap_or_else(|e| fail(e)), None)
            .unwrap_or_else(|e| fail(e));
    let truth = read_ivecs(std::fs::File::open(req(flags, "gt")).unwrap_or_else(|e| fail(e)), None)
        .unwrap_or_else(|e| fail(e));
    if results.len() != truth.len() {
        fail(format!("result count {} != ground-truth count {}", results.len(), truth.len()));
    }
    let k = opt_parse(flags, "k", 10usize);
    let mean: f64 = results.iter().zip(&truth).map(|(r, t)| recall_at_k(t, r, k)).sum::<f64>()
        / results.len().max(1) as f64;
    println!("recall@{k} = {mean:.4} over {} queries", results.len());
}

fn verify(flags: &BTreeMap<String, String>) {
    let dir = req(flags, "index");
    let report = verify_store(dir).unwrap_or_else(|e| fail(e));
    if report.segment_format {
        println!(
            "{dir}: segment store OK — {} sections, {} checksum-verified; \
             wal: {} records, {} torn bytes",
            report.sections,
            pathweaver_util::fmt::bytes(report.segment_bytes as f64),
            report.wal_records,
            report.wal_torn_bytes,
        );
        if report.wal_torn_bytes > 0 {
            println!(
                "note: the torn tail is an expected crash artifact; opening the store repairs it"
            );
        }
    } else {
        println!("{dir}: legacy directory store OK (full load; migrate with `pwctl compact`)");
    }
}

fn compact(flags: &BTreeMap<String, String>) {
    let dir = req(flags, "index");
    let migrating = !is_segment_store(dir);
    let sw = pathweaver_obs::Stopwatch::start();
    // Loading replays the WAL (segment stores) or parses the directory
    // (legacy); saving always writes a fresh segment + empty WAL.
    let index = load_index(dir).unwrap_or_else(|e| fail(e));
    save_index(&index, dir).unwrap_or_else(|e| fail(e));
    if migrating {
        // The legacy per-shard files are now stale duplicates of the
        // segment; keeping them would make the store ambiguous.
        remove_legacy_files(dir).unwrap_or_else(|e| fail(e));
        println!("migrated legacy store {dir} to the segment format in {:.1}s", sw.elapsed_secs());
    } else {
        println!("compacted {dir} in {:.1}s (wal folded into a fresh segment)", sw.elapsed_secs());
    }
}

/// Boots an in-process cluster over the given dataset and routes query
/// batches through it: partitions spread over `--nodes` node processes with
/// `--replication`-way replicas, behind the frame RPC layer (TCP loopback
/// with `--tcp`, the deterministic channel transport otherwise). A 1-node
/// cluster answers bit-identically to `serve_once`; more nodes spread the
/// load, visible in the per-node busy times printed at the end.
fn cluster(flags: &BTreeMap<String, String>) {
    let base = read_fvecs_file(req(flags, "base"), None).unwrap_or_else(|e| fail(e));
    let queries = read_fvecs_file(req(flags, "queries"), None).unwrap_or_else(|e| fail(e));
    if queries.dim() != base.dim() {
        fail(format!(
            "query dimensionality {} does not match the base vectors ({})",
            queries.dim(),
            base.dim()
        ));
    }
    let nodes = opt_parse(flags, "nodes", 2usize);
    let partitions = opt_parse(flags, "partitions", 1usize);
    let replication = opt_parse(flags, "replication", nodes.min(2));
    let devices = opt_parse(flags, "devices", 2usize);
    let batches = opt_parse(flags, "batches", 4usize);
    let k = opt_parse(flags, "k", 10usize);
    let beam = opt_parse(flags, "beam", 64usize);
    let transport =
        if flags.contains_key("tcp") { TransportKind::Tcp } else { TransportKind::Channel };

    let index_config = PathWeaverConfig::full(devices);
    let cluster_config = ClusterConfig { partitions, replication, ..ClusterConfig::default() };
    let params = SearchParams {
        k,
        beam,
        candidates: beam,
        expand: (beam / 16).max(4),
        hash_bits: 15,
        ..SearchParams::default()
    };

    let sw = pathweaver_obs::Stopwatch::start();
    let cluster = LocalCluster::launch(&base, &index_config, &cluster_config, nodes, transport)
        .unwrap_or_else(|e| fail(e));
    println!(
        "cluster up in {:.1}s: {} nodes ({:?}), {} partitions x {} replicas; placement {:?}",
        sw.elapsed_secs(),
        nodes,
        transport,
        partitions,
        replication,
        cluster.router().placement(),
    );

    let mut total_queries = 0u64;
    let mut failovers = 0u64;
    for batch in 0..batches {
        let out = cluster.router().search(&queries, &params).unwrap_or_else(|e| fail(e));
        total_queries += queries.len() as u64;
        failovers += out.failovers;
        println!(
            "batch {batch}: {} queries, simulated makespan {:.3} ms, {} rpc attempts",
            queries.len(),
            out.makespan_s * 1e3,
            out.attempts,
        );
    }
    let busy = cluster.router().node_busy_s();
    let max_busy = busy.iter().copied().fold(0.0f64, f64::max);
    for (node, b) in busy.iter().enumerate() {
        println!("node {node}: {:.3} ms simulated busy time", b * 1e3);
    }
    println!(
        "served {total_queries} queries over {batches} batches: sim-QPS {:.0}, {failovers} failovers, {} / {} nodes alive",
        total_queries as f64 / max_busy.max(f64::MIN_POSITIVE),
        cluster.router().alive().iter().filter(|&&a| a).count(),
        nodes,
    );
    cluster.shutdown();
}

fn remove_legacy_files(dir: &str) -> std::io::Result<()> {
    let dir = std::path::Path::new(dir);
    let meta = dir.join("meta.json");
    if meta.exists() {
        std::fs::remove_file(meta)?;
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() && name.starts_with("shard-") {
            std::fs::remove_dir_all(path)?;
        }
    }
    Ok(())
}

fn info(flags: &BTreeMap<String, String>) {
    let index = load_index(req(flags, "index")).unwrap_or_else(|e| fail(e));
    println!(
        "PathWeaver index: {} vectors (dim {}), {} shards",
        index.num_vectors,
        index.dim(),
        index.num_devices()
    );
    for (s, shard) in index.shards.iter().enumerate() {
        let resident: u64 = shard.resident_bytes().iter().map(|(_, b)| b).sum();
        println!(
            "  shard {s}: {} vectors, degree {}, ghost {}, dir-table {}, tombstones {}, {} resident",
            shard.len(),
            shard.graph.degree(),
            shard.ghost.as_ref().map(|g| g.len().to_string()).unwrap_or_else(|| "-".into()),
            if shard.dir_table.is_some() { "yes" } else { "no" },
            shard.deleted.count(),
            pathweaver_util::fmt::bytes(resident as f64),
        );
    }
}
