//! Index persistence.
//!
//! Saves a built [`PathWeaverIndex`] as a directory tree so indices survive
//! process restarts (the expensive artifacts — per-shard vectors, graphs,
//! ghost shards, inter-shard tables — are stored in compact binary formats;
//! the direction table is cheap to recompute and is rebuilt on load):
//!
//! ```text
//! index-dir/
//!   meta.json                  build parameters + shape
//!   shard-000/
//!     vectors.fvecs            shard vectors
//!     graph.pwgr               proximity graph
//!     globals.ivecs            local → global id map (one record)
//!     deleted.ivecs            tombstoned local ids (one record)
//!     intershard.ivecs         I(u) targets (one record; multi-device only)
//!     ghost-map.ivecs          ghost → local map (optional)
//!     ghost-vectors.fvecs      ghost vectors (optional)
//!     ghost-graph.pwgr         ghost graph (optional)
//!   shard-001/ ...
//! ```

use crate::config::PathWeaverConfig;
use crate::index::{PathWeaverIndex, ShardIndex};
use crate::shard::ShardAssignment;
use pathweaver_datasets::io::{read_fvecs, read_ivecs, write_fvecs, write_ivecs};
use pathweaver_gpusim::MemoryLedger;
use pathweaver_graph::serialize::{read_graph, write_graph};
use pathweaver_graph::{BuildReport, DirectionTable, GhostParams, GhostShard, InterShardTable};
use pathweaver_util::FixedBitSet;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Errors raised while saving or loading an index.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structurally invalid index directory.
    Malformed(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Malformed(m) => write!(f, "malformed index directory: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn malformed(e: impl std::fmt::Display) -> StoreError {
    StoreError::Malformed(e.to_string())
}

/// The JSON-serializable subset of the configuration; device and topology
/// models are reconstructed from presets on load.
#[derive(Debug, Serialize, Deserialize)]
struct Meta {
    version: u32,
    num_devices: usize,
    dim: usize,
    num_vectors: usize,
    graph: pathweaver_graph::CagraBuildParams,
    intershard: pathweaver_graph::InterShardParams,
    build_dir_table: bool,
    ghost: Option<GhostParams>,
    forward_width: usize,
    ghost_iterations: usize,
    ghost_entries: usize,
    ghost_beam: usize,
    ghost_seeds: usize,
    seed_extra_random: usize,
    seed: u64,
}

/// Saves `index` under `dir` (created if missing).
///
/// # Errors
///
/// IO failures; the directory is left in an undefined state on error.
pub fn save_index(index: &PathWeaverIndex, dir: impl AsRef<Path>) -> Result<(), StoreError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let meta = Meta {
        version: 1,
        num_devices: index.num_devices(),
        dim: index.dim(),
        num_vectors: index.num_vectors,
        graph: index.config.graph,
        intershard: index.config.intershard,
        build_dir_table: index.config.build_dir_table,
        ghost: index.config.ghost,
        forward_width: index.config.forward_width,
        ghost_iterations: index.config.ghost_iterations,
        ghost_entries: index.config.ghost_entries,
        ghost_beam: index.config.ghost_beam,
        ghost_seeds: index.config.ghost_seeds,
        seed_extra_random: index.config.seed_extra_random,
        seed: index.config.seed,
    };
    fs::write(
        dir.join("meta.json"),
        serde_json::to_string_pretty(&meta).expect("meta serializes"),
    )?;
    for (s, shard) in index.shards.iter().enumerate() {
        let sdir = dir.join(format!("shard-{s:03}"));
        fs::create_dir_all(&sdir)?;
        write_fvecs(fs::File::create(sdir.join("vectors.fvecs"))?, &shard.vectors)
            .map_err(malformed)?;
        write_graph(fs::File::create(sdir.join("graph.pwgr"))?, &shard.graph).map_err(malformed)?;
        write_ivecs(
            fs::File::create(sdir.join("globals.ivecs"))?,
            std::slice::from_ref(&shard.global_ids),
        )
        .map_err(malformed)?;
        let deleted: Vec<u32> = shard.deleted.iter().map(|i| i as u32).collect();
        write_ivecs(fs::File::create(sdir.join("deleted.ivecs"))?, &[deleted])
            .map_err(malformed)?;
        if let Some(t) = &shard.intershard {
            let targets: Vec<u32> = (0..t.len() as u32).map(|u| t.target(u)).collect();
            write_ivecs(fs::File::create(sdir.join("intershard.ivecs"))?, &[targets])
                .map_err(malformed)?;
        }
        if let Some(g) = &shard.ghost {
            write_ivecs(
                fs::File::create(sdir.join("ghost-map.ivecs"))?,
                std::slice::from_ref(&g.to_original),
            )
            .map_err(malformed)?;
            write_fvecs(fs::File::create(sdir.join("ghost-vectors.fvecs"))?, &g.vectors)
                .map_err(malformed)?;
            write_graph(fs::File::create(sdir.join("ghost-graph.pwgr"))?, &g.graph)
                .map_err(malformed)?;
        }
    }
    Ok(())
}

/// Loads an index saved by [`save_index`], rebuilding the direction tables
/// and memory ledgers.
///
/// The device/topology models come from the standard presets (the saved
/// index carries algorithmic state, not simulator calibration).
///
/// # Errors
///
/// IO failures or structural mismatches (missing files, inconsistent
/// shapes).
pub fn load_index(dir: impl AsRef<Path>) -> Result<PathWeaverIndex, StoreError> {
    let dir = dir.as_ref();
    let meta: Meta =
        serde_json::from_str(&fs::read_to_string(dir.join("meta.json"))?).map_err(malformed)?;
    if meta.version != 1 {
        return Err(StoreError::Malformed(format!("unsupported version {}", meta.version)));
    }
    let mut config = PathWeaverConfig::full(meta.num_devices);
    config.graph = meta.graph;
    config.intershard = meta.intershard;
    config.build_dir_table = meta.build_dir_table;
    config.ghost = meta.ghost;
    config.forward_width = meta.forward_width;
    config.ghost_iterations = meta.ghost_iterations;
    config.ghost_entries = meta.ghost_entries;
    config.ghost_beam = meta.ghost_beam;
    config.ghost_seeds = meta.ghost_seeds;
    config.seed_extra_random = meta.seed_extra_random;
    config.seed = meta.seed;

    let mut shards = Vec::with_capacity(meta.num_devices);
    let mut members = Vec::with_capacity(meta.num_devices);
    for s in 0..meta.num_devices {
        let sdir = dir.join(format!("shard-{s:03}"));
        // Restore the aligned storage the build phase uses (fvecs on disk is
        // compact; distances are identical either way).
        let vectors = read_fvecs(fs::File::open(sdir.join("vectors.fvecs"))?, None)
            .map_err(malformed)?
            .into_aligned();
        if vectors.dim() != meta.dim {
            return Err(StoreError::Malformed(format!(
                "shard {s} dim {} != meta dim {}",
                vectors.dim(),
                meta.dim
            )));
        }
        let graph = read_graph(fs::File::open(sdir.join("graph.pwgr"))?).map_err(malformed)?;
        if graph.num_nodes() != vectors.len() {
            return Err(StoreError::Malformed(format!("shard {s} graph/vector size mismatch")));
        }
        let global_ids = read_ivecs(fs::File::open(sdir.join("globals.ivecs"))?, None)
            .map_err(malformed)?
            .into_iter()
            .next()
            .ok_or_else(|| StoreError::Malformed(format!("shard {s} missing globals")))?;
        if global_ids.len() != vectors.len() {
            return Err(StoreError::Malformed(format!("shard {s} globals length mismatch")));
        }
        let mut deleted = FixedBitSet::new(vectors.len());
        for id in read_ivecs(fs::File::open(sdir.join("deleted.ivecs"))?, None)
            .map_err(malformed)?
            .into_iter()
            .next()
            .unwrap_or_default()
        {
            if (id as usize) < vectors.len() {
                deleted.insert(id as usize);
            }
        }
        let intershard = if meta.num_devices > 1 {
            let path = sdir.join("intershard.ivecs");
            if !path.exists() {
                return Err(StoreError::Malformed(format!(
                    "shard {s} is missing its inter-shard table"
                )));
            }
            let targets = read_ivecs(fs::File::open(path)?, None)
                .map_err(malformed)?
                .into_iter()
                .next()
                .unwrap_or_default();
            if targets.len() != vectors.len() {
                return Err(StoreError::Malformed(format!(
                    "shard {s} inter-shard table covers {} of {} nodes",
                    targets.len(),
                    vectors.len()
                )));
            }
            let mut t = InterShardTable::empty();
            for v in targets {
                t.push(v);
            }
            Some(t)
        } else {
            None
        };
        let ghost = if sdir.join("ghost-map.ivecs").exists() {
            let to_original = read_ivecs(fs::File::open(sdir.join("ghost-map.ivecs"))?, None)
                .map_err(malformed)?
                .into_iter()
                .next()
                .unwrap_or_default();
            let gvec = read_fvecs(fs::File::open(sdir.join("ghost-vectors.fvecs"))?, None)
                .map_err(malformed)?
                .into_aligned();
            let ggraph =
                read_graph(fs::File::open(sdir.join("ghost-graph.pwgr"))?).map_err(malformed)?;
            Some(GhostShard { to_original, vectors: gvec, graph: ggraph })
        } else {
            None
        };
        let dir_table = meta.build_dir_table.then(|| DirectionTable::build(&vectors, &graph));
        members.push(global_ids.clone());
        shards.push(ShardIndex {
            global_ids,
            vectors,
            graph,
            dir_table,
            ghost,
            intershard,
            deleted,
        });
    }

    // Targets must land inside the ring successor's shard.
    for s in 0..shards.len() {
        if let Some(t) = &shards[s].intershard {
            let next_len = shards[(s + 1) % shards.len()].vectors.len() as u32;
            for u in 0..t.len() as u32 {
                if t.target(u) >= next_len {
                    return Err(StoreError::Malformed(format!(
                        "shard {s} inter-shard target {} out of range for next shard ({next_len} nodes)",
                        t.target(u)
                    )));
                }
            }
        }
    }

    let mut assignment =
        ShardAssignment::random(meta.num_vectors.max(meta.num_devices), meta.num_devices, 0);
    for (s, m) in members.into_iter().enumerate() {
        assignment.set_members(s, m);
    }
    let mut ledgers = Vec::with_capacity(meta.num_devices);
    for shard in &shards {
        let mut ledger = MemoryLedger::new(config.device.mem_capacity);
        for (label, bytes) in shard.resident_bytes() {
            ledger.allocate(label, bytes).map_err(|e| StoreError::Malformed(e.to_string()))?;
        }
        ledgers.push(ledger);
    }
    Ok(PathWeaverIndex {
        config,
        shards,
        assignment,
        build_report: BuildReport::new(),
        ledgers,
        num_vectors: meta.num_vectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathweaver_datasets::{recall_batch, DatasetProfile, Scale};
    use pathweaver_search::SearchParams;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("pw-store-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 71);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let dir = temp_dir("roundtrip");
        save_index(&idx, &dir).unwrap();
        let loaded = load_index(&dir).unwrap();
        assert_eq!(loaded.num_devices(), 2);
        assert_eq!(loaded.dim(), idx.dim());
        assert_eq!(loaded.num_vectors, idx.num_vectors);
        let params = SearchParams::default();
        let a = idx.search_pipelined(&w.queries, &params);
        let b = loaded.search_pipelined(&w.queries, &params);
        assert_eq!(a.results, b.results, "loaded index must search identically");
        let recall = recall_batch(&w.ground_truth, &b.results, 10);
        assert!(recall > 0.8);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tombstones_survive_roundtrip() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, 72);
        let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let victim = idx.shards[0].global_ids[3];
        assert!(idx.delete(victim));
        let dir = temp_dir("tombstone");
        save_index(&idx, &dir).unwrap();
        let mut loaded = load_index(&dir).unwrap();
        assert_eq!(loaded.live_vectors(), idx.live_vectors());
        assert!(!loaded.delete(victim), "already tombstoned");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_meta_is_clean_error() {
        let dir = temp_dir("missing");
        assert!(matches!(load_index(&dir), Err(StoreError::Io(_))));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_graph_is_detected() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, 73);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let dir = temp_dir("corrupt");
        save_index(&idx, &dir).unwrap();
        let victim = dir.join("shard-000/graph.pwgr");
        let mut bytes = fs::read(&victim).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&victim, bytes).unwrap();
        assert!(matches!(load_index(&dir), Err(StoreError::Malformed(_))));
        fs::remove_dir_all(&dir).ok();
    }
}
