//! Random dataset sharding (paper §3.1.2: "the dataset is randomly
//! partitioned ... to build independent graphs").

use pathweaver_vector::VectorSet;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Assignment of every global vector to exactly one shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardAssignment {
    /// `members[s]` lists the global ids of shard `s`, ascending.
    members: Vec<Vec<u32>>,
}

impl ShardAssignment {
    /// Randomly partitions `n` items into `num_shards` near-equal shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_shards == 0` or `n < num_shards`.
    pub fn random(n: usize, num_shards: usize, seed: u64) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        assert!(n >= num_shards, "need at least one vector per shard");
        let mut ids: Vec<u32> = (0..n as u32).collect();
        let mut rng = pathweaver_util::small_rng(seed);
        ids.shuffle(&mut rng);
        let mut members: Vec<Vec<u32>> = vec![Vec::with_capacity(n / num_shards + 1); num_shards];
        for (i, id) in ids.into_iter().enumerate() {
            members[i % num_shards].push(id);
        }
        for m in members.iter_mut() {
            m.sort_unstable();
        }
        Self { members }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// Global ids of shard `s` (ascending; index = local id).
    pub fn members(&self, s: usize) -> &[u32] {
        &self.members[s]
    }

    /// Materializes shard `s`'s vectors from the full set.
    pub fn gather(&self, s: usize, all: &VectorSet) -> VectorSet {
        let rows: Vec<usize> = self.members[s].iter().map(|&g| g as usize).collect();
        all.gather(&rows)
    }

    /// Total items across shards.
    pub fn total(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// Index of the smallest shard (insertion target for dynamic updates).
    pub fn smallest_shard(&self) -> usize {
        self.members
            .iter()
            .enumerate()
            .min_by_key(|(_, m)| m.len())
            .map(|(s, _)| s)
            .expect("at least one shard")
    }

    /// Appends a new global id to shard `s`, returning its local id.
    pub fn push(&mut self, s: usize, global_id: u32) -> u32 {
        self.members[s].push(global_id);
        (self.members[s].len() - 1) as u32
    }

    /// Replaces shard `s`'s membership after a physical rebuild (§6.2).
    pub fn set_members(&mut self, s: usize, members: Vec<u32>) {
        self.members[s] = members;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_exact_and_balanced() {
        let a = ShardAssignment::random(1003, 4, 9);
        assert_eq!(a.num_shards(), 4);
        assert_eq!(a.total(), 1003);
        let mut all: Vec<u32> = (0..4).flat_map(|s| a.members(s).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..1003u32).collect::<Vec<_>>());
        for s in 0..4 {
            let len = a.members(s).len();
            assert!((250..=251).contains(&len), "shard {s} has {len}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(ShardAssignment::random(100, 3, 5), ShardAssignment::random(100, 3, 5));
        assert_ne!(ShardAssignment::random(100, 3, 5), ShardAssignment::random(100, 3, 6));
    }

    #[test]
    fn gather_matches_members() {
        let all = VectorSet::from_fn(20, 2, |r, _| r as f32);
        let a = ShardAssignment::random(20, 3, 1);
        for s in 0..3 {
            let shard = a.gather(s, &all);
            assert_eq!(shard.len(), a.members(s).len());
            for (local, &global) in a.members(s).iter().enumerate() {
                assert_eq!(shard.row(local), all.row(global as usize));
            }
        }
    }

    #[test]
    fn push_appends_local_id() {
        let mut a = ShardAssignment::random(10, 2, 2);
        let before = a.members(0).len();
        let local = a.push(0, 99);
        assert_eq!(local as usize, before);
        assert_eq!(a.members(0)[before], 99);
    }

    #[test]
    fn smallest_shard_found() {
        let mut a = ShardAssignment::random(9, 3, 3);
        a.push(1, 100);
        // Shards 0 and 2 have 3, shard 1 has 4 → smallest is 0 or 2.
        assert_ne!(a.smallest_shard(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one vector per shard")]
    fn too_many_shards_rejected() {
        let _ = ShardAssignment::random(2, 3, 0);
    }
}
