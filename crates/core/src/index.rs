//! The PathWeaver index: per-shard graphs plus auxiliary structures.

use crate::config::PathWeaverConfig;
use crate::shard::ShardAssignment;
use pathweaver_gpusim::memory::OutOfMemory;
use pathweaver_gpusim::{CostCounters, MemoryLedger, PipelineTimeline, TimeBreakdown};
use pathweaver_graph::build_report::BuildPhase;
use pathweaver_graph::{
    cagra_build, BuildReport, DirectionTable, FixedDegreeGraph, GhostShard, InterShardTable,
};
use pathweaver_search::{search_batch, BatchStats, EntryPolicy, SearchParams, ShardContext};
use pathweaver_util::FixedBitSet;
use pathweaver_vector::{QuantizedSet, VectorSet};
use std::sync::Arc;

/// Errors raised while building an index.
#[derive(Debug, Clone)]
pub enum BuildError {
    /// A shard's resident structures exceed the device's memory capacity.
    OutOfMemory(OutOfMemory),
    /// The dataset is too small for the requested device count.
    TooFewVectors {
        /// Vectors supplied.
        have: usize,
        /// Minimum required.
        need: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OutOfMemory(e) => write!(f, "{e}"),
            Self::TooFewVectors { have, need } => {
                write!(f, "dataset too small: {have} vectors, need at least {need}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Everything resident on one simulated device.
#[derive(Debug, Clone)]
pub struct ShardIndex {
    /// Local→global id mapping (ascending).
    pub global_ids: Vec<u32>,
    /// Shard vectors (row = local id).
    pub vectors: VectorSet,
    /// Shard proximity graph.
    pub graph: FixedDegreeGraph,
    /// Direction-bit table (§3.3), present when DGS is enabled.
    pub dir_table: Option<DirectionTable>,
    /// Int8 quantized tier (1 byte/dim code rows), present when
    /// [`PathWeaverConfig::build_quantized`] is set; enables quantized
    /// traversal with exact re-rank.
    pub quantized: Option<QuantizedSet>,
    /// Ghost shard (§3.2).
    pub ghost: Option<GhostShard>,
    /// `I(u)` table into the next shard of the ring (§3.1); `None` on
    /// single-device indices.
    pub intershard: Option<InterShardTable>,
    /// Logical deletion flags (local ids; §6.2).
    pub deleted: FixedBitSet,
}

/// Output of one shard-local batch search (ids are local).
#[derive(Debug, Clone)]
pub struct ShardBatchOutput {
    /// Per-query `(squared distance, local id)` hits, ascending.
    pub hits: Vec<Vec<(f32, u32)>>,
    /// Aggregated statistics.
    pub stats: BatchStats,
    /// Aggregated counters (ghost stage included).
    pub counters: CostCounters,
}

impl ShardIndex {
    /// Number of resident vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the shard holds no vectors (never true for built indices).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Maps a local id to the global dataset id.
    pub fn to_global(&self, local: u32) -> u32 {
        self.global_ids[local as usize]
    }

    /// Shard-local search with optional ghost staging and deletion
    /// filtering.
    ///
    /// `entries` follows [`search_batch`] semantics. When `use_ghost` is set
    /// and the shard has a ghost shard, a short ghost-stage search picks the
    /// entry seeds per query (overriding `entries`); its cost is included in
    /// the returned counters.
    pub fn search_local(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
        entries: &[EntryPolicy],
        use_ghost: bool,
        config: &PathWeaverConfig,
    ) -> ShardBatchOutput {
        let mut counters = CostCounters::new();
        let mut stats = BatchStats::default();

        let ghost_ref = if use_ghost { self.ghost.as_ref() } else { None };
        let main_entries: Vec<EntryPolicy> = if let Some(ghost) = ghost_ref {
            let gctx = ShardContext::new(&ghost.vectors, &ghost.graph, None);
            let gparams = SearchParams {
                k: config.ghost_seeds.min(config.ghost_beam),
                beam: config.ghost_beam,
                candidates: config.ghost_entries,
                expand: 2,
                max_iterations: config.ghost_iterations,
                hash_bits: 10,
                dgs: None,
                random_discard: false,
                patience: 1,
                // Ghost shards carry no quantized payload; the staging pass
                // is short and always exact.
                quantized: false,
                seed: pathweaver_util::seed_from_parts(params.seed, "ghost", 0),
            };
            let gbatch = search_batch(
                &gctx,
                queries,
                &gparams,
                &[EntryPolicy::Random { count: config.ghost_entries }],
            );
            counters.merge(&gbatch.counters);
            // Ghost-staging entry metrics: how many entry seeds each query
            // got and what the ghost stage cost (bridged under `ghost.*` so
            // its share of the stage's work stays attributable).
            if pathweaver_obs::enabled() {
                let r = pathweaver_obs::registry();
                r.counter("ghost.batches").inc();
                r.counter("ghost.queries").add(gbatch.stats.queries);
                r.counter("ghost.converged").add(gbatch.stats.converged);
                pathweaver_gpusim::obs_bridge::record_counters("ghost", &gbatch.counters);
                let seeds = r.histogram("ghost.seeds_per_query");
                for hits in &gbatch.hits {
                    seeds.record(hits.len() as u64);
                }
            }
            // Ghost iterations are bookkeeping, not shard-search iterations:
            // keep visits/distance costs but do not fold ghost iteration
            // counts into the shard stats used for Fig 3/13.
            gbatch
                .hits
                .iter()
                .map(|hits| EntryPolicy::Seeded {
                    seeds: hits.iter().map(|&(_, g)| ghost.original_id(g)).collect(),
                    extra_random: config.seed_extra_random.max(params.candidates / 8),
                })
                .collect()
        } else {
            entries.to_vec()
        };

        // Logical deletions (§6.2): tombstoned nodes still act as bridges
        // during traversal and only vanish from results. Over-fetch so that
        // filtering cannot leave a query with fewer than k live hits while
        // live neighbors were ranked just past the window.
        let tombstones = self.deleted.count();
        let run_params = if tombstones > 0 {
            // Widen the beam along with k: clamping the widened k back to the
            // caller's beam silently cancels the over-fetch whenever
            // k == beam, so heavy deletions would return fewer than k live
            // hits even though the shard still holds them.
            let k = params.k + tombstones.min(params.k);
            let beam = params.beam.max(k);
            SearchParams { k, beam, ..*params }
        } else {
            *params
        };
        let ctx = ShardContext::new(&self.vectors, &self.graph, self.dir_table.as_ref())
            .with_quantized(self.quantized.as_ref());
        let batch = search_batch(&ctx, queries, &run_params, &main_entries);
        counters.merge(&batch.counters);
        stats.merge(&batch.stats);

        let hits = if tombstones > 0 {
            batch
                .hits
                .into_iter()
                .map(|h| {
                    let mut live: Vec<(f32, u32)> = h
                        .into_iter()
                        .filter(|&(_, id)| !self.deleted.contains(id as usize))
                        .collect();
                    live.truncate(params.k);
                    live
                })
                .collect()
        } else {
            batch.hits
        };

        ShardBatchOutput { hits, stats, counters }
    }

    /// Bytes of every structure resident on the device.
    pub fn resident_bytes(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![
            ("vectors", self.vectors.nbytes() as u64),
            ("graph", self.graph.nbytes() as u64),
            ("id-map", (self.global_ids.len() * 4) as u64),
        ];
        if let Some(t) = &self.dir_table {
            out.push(("dir-table", t.nbytes() as u64));
        }
        if let Some(q) = &self.quantized {
            out.push(("quantized", q.nbytes() as u64));
        }
        if let Some(g) = &self.ghost {
            out.push(("ghost", g.nbytes() as u64));
        }
        if let Some(t) = &self.intershard {
            out.push(("intershard", t.nbytes() as u64));
        }
        out
    }
}

/// A built PathWeaver index over `num_devices` simulated GPUs.
#[derive(Debug, Clone)]
pub struct PathWeaverIndex {
    /// Build configuration.
    pub config: PathWeaverConfig,
    /// Per-device shard indices. Each shard is behind an [`Arc`] so a
    /// snapshot publish ([`crate::snapshot::ConcurrentIndex`]) clones only
    /// the spine: untouched shards are shared between the writer master and
    /// every pinned snapshot, and the first mutation after a publish
    /// copies just the shard it lands on (`Arc::make_mut`).
    pub shards: Vec<Arc<ShardIndex>>,
    /// Shard assignment (kept for dynamic updates).
    pub assignment: ShardAssignment,
    /// Build-phase timing (Fig 17).
    pub build_report: BuildReport,
    /// Per-device simulated memory ledgers.
    pub ledgers: Vec<MemoryLedger>,
    /// High-water mark of allocated global ids: counts every vector ever
    /// indexed (including tombstoned and compacted ones), so new inserts
    /// never reuse a live id. Use [`PathWeaverIndex::live_vectors`] for the
    /// live count.
    pub num_vectors: usize,
}

impl PathWeaverIndex {
    /// Builds the index: random sharding, per-shard CAGRA-style graphs, and
    /// the configured auxiliary structures.
    ///
    /// # Errors
    ///
    /// [`BuildError::TooFewVectors`] when the dataset cannot fill every
    /// shard with at least `degree + 1` vectors;
    /// [`BuildError::OutOfMemory`] when a shard does not fit its device.
    pub fn build(dataset: &VectorSet, config: &PathWeaverConfig) -> Result<Self, BuildError> {
        config.validate();
        let need = config.num_devices * (config.graph.degree + 1);
        if dataset.len() < need {
            return Err(BuildError::TooFewVectors { have: dataset.len(), need });
        }

        let assignment = ShardAssignment::random(
            dataset.len(),
            config.num_devices,
            pathweaver_util::seed_from_parts(config.seed, "shard", 0),
        );
        let mut report = BuildReport::new();

        // Phase 1: per-shard vectors + proximity graphs.
        let mut shards: Vec<Arc<ShardIndex>> = Vec::with_capacity(config.num_devices);
        for s in 0..config.num_devices {
            // Aligned storage (64-byte rows, zero-padded stride) mirrors the
            // device-side layout and lets the SIMD kernels avoid split-line
            // loads; distances are bitwise unchanged (logical dim preserved).
            let vectors = assignment.gather(s, dataset).into_aligned();
            let graph =
                report.time(BuildPhase::GraphBuild, || cagra_build(&vectors, &config.graph));
            let dir_table = if config.build_dir_table {
                Some(report.time(BuildPhase::DirTable, || DirectionTable::build(&vectors, &graph)))
            } else {
                None
            };
            let ghost = config.ghost.map(|mut gp| {
                gp.seed = pathweaver_util::seed_from_parts(config.seed, "ghost", s as u64);
                report.time(BuildPhase::Ghost, || GhostShard::build(&vectors, &gp))
            });
            let quantized = config
                .build_quantized
                .then(|| report.time(BuildPhase::Quantize, || QuantizedSet::quantize(&vectors)));
            let deleted = FixedBitSet::new(vectors.len());
            shards.push(Arc::new(ShardIndex {
                global_ids: assignment.members(s).to_vec(),
                vectors,
                graph,
                dir_table,
                quantized,
                ghost,
                intershard: None,
                deleted,
            }));
        }

        // Phase 2: inter-shard tables (ring), only meaningful multi-device.
        if config.num_devices > 1 {
            let tables: Vec<InterShardTable> = (0..config.num_devices)
                .map(|s| {
                    let next = (s + 1) % config.num_devices;
                    report.time(BuildPhase::InterShard, || {
                        InterShardTable::build(
                            &shards[s].vectors,
                            &shards[next].vectors,
                            &shards[next].graph,
                            &config.intershard,
                        )
                    })
                })
                .collect();
            for (s, t) in tables.into_iter().enumerate() {
                Arc::make_mut(&mut shards[s]).intershard = Some(t);
            }
        }

        // Phase 3: simulated memory accounting.
        let mut ledgers = Vec::with_capacity(config.num_devices);
        for shard in &shards {
            let mut ledger = MemoryLedger::new(config.device.mem_capacity);
            for (label, bytes) in shard.resident_bytes() {
                ledger.allocate(label, bytes).map_err(BuildError::OutOfMemory)?;
            }
            ledgers.push(ledger);
        }

        Ok(Self {
            config: config.clone(),
            shards,
            assignment,
            build_report: report,
            ledgers,
            num_vectors: dataset.len(),
        })
    }

    /// Number of devices/shards.
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.shards[0].vectors.dim()
    }

    /// Saves the index under `dir` in the durable segment format
    /// ([`crate::store::save_index`]).
    ///
    /// # Errors
    ///
    /// See [`crate::store::save_index`].
    pub fn save(&self, dir: impl AsRef<std::path::Path>) -> Result<(), crate::store::StoreError> {
        crate::store::save_index(self, dir)
    }

    /// Loads an index from `dir`, probing for the segment vs legacy format
    /// ([`crate::store::load_index`]).
    ///
    /// # Errors
    ///
    /// See [`crate::store::load_index`].
    pub fn load(dir: impl AsRef<std::path::Path>) -> Result<Self, crate::store::StoreError> {
        crate::store::load_index(dir)
    }
}

/// Output of a framework-level search (any mode).
#[derive(Debug, Clone)]
pub struct SearchOutput {
    /// Per-query global result ids (ascending by distance, length ≤ k).
    pub results: Vec<Vec<u32>>,
    /// Per-query `(squared distance, global id)` hits.
    pub hits: Vec<Vec<(f32, u32)>>,
    /// Simulated wall time of the batch.
    pub makespan_s: f64,
    /// Simulated queries/second.
    pub qps: f64,
    /// Aggregate simulated device-seconds by category.
    pub breakdown: TimeBreakdown,
    /// Aggregate search statistics.
    pub stats: BatchStats,
    /// Full stage timeline.
    pub timeline: PipelineTimeline,
}

impl SearchOutput {
    /// Assembles the output from a finished timeline and merged hits.
    pub(crate) fn from_parts(
        hits: Vec<Vec<(f32, u32)>>,
        stats: BatchStats,
        timeline: PipelineTimeline,
        num_queries: usize,
    ) -> Self {
        let makespan_s = timeline.makespan_s();
        let qps = if makespan_s > 0.0 { num_queries as f64 / makespan_s } else { 0.0 };
        let results = hits.iter().map(|h| h.iter().map(|&(_, id)| id).collect()).collect();
        let breakdown = timeline.aggregate();
        Self { results, hits, makespan_s, qps, breakdown, stats, timeline }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathweaver_datasets::{DatasetProfile, Scale};

    fn small_workload() -> pathweaver_datasets::Workload {
        DatasetProfile::deep10m_like().workload(Scale::Test, 6, 5, 11)
    }

    #[test]
    fn build_partitions_all_vectors() {
        let w = small_workload();
        let config = PathWeaverConfig::test_scale(3);
        let idx = PathWeaverIndex::build(&w.base, &config).unwrap();
        assert_eq!(idx.num_devices(), 3);
        let total: usize = idx.shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, w.base.len());
        for shard in &idx.shards {
            assert!(shard.dir_table.is_some());
            assert!(shard.ghost.is_some());
            assert!(shard.intershard.is_some());
            assert_eq!(shard.intershard.as_ref().unwrap().len(), shard.len());
        }
    }

    #[test]
    fn single_device_has_no_intershard() {
        let w = small_workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(1)).unwrap();
        assert!(idx.shards[0].intershard.is_none());
        assert!(idx.shards[0].ghost.is_some());
    }

    #[test]
    fn global_ids_roundtrip() {
        let w = small_workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        for shard in &idx.shards {
            for local in 0..shard.len() as u32 {
                let g = shard.to_global(local) as usize;
                assert_eq!(shard.vectors.row(local as usize), w.base.row(g));
            }
        }
    }

    #[test]
    fn too_small_dataset_errors() {
        let tiny = VectorSet::from_fn(10, 4, |r, c| (r + c) as f32);
        let err = PathWeaverIndex::build(&tiny, &PathWeaverConfig::test_scale(4)).unwrap_err();
        assert!(matches!(err, BuildError::TooFewVectors { .. }));
    }

    #[test]
    fn oom_detected_for_tiny_device() {
        let w = small_workload();
        let mut config = PathWeaverConfig::test_scale(2);
        config.device.mem_capacity = 1024; // 1 KiB: nothing fits.
        let err = PathWeaverIndex::build(&w.base, &config).unwrap_err();
        assert!(matches!(err, BuildError::OutOfMemory(_)));
    }

    #[test]
    fn build_report_has_all_phases() {
        let w = small_workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let r = &idx.build_report;
        assert!(r.graph_build_s > 0.0);
        assert!(r.ghost_s > 0.0);
        assert!(r.dirtable_s > 0.0);
        assert!(r.intershard_s > 0.0);
    }

    #[test]
    fn shard_local_search_finds_resident_vector() {
        let w = small_workload();
        let config = PathWeaverConfig::test_scale(2);
        let idx = PathWeaverIndex::build(&w.base, &config).unwrap();
        let shard = &idx.shards[0];
        let queries = shard.vectors.gather(&[3]);
        let params = SearchParams { k: 1, ..Default::default() };
        let out = shard.search_local(
            &queries,
            &params,
            &[pathweaver_search::EntryPolicy::Random { count: 16 }],
            true,
            &config,
        );
        assert_eq!(out.hits[0][0].1, 3);
        assert!(out.counters.dist_calcs > 0);
    }

    #[test]
    fn quantized_tier_built_and_searchable() {
        let w = small_workload();
        let config = PathWeaverConfig::test_scale(2);
        let idx = PathWeaverIndex::build(&w.base, &config).unwrap();
        assert!(idx.build_report.quantize_s > 0.0, "quantize phase must be timed");
        for shard in &idx.shards {
            let q = shard.quantized.as_ref().expect("test_scale builds the tier");
            assert_eq!(q.len(), shard.vectors.len());
            assert!(
                shard.resident_bytes().iter().any(|&(label, b)| label == "quantized" && b > 0),
                "quantized payload missing from the memory ledger"
            );
        }
        let shard = &idx.shards[0];
        let queries = shard.vectors.gather(&[3]);
        let params = SearchParams { k: 1, quantized: true, ..Default::default() };
        let out = shard.search_local(
            &queries,
            &params,
            &[pathweaver_search::EntryPolicy::Random { count: 16 }],
            true,
            &config,
        );
        assert_eq!(out.hits[0][0].1, 3);
        assert_eq!(out.hits[0][0].0, 0.0, "re-rank must restore the exact distance");
        assert!(out.counters.quant_dist_calcs > 0, "traversal must run on codes");
    }

    #[test]
    fn deleted_hits_filtered() {
        let w = small_workload();
        let config = PathWeaverConfig::test_scale(2);
        let mut idx = PathWeaverIndex::build(&w.base, &config).unwrap();
        Arc::make_mut(&mut idx.shards[0]).deleted.insert(3);
        let queries = idx.shards[0].vectors.gather(&[3]);
        let params = SearchParams { k: 2, ..Default::default() };
        let out = idx.shards[0].search_local(
            &queries,
            &params,
            &[pathweaver_search::EntryPolicy::Random { count: 16 }],
            false,
            &config,
        );
        assert!(out.hits[0].iter().all(|&(_, id)| id != 3), "tombstoned id returned");
    }

    #[test]
    fn tombstone_overfetch_widens_tight_beam() {
        let w = small_workload();
        let config = PathWeaverConfig::test_scale(2);
        let mut idx = PathWeaverIndex::build(&w.base, &config).unwrap();
        let queries = idx.shards[0].vectors.gather(&[0]);
        let entries = [pathweaver_search::EntryPolicy::Random { count: 16 }];

        // Find the query's ten nearest locals with a generous beam, then
        // tombstone all of them.
        let wide = SearchParams { k: 10, beam: 64, ..Default::default() };
        let before = idx.shards[0].search_local(&queries, &wide, &entries, false, &config);
        let victims: Vec<u32> = before.hits[0].iter().map(|&(_, id)| id).collect();
        assert_eq!(victims.len(), 10);
        for &v in &victims {
            Arc::make_mut(&mut idx.shards[0]).deleted.insert(v as usize);
        }

        // A caller whose beam equals k leaves the over-fetch no headroom
        // unless the beam widens alongside the widened k.
        let tight = SearchParams { k: 10, beam: 10, ..Default::default() };
        let out = idx.shards[0].search_local(&queries, &tight, &entries, false, &config);
        assert_eq!(out.hits[0].len(), 10, "deletions starved the result window");
        for &(_, id) in &out.hits[0] {
            assert!(!victims.contains(&id), "tombstoned id {id} returned");
        }
    }
}
