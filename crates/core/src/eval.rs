//! QPS–recall sweeps and readouts.
//!
//! The paper's headline comparisons fix a target recall (95 %) and read QPS
//! off each framework's QPS–recall curve (Figs 8–10). The sweep knob is the
//! iteration budget: more iterations → higher recall, lower QPS.

use crate::index::{PathWeaverIndex, SearchOutput};
use pathweaver_datasets::{recall_batch, GroundTruth};
use pathweaver_search::SearchParams;
use pathweaver_vector::VectorSet;
use serde::{Deserialize, Serialize};

/// One point of a QPS–recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Beam width (CAGRA's `itopk`) used; 0 when only iterations were swept.
    pub beam: usize,
    /// Iteration budget used.
    pub max_iterations: usize,
    /// Measured Recall@k against exact ground truth.
    pub recall: f64,
    /// Simulated queries/second.
    pub qps: f64,
    /// Mean iterations actually executed per query per shard search.
    pub mean_iterations: f64,
    /// Simulated makespan of the batch in seconds.
    pub makespan_s: f64,
}

/// Which search mode a sweep drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchMode {
    /// Pipelining-based path extension (the PathWeaver mode).
    Pipelined,
    /// Independent sharded search (baseline mode).
    Naive,
}

/// Runs one search in the given mode.
pub fn run_mode(
    index: &PathWeaverIndex,
    queries: &VectorSet,
    params: &SearchParams,
    mode: SearchMode,
) -> SearchOutput {
    match mode {
        SearchMode::Pipelined => index.search_pipelined(queries, params),
        SearchMode::Naive => index.search_naive(queries, params),
    }
}

/// Sweeps the iteration budget at fixed beam and measures (recall, QPS) at
/// each point (the paper's Fig 13 axis).
pub fn sweep_iterations(
    index: &PathWeaverIndex,
    queries: &VectorSet,
    ground_truth: &GroundTruth,
    base: &SearchParams,
    budgets: &[usize],
    mode: SearchMode,
) -> Vec<SweepPoint> {
    budgets
        .iter()
        .map(|&it| {
            let params = SearchParams { max_iterations: it, ..*base };
            let out = run_mode(index, queries, &params, mode);
            let recall = recall_batch(ground_truth, &out.results, base.k);
            SweepPoint {
                beam: base.beam,
                max_iterations: it,
                recall,
                qps: out.qps,
                mean_iterations: out.stats.mean_iterations(),
                makespan_s: out.makespan_s,
            }
        })
        .collect()
}

/// Sweeps the beam width (CAGRA's `itopk`) — the primary QPS–recall
/// trade-off knob of the paper's Figs 8–10. Candidates scale with the beam
/// and the expansion width `r` follows `beam/16` as in CAGRA's search-width
/// heuristics.
pub fn sweep_beam(
    index: &PathWeaverIndex,
    queries: &VectorSet,
    ground_truth: &GroundTruth,
    base: &SearchParams,
    beams: &[usize],
    mode: SearchMode,
) -> Vec<SweepPoint> {
    beams
        .iter()
        .map(|&beam| {
            let params =
                SearchParams { beam, candidates: beam, expand: (beam / 16).max(4), ..*base };
            let out = run_mode(index, queries, &params, mode);
            let recall = recall_batch(ground_truth, &out.results, base.k);
            SweepPoint {
                beam,
                max_iterations: base.max_iterations,
                recall,
                qps: out.qps,
                mean_iterations: out.stats.mean_iterations(),
                makespan_s: out.makespan_s,
            }
        })
        .collect()
}

/// Reads QPS at a target recall off a sweep, interpolating linearly between
/// neighboring points; `None` when the curve never reaches the target.
pub fn qps_at_recall(points: &[SweepPoint], target: f64) -> Option<f64> {
    let mut sorted: Vec<&SweepPoint> = points.iter().collect();
    sorted.sort_by(|a, b| a.recall.partial_cmp(&b.recall).unwrap_or(std::cmp::Ordering::Equal));
    let reachable = sorted.iter().any(|p| p.recall >= target);
    if !reachable {
        return None;
    }
    let curve: Vec<(f64, f64)> = sorted.iter().map(|p| (p.recall, p.qps)).collect();
    pathweaver_util::stats::interp_at(&curve, target)
}

/// The default iteration grid used by the reproduction harness (Fig 13).
pub fn default_budgets() -> Vec<usize> {
    vec![4, 6, 8, 12, 16, 24, 32, 48, 64]
}

/// The default beam grid used by the QPS–recall sweeps (Figs 8–10).
pub fn default_beams() -> Vec<usize> {
    vec![16, 32, 48, 64, 96, 128, 192, 256]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathWeaverConfig;
    use pathweaver_datasets::{DatasetProfile, Scale};

    #[test]
    fn sweep_monotone_recall_trend() {
        let w = DatasetProfile::sift_like().workload(Scale::Test, 10, 10, 5);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let pts = sweep_iterations(
            &idx,
            &w.queries,
            &w.ground_truth,
            &SearchParams::default(),
            &[2, 8, 32],
            SearchMode::Pipelined,
        );
        assert_eq!(pts.len(), 3);
        // Recall must not *decrease* substantially with more iterations.
        assert!(pts[2].recall >= pts[0].recall - 0.05, "{pts:?}");
        // More iterations must not be faster.
        assert!(pts[2].qps <= pts[0].qps * 1.05, "{pts:?}");
    }

    #[test]
    fn qps_at_recall_interpolates() {
        let pts = vec![
            SweepPoint {
                beam: 64,
                max_iterations: 4,
                recall: 0.80,
                qps: 1000.0,
                mean_iterations: 4.0,
                makespan_s: 0.01,
            },
            SweepPoint {
                beam: 64,
                max_iterations: 8,
                recall: 0.90,
                qps: 500.0,
                mean_iterations: 8.0,
                makespan_s: 0.02,
            },
            SweepPoint {
                beam: 64,
                max_iterations: 16,
                recall: 1.00,
                qps: 250.0,
                mean_iterations: 16.0,
                makespan_s: 0.04,
            },
        ];
        let q = qps_at_recall(&pts, 0.95).unwrap();
        assert!((q - 375.0).abs() < 1e-9);
        assert!(qps_at_recall(&pts, 0.9999).is_some());
        assert_eq!(qps_at_recall(&pts[..2], 0.95), None);
    }

    #[test]
    fn unreachable_target_is_none() {
        let pts = vec![SweepPoint {
            beam: 64,
            max_iterations: 4,
            recall: 0.5,
            qps: 100.0,
            mean_iterations: 4.0,
            makespan_s: 0.1,
        }];
        assert_eq!(qps_at_recall(&pts, 0.95), None);
    }
}
