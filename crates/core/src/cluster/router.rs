//! Scatter/gather routing with replication, retries, and failover.
//!
//! A [`Router`] owns the client side of a cluster: the peer list, the
//! consistent-hash placement of partitions onto peers, and per-replica
//! health. One [`Router::search`] call scatters the whole query batch to one
//! replica of every partition (concurrently across partitions), gathers the
//! per-partition hit lists, and merges them per query with
//! [`crate::reduce::reduce_partitions`] — the same deduplicating,
//! deterministically tie-broken top-k as every other merge in the system.
//!
//! **Failover state machine.** Each replica is `alive` or `dead` in the
//! router's view. A request failure of any kind (timeout, torn frame,
//! disconnect, remote error) marks the replica dead and moves on to the next
//! sibling in rotation — the in-flight batch is retried, not failed. A
//! successful request (or health probe) marks it alive again. When every
//! sibling of a partition has failed in the current pass, the router runs
//! [`ClusterConfig::retry_rounds`] more passes over the full replica set
//! (the health view may be stale) before giving up with
//! [`ClusterError::PartitionUnavailable`].
//!
//! **Replica choice.** The starting sibling rotates with the request
//! sequence number, so with N healthy replicas consecutive batches spread
//! round-robin — this is what turns replication into read throughput (the
//! `cluster_serve` bench measures it as sim-QPS scaling).

use super::frame::{Frame, FrameKind, SearchRequest, SearchResponse};
use super::ring::HashRing;
use super::transport::{NodeAddr, RpcError, Transport};
use crate::config::ClusterConfig;
use crate::reduce::reduce_partitions;
use parking_lot::Mutex;
use pathweaver_search::SearchParams;
use pathweaver_vector::VectorSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One node as the router sees it.
#[derive(Debug, Clone)]
pub struct Peer {
    /// Stable node id (ring placement hashes this).
    pub node_id: u64,
    /// Dial address.
    pub addr: NodeAddr,
}

/// Why a cluster search failed outright (failover exhausted).
#[derive(Debug, Clone)]
pub enum ClusterError {
    /// Every replica of `partition` failed across every retry round.
    PartitionUnavailable {
        /// The partition with no answering replica.
        partition: u32,
        /// `(node id, error)` per attempt, in attempt order.
        attempts: Vec<(u64, String)>,
    },
    /// Cluster bootstrap failed before any request was sent: an
    /// inconsistent placement, or the OS refusing a service thread.
    Bootstrap {
        /// What went wrong.
        detail: String,
    },
    /// Building a partition index failed before any node booted.
    Build(crate::index::BuildError),
    /// An internal invariant failed outside the RPC path: a local serve
    /// used as the reference oracle, or replica metadata that disagrees
    /// with its own index.
    Internal {
        /// What went wrong.
        detail: String,
    },
}

impl From<crate::index::BuildError> for ClusterError {
    fn from(e: crate::index::BuildError) -> Self {
        Self::Build(e)
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PartitionUnavailable { partition, attempts } => {
                write!(f, "partition {partition} unavailable after {} attempts", attempts.len())?;
                for (node, err) in attempts {
                    write!(f, "; node {node}: {err}")?;
                }
                Ok(())
            }
            Self::Bootstrap { detail } => write!(f, "cluster bootstrap failed: {detail}"),
            Self::Build(e) => write!(f, "partition build failed: {e}"),
            Self::Internal { detail } => write!(f, "cluster internal error: {detail}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Build(e) => Some(e),
            _ => None,
        }
    }
}

/// Result of one routed batch.
#[derive(Debug, Clone)]
pub struct ClusterOutput {
    /// Per-query merged `(squared distance, global id)` hits, ascending,
    /// length ≤ k.
    pub hits: Vec<Vec<(f32, u32)>>,
    /// Per-query global result ids (projection of `hits`).
    pub results: Vec<Vec<u32>>,
    /// Simulated wall time of the batch: partitions run concurrently on
    /// different nodes, so the batch takes as long as its slowest partition.
    pub makespan_s: f64,
    /// RPC attempts spent (≥ number of partitions).
    pub attempts: u64,
    /// Attempts that failed over to a sibling replica.
    pub failovers: u64,
}

/// Per-replica health view plus per-node simulated busy time.
struct RouterState {
    /// `alive[i]` mirrors peer `i`.
    alive: Vec<bool>,
    /// Simulated device-seconds each peer has served, summed in partition
    /// order per batch (sequential f64 reduction — bit-stable).
    busy_s: Vec<f64>,
}

struct RouterInner {
    peers: Vec<Peer>,
    /// `placement[p]` = peer indices hosting partition `p`, preference
    /// order.
    placement: Vec<Vec<usize>>,
    transport: Transport,
    config: ClusterConfig,
    state: Mutex<RouterState>,
    /// Batch sequence number; rotates the replica choice.
    seq: AtomicU64,
    /// Stops the background health thread.
    stop: AtomicBool,
}

/// The cluster client: scatters batches, gathers top-k, fails over.
pub struct Router {
    inner: Arc<RouterInner>,
    health_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("peers", &self.inner.peers.len())
            .field("partitions", &self.inner.placement.len())
            .finish_non_exhaustive()
    }
}

impl Router {
    /// Builds a router over `peers` using consistent-hash placement derived
    /// from [`ClusterConfig::seed`] — any process with the same peer list
    /// and config computes the same placement.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Bootstrap`] when the ring yields a node outside the
    /// peer list (an internal placement inconsistency) or the OS refuses
    /// the health-probe thread.
    ///
    /// # Panics
    ///
    /// Panics on an empty peer list or an invalid config.
    pub fn new(
        peers: Vec<Peer>,
        transport: Transport,
        config: ClusterConfig,
    ) -> Result<Self, ClusterError> {
        config.validate();
        assert!(!peers.is_empty(), "router needs at least one peer");
        let ids: Vec<u64> = peers.iter().map(|p| p.node_id).collect();
        let ring = HashRing::new(&ids, config.vnodes, config.seed);
        let mut placement: Vec<Vec<usize>> = Vec::with_capacity(config.partitions);
        for p in 0..config.partitions {
            let mut replicas = Vec::new();
            for node in ring.replicas(p as u64, config.replication) {
                let i =
                    ids.iter().position(|&i| i == node).ok_or_else(|| ClusterError::Bootstrap {
                        detail: format!("placement of partition {p} names unknown node {node}"),
                    })?;
                replicas.push(i);
            }
            placement.push(replicas);
        }
        let state = Mutex::new(RouterState {
            alive: vec![true; peers.len()],
            busy_s: vec![0.0; peers.len()],
        });
        let inner = Arc::new(RouterInner {
            peers,
            placement,
            transport,
            config,
            state,
            seq: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let health_thread = match inner.config.health_interval_ms {
            None => None,
            Some(interval) => {
                let inner = Arc::clone(&inner);
                let spawned = std::thread::Builder::new()
                    .name("pw-router-health".into())
                    .spawn(move || health_loop(&inner, interval));
                Some(spawned.map_err(|e| ClusterError::Bootstrap {
                    detail: format!("cannot spawn router health thread: {e}"),
                })?)
            }
        };
        Ok(Self { inner, health_thread })
    }

    /// The placement table: `placement()[p]` lists the node ids hosting
    /// partition `p` in preference order.
    pub fn placement(&self) -> Vec<Vec<u64>> {
        self.inner
            .placement
            .iter()
            .map(|replicas| replicas.iter().map(|&i| self.inner.peers[i].node_id).collect())
            .collect()
    }

    /// Current health view, one flag per peer (peer order).
    pub fn alive(&self) -> Vec<bool> {
        self.inner.state.lock().alive.clone()
    }

    /// Simulated device-seconds served per peer (peer order) — the bench's
    /// load-balance readout.
    pub fn node_busy_s(&self) -> Vec<f64> {
        self.inner.state.lock().busy_s.clone()
    }

    /// Probes every peer with a `Ping` and updates the health view.
    /// Returns the number of peers alive afterwards.
    pub fn check_health(&self) -> usize {
        check_health(&self.inner)
    }

    /// Searches the whole cluster for `queries`, scattering to one replica
    /// per partition and merging per query.
    ///
    /// # Errors
    ///
    /// [`ClusterError::PartitionUnavailable`] when some partition has no
    /// answering replica after all retry rounds.
    ///
    /// # Panics
    ///
    /// Panics on an empty batch (mirrors `serve_once`).
    pub fn search(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
    ) -> Result<ClusterOutput, ClusterError> {
        assert!(!queries.is_empty(), "empty query batch");
        let inner = &self.inner;
        // Relaxed: the sequence only rotates replica choice and labels
        // request ids; it orders no other memory.
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let partitions = inner.placement.len();

        let mut slots: Vec<Option<Result<PartitionReply, ClusterError>>> =
            (0..partitions).map(|_| None).collect();
        // The scope joins every scatter thread at its close brace and
        // re-raises any panic there — no explicit join/expect needed.
        std::thread::scope(|scope| {
            for (p, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || {
                    *slot = Some(serve_partition(inner, p, seq, queries, params));
                });
            }
        });

        let mut per_partition = Vec::with_capacity(partitions);
        let mut makespan_s = 0.0f64;
        let mut attempts = 0u64;
        let mut failovers = 0u64;
        {
            // Busy time is credited here, in partition order, single-
            // threaded: the f64 sums are bit-stable run to run.
            let mut st = self.inner.state.lock();
            for (p, slot) in slots.into_iter().enumerate() {
                // Every slot is filled unless its scatter thread died, and a
                // dead thread would have panicked the scope above; an empty
                // slot still degrades to a typed error, not an unwrap.
                let reply = slot.ok_or_else(|| ClusterError::PartitionUnavailable {
                    partition: p as u32,
                    attempts: Vec::new(),
                })??;
                st.busy_s[reply.peer_index] += reply.response.makespan_s;
                makespan_s = makespan_s.max(reply.response.makespan_s);
                attempts += reply.attempts;
                failovers += reply.failovers;
                per_partition.push(reply.response.hits);
            }
        }
        let hits = reduce_partitions(&per_partition, params.k);
        let results: Vec<Vec<u32>> =
            hits.iter().map(|h| h.iter().map(|&(_, id)| id).collect()).collect();
        if pathweaver_obs::enabled() {
            let r = pathweaver_obs::registry();
            r.counter("cluster.requests").inc();
            r.counter("cluster.queries").add(queries.len() as u64);
            r.counter("cluster.rpc.attempts").add(attempts);
            r.counter("cluster.failovers").add(failovers);
        }
        Ok(ClusterOutput { hits, results, makespan_s, attempts, failovers })
    }

    /// Stops the health thread (if any). Called automatically on drop.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        // Relaxed: one-way latch polled by the health loop between sleeps.
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.health_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.teardown();
    }
}

/// One partition's successful scatter.
struct PartitionReply {
    peer_index: usize,
    response: SearchResponse,
    attempts: u64,
    failovers: u64,
}

/// Tries replicas of partition `p` in rotated, alive-first order; marks
/// failures dead and keeps going. Extra rounds re-probe the full set.
fn serve_partition(
    inner: &RouterInner,
    p: usize,
    seq: u64,
    queries: &VectorSet,
    params: &SearchParams,
) -> Result<PartitionReply, ClusterError> {
    let replicas = &inner.placement[p];
    let rot = (seq as usize + p) % replicas.len();
    let rotated: Vec<usize> =
        (0..replicas.len()).map(|i| replicas[(rot + i) % replicas.len()]).collect();
    let mut attempts = 0u64;
    let mut failures: Vec<(u64, String)> = Vec::new();

    for round in 0..=inner.config.retry_rounds {
        // Round 0 prefers replicas believed alive (stable order); later
        // rounds re-try everything — the health view may be stale.
        let order: Vec<usize> = if round == 0 {
            let alive = inner.state.lock().alive.clone();
            let mut o: Vec<usize> = rotated.iter().copied().filter(|&i| alive[i]).collect();
            o.extend(rotated.iter().copied().filter(|&i| !alive[i]));
            o
        } else {
            rotated.clone()
        };
        for peer_index in order {
            attempts += 1;
            let rid = (seq << 16) | (p as u64 & 0xffff);
            match attempt(inner, peer_index, rid, p as u32, queries, params) {
                Ok(response) => {
                    let mut st = inner.state.lock();
                    st.alive[peer_index] = true;
                    return Ok(PartitionReply {
                        peer_index,
                        response,
                        attempts,
                        failovers: failures.len() as u64,
                    });
                }
                Err(e) => {
                    inner.state.lock().alive[peer_index] = false;
                    if pathweaver_obs::enabled() {
                        let r = pathweaver_obs::registry();
                        r.counter("cluster.rpc.failures").inc();
                        match &e {
                            RpcError::Timeout => r.counter("cluster.rpc.timeouts").inc(),
                            RpcError::Torn { .. } => r.counter("cluster.rpc.torn").inc(),
                            _ => r.counter("cluster.rpc.errors").inc(),
                        };
                    }
                    failures.push((inner.peers[peer_index].node_id, e.to_string()));
                }
            }
        }
    }
    Err(ClusterError::PartitionUnavailable { partition: p as u32, attempts: failures })
}

/// One RPC attempt against one replica.
fn attempt(
    inner: &RouterInner,
    peer_index: usize,
    rid: u64,
    partition: u32,
    queries: &VectorSet,
    params: &SearchParams,
) -> Result<SearchResponse, RpcError> {
    let mut conn = inner.transport.connect(&inner.peers[peer_index].addr)?;
    let req = SearchRequest { partition, params: *params, queries: queries.clone() };
    let frame = Frame { kind: FrameKind::Search, request_id: rid, payload: req.encode() };
    conn.send(&frame)?;
    let reply = conn.recv(Some(inner.config.request_timeout_ms))?;
    if reply.request_id != rid {
        return Err(RpcError::Malformed { detail: "response id mismatch".into() });
    }
    match reply.kind {
        FrameKind::Hits => {
            let resp = SearchResponse::decode(&reply.payload)
                .map_err(|e| RpcError::Malformed { detail: e.to_string() })?;
            if resp.hits.len() != queries.len() {
                return Err(RpcError::Malformed { detail: "hit row count mismatch".into() });
            }
            Ok(resp)
        }
        FrameKind::Error => Err(RpcError::Remote { detail: super::node::error_detail(&reply) }),
        _ => Err(RpcError::Malformed { detail: "unexpected response kind".into() }),
    }
}

/// Pings every peer once, updating the health view.
fn check_health(inner: &RouterInner) -> usize {
    let mut alive_count = 0;
    for (i, peer) in inner.peers.iter().enumerate() {
        let ok = ping(inner, peer);
        let mut st = inner.state.lock();
        st.alive[i] = ok;
        if ok {
            alive_count += 1;
        }
    }
    if pathweaver_obs::enabled() {
        let r = pathweaver_obs::registry();
        r.counter("cluster.health.probes").add(inner.peers.len() as u64);
        r.gauge("cluster.health.alive").set(alive_count as f64);
    }
    alive_count
}

fn ping(inner: &RouterInner, peer: &Peer) -> bool {
    let Ok(mut conn) = inner.transport.connect(&peer.addr) else { return false };
    if conn.send(&Frame::control(FrameKind::Ping, 0)).is_err() {
        return false;
    }
    matches!(
        conn.recv(Some(inner.config.request_timeout_ms)),
        Ok(Frame { kind: FrameKind::Pong, .. })
    )
}

/// Background prober: sleeps in short slices so shutdown is prompt.
fn health_loop(inner: &Arc<RouterInner>, interval_ms: u64) {
    loop {
        let mut slept = 0;
        while slept < interval_ms {
            // Relaxed: one-way latch; a stale read costs one extra slice.
            if inner.stop.load(Ordering::Relaxed) {
                return;
            }
            let slice = (interval_ms - slept).min(20);
            std::thread::sleep(Duration::from_millis(slice));
            slept += slice;
        }
        // Relaxed: same latch as above.
        if inner.stop.load(Ordering::Relaxed) {
            return;
        }
        check_health(inner);
    }
}
