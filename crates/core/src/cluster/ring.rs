//! Consistent-hash placement of partitions onto nodes.
//!
//! Each node projects `vnodes` seeded points onto a `u64` ring; a partition
//! hashes to a point and its replicas are the next `r` *distinct* nodes
//! clockwise. The classic properties follow: placement is a pure function of
//! `(node set, seed)` — every router and test computes the same assignment
//! without coordination — and removing a node only remaps the partitions
//! that lived on it, which is what keeps failover cheap.
//!
//! Hashing reuses [`pathweaver_util::seed_from_parts`] (SplitMix64 over a
//! labelled domain), the same primitive every other seeded component of the
//! reproduction derives randomness from.

use pathweaver_util::seed_from_parts;

/// A seeded consistent-hash ring over node ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, node id)`, sorted by position.
    points: Vec<(u64, u64)>,
    /// Distinct node ids on the ring.
    num_nodes: usize,
    seed: u64,
}

impl HashRing {
    /// Builds a ring with `vnodes` points per node.
    ///
    /// # Panics
    ///
    /// Panics on an empty node set or zero `vnodes`.
    pub fn new(nodes: &[u64], vnodes: usize, seed: u64) -> Self {
        assert!(!nodes.is_empty(), "ring needs at least one node");
        assert!(vnodes > 0, "need at least one virtual node per node");
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for &node in nodes {
            for v in 0..vnodes {
                let h = seed_from_parts(seed, "ring-vnode", node ^ (v as u64) << 32);
                points.push((h, node));
            }
        }
        // Position ties (astronomically unlikely) break by node id so the
        // sort is total and placement stays deterministic.
        points.sort_unstable();
        Self { points, num_nodes: distinct(nodes), seed }
    }

    /// Number of distinct nodes on the ring.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The first `count` distinct nodes clockwise from `key`'s ring
    /// position — the replica set of partition `key`. Returns fewer than
    /// `count` nodes only when the ring itself has fewer.
    pub fn replicas(&self, key: u64, count: usize) -> Vec<u64> {
        let h = seed_from_parts(self.seed, "ring-key", key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(count.min(self.num_nodes));
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == count {
                    break;
                }
            }
        }
        out
    }
}

fn distinct(nodes: &[u64]) -> usize {
    let set: std::collections::BTreeSet<u64> = nodes.iter().copied().collect();
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_are_distinct_and_sized() {
        let ring = HashRing::new(&[0, 1, 2, 3], 16, 42);
        for key in 0..32 {
            let r = ring.replicas(key, 3);
            assert_eq!(r.len(), 3);
            let set: std::collections::BTreeSet<u64> = r.iter().copied().collect();
            assert_eq!(set.len(), 3, "replicas must be distinct nodes");
        }
    }

    #[test]
    fn count_clamped_to_ring_size() {
        let ring = HashRing::new(&[5, 9], 8, 1);
        let r = ring.replicas(0, 4);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn placement_is_deterministic() {
        let a = HashRing::new(&[0, 1, 2], 16, 7);
        let b = HashRing::new(&[0, 1, 2], 16, 7);
        for key in 0..64 {
            assert_eq!(a.replicas(key, 2), b.replicas(key, 2));
        }
    }

    #[test]
    fn removal_only_remaps_owned_keys() {
        let full = HashRing::new(&[0, 1, 2, 3], 32, 9);
        let reduced = HashRing::new(&[0, 1, 3], 32, 9);
        let mut moved = 0;
        for key in 0..256 {
            let before = full.replicas(key, 1)[0];
            let after = reduced.replicas(key, 1)[0];
            if before != 2 {
                assert_eq!(before, after, "key {key} was not on the removed node");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "some keys lived on the removed node");
    }

    #[test]
    fn spread_is_roughly_balanced() {
        let ring = HashRing::new(&[0, 1, 2, 3], 64, 3);
        let mut counts = [0usize; 4];
        for key in 0..4096 {
            counts[ring.replicas(key, 1)[0] as usize] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!(c > 4096 / 4 / 4, "node {node} owns {c}/4096 keys — far below a fair share");
        }
    }
}
