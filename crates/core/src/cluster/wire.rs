//! Little-endian byte codec for the cluster wire protocol.
//!
//! The vendored `serde` shim is too minimal for wire use (no binary format),
//! so frames are encoded by hand: fixed-width little-endian integers, floats
//! as their IEEE-754 bit patterns (`f32::to_bits` round-trips exactly — the
//! cluster's bit-identity contract depends on it), and length-prefixed
//! repeated fields. Every read is bounds-checked; a short or trailing-garbage
//! payload surfaces as [`WireError`] instead of a panic, because payload
//! bytes cross a trust boundary (a torn frame, a buggy peer).

/// A bounds or framing violation while decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// What the decoder was reading.
    pub context: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload at byte {} while reading {}", self.offset, self.context)
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64` (cluster sizes are communicated in the
    /// 64-bit domain so 32-bit peers cannot disagree).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked decoder over a payload slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps `buf` for sequential decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError { offset: self.pos, context })?;
        if end > self.buf.len() {
            return Err(WireError { offset: self.pos, context });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let s = self.take(4, context)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let s = self.take(8, context)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads an `f32` from its bit pattern.
    pub fn get_f32(&mut self, context: &'static str) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.get_u32(context)?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64(context)?))
    }

    /// Reads a scalar `usize` (`u64` on the wire).
    pub fn get_usize(&mut self, context: &'static str) -> Result<usize, WireError> {
        let at = self.pos;
        let v = self.get_u64(context)?;
        usize::try_from(v).map_err(|_| WireError { offset: at, context })
    }

    /// Reads a collection length (`u64` on the wire) and checks the
    /// `min_elem_bytes`-per-element data it announces fits the remaining
    /// payload, so a corrupt length cannot trigger a huge allocation.
    pub fn get_len(
        &mut self,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, WireError> {
        let at = self.pos;
        let n = self.get_usize(context)?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_elem_bytes.max(1)).is_none_or(|need| need > remaining) {
            return Err(WireError { offset: at, context });
        }
        Ok(n)
    }

    /// Fails unless every payload byte was consumed — trailing garbage means
    /// the peer and we disagree about the schema.
    pub fn finish(self, context: &'static str) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError { offset: self.pos, context })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_f32(-0.0);
        w.put_f64(f64::NAN);
        w.put_len(12);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f32("d").unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.get_f64("e").unwrap().is_nan());
        assert_eq!(r.get_u64("f").unwrap(), 12);
        r.finish("tail").unwrap();
    }

    #[test]
    fn short_read_is_an_error_not_a_panic() {
        let mut r = WireReader::new(&[1, 2]);
        let err = r.get_u32("field").unwrap_err();
        assert_eq!(err.offset, 0);
        assert_eq!(err.context, "field");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut r = WireReader::new(&[1, 2, 3]);
        r.get_u8("x").unwrap();
        assert!(r.finish("tail").is_err());
    }

    #[test]
    fn absurd_length_rejected_before_allocating() {
        let mut w = WireWriter::new();
        w.put_len(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_len(4, "rows").is_err());
    }
}
