//! Length-prefixed, checksummed RPC frames and their message payloads.
//!
//! Every cluster message travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        0x50575250 ("PWRP"), little-endian
//! 4       1     kind         Ping=1 Pong=2 Search=3 Hits=4 Error=5
//! 5       8     request id   echoed verbatim in the response
//! 13      4     payload len  bytes following the header
//! 17      4     crc32        over the payload bytes only
//! 21      …     payload      kind-specific, see [`SearchRequest`] etc.
//! ```
//!
//! The length prefix makes frames self-delimiting over a byte stream; the
//! CRC turns a torn or bit-flipped frame into a detected
//! [`FrameError::Corrupt`] instead of a silently wrong answer. Decoding
//! never trusts the peer: an oversized length, a bad magic, a checksum
//! mismatch, or a truncated buffer all fail loudly and the router treats the
//! replica as faulty (see `Router`).

use super::wire::{WireError, WireReader, WireWriter};
use pathweaver_search::{DgsParams, SearchParams};
use pathweaver_vector::VectorSet;

/// Frame magic: "PWRP" read as a little-endian `u32`.
pub const FRAME_MAGIC: u32 = 0x5057_5250;
/// Fixed header size in bytes (magic + kind + request id + len + crc).
pub const FRAME_HEADER_LEN: usize = 21;
/// Upper bound on a payload — large enough for any realistic query batch,
/// small enough that a corrupt length cannot OOM the receiver.
pub const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Health probe.
    Ping,
    /// Health probe answer.
    Pong,
    /// A scatter request: search one partition for a query batch.
    Search,
    /// A gather response: per-query hits plus simulated cost.
    Hits,
    /// The peer understood the request but could not serve it.
    Error,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            Self::Ping => 1,
            Self::Pong => 2,
            Self::Search => 3,
            Self::Hits => 4,
            Self::Error => 5,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(Self::Ping),
            2 => Some(Self::Pong),
            3 => Some(Self::Search),
            4 => Some(Self::Hits),
            5 => Some(Self::Error),
            _ => None,
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does — a torn frame.
    Incomplete {
        /// Total bytes the frame claims to occupy (0 when even the header
        /// is short).
        need: usize,
    },
    /// The bytes cannot be a frame (bad magic/kind/length/checksum).
    Corrupt {
        /// Human-readable detail for reports and logs.
        detail: &'static str,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Incomplete { need } => write!(f, "torn frame: need {need} bytes"),
            Self::Corrupt { detail } => write!(f, "corrupt frame: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One wire frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Message kind.
    pub kind: FrameKind,
    /// Request id; responses echo the request's id so the router can reject
    /// stale answers on a reused connection.
    pub request_id: u64,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame with an empty payload.
    pub fn control(kind: FrameKind, request_id: u64) -> Self {
        Self { kind, request_id, payload: Vec::new() }
    }

    /// Encodes header + payload into one byte vector.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_FRAME_PAYLOAD`] — a sender bug,
    /// not a peer behaviour.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.payload.len() <= MAX_FRAME_PAYLOAD as usize, "frame payload too large");
        let mut w = WireWriter::new();
        w.put_u32(FRAME_MAGIC);
        w.put_u8(self.kind.to_byte());
        w.put_u64(self.request_id);
        w.put_u32(self.payload.len() as u32);
        w.put_u32(pathweaver_util::crc32(&self.payload));
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&self.payload);
        bytes
    }

    /// Decodes the frame at the start of `bytes`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`FrameError::Incomplete`] when `bytes` ends mid-frame (torn),
    /// [`FrameError::Corrupt`] on bad magic, kind, length, or checksum.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), FrameError> {
        if bytes.len() < FRAME_HEADER_LEN {
            return Err(FrameError::Incomplete { need: FRAME_HEADER_LEN });
        }
        let mut r = WireReader::new(&bytes[..FRAME_HEADER_LEN]);
        let ok = |e: WireError| FrameError::Corrupt { detail: e.context };
        let magic = r.get_u32("magic").map_err(ok)?;
        if magic != FRAME_MAGIC {
            return Err(FrameError::Corrupt { detail: "bad magic" });
        }
        let kind = FrameKind::from_byte(r.get_u8("kind").map_err(ok)?)
            .ok_or(FrameError::Corrupt { detail: "unknown frame kind" })?;
        let request_id = r.get_u64("request_id").map_err(ok)?;
        let payload_len = r.get_u32("payload_len").map_err(ok)?;
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Corrupt { detail: "payload length over limit" });
        }
        let crc = r.get_u32("crc").map_err(ok)?;
        let total = FRAME_HEADER_LEN + payload_len as usize;
        if bytes.len() < total {
            return Err(FrameError::Incomplete { need: total });
        }
        let payload = bytes[FRAME_HEADER_LEN..total].to_vec();
        if pathweaver_util::crc32(&payload) != crc {
            return Err(FrameError::Corrupt { detail: "checksum mismatch" });
        }
        Ok((Self { kind, request_id, payload }, total))
    }
}

/// A scatter request: search partition `partition` for every query row.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// Which partition of the collection to search.
    pub partition: u32,
    /// Search parameters, applied identically on every replica.
    pub params: SearchParams,
    /// The query batch; the whole client batch travels as one request so
    /// per-row entry seeding (which depends on the row index within the
    /// batch) matches single-node serving bit-for-bit.
    pub queries: VectorSet,
}

impl SearchRequest {
    /// Encodes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(self.partition);
        encode_params(&mut w, &self.params);
        w.put_len(self.queries.dim());
        w.put_len(self.queries.len());
        for row in self.queries.iter() {
            for &v in row {
                w.put_f32(v);
            }
        }
        w.into_bytes()
    }

    /// Decodes a request payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(payload);
        let partition = r.get_u32("partition")?;
        let params = decode_params(&mut r)?;
        let dim = r.get_usize("dim")?;
        if dim == 0 || dim > (1 << 20) {
            return Err(WireError { offset: 0, context: "dim out of range" });
        }
        let rows = r.get_len(dim * 4, "rows")?;
        let mut queries = VectorSet::empty(dim);
        let mut buf = vec![0.0f32; dim];
        for _ in 0..rows {
            for v in &mut buf {
                *v = r.get_f32("query component")?;
            }
            queries.push(&buf);
        }
        r.finish("request tail")?;
        Ok(Self { partition, params, queries })
    }
}

/// A gather response: hits per query row, in cluster-global ids.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// `hits[q]` = ascending `(squared distance, global id)` for query `q`.
    pub hits: Vec<Vec<(f32, u32)>>,
    /// Simulated device-seconds this request occupied on the node — the
    /// router's per-node load accounting sums these.
    pub makespan_s: f64,
}

impl SearchResponse {
    /// Encodes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_f64(self.makespan_s);
        w.put_len(self.hits.len());
        for per_query in &self.hits {
            w.put_len(per_query.len());
            for &(d, id) in per_query {
                w.put_f32(d);
                w.put_u32(id);
            }
        }
        w.into_bytes()
    }

    /// Decodes a response payload.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(payload);
        let makespan_s = r.get_f64("makespan")?;
        let queries = r.get_len(8, "hit rows")?;
        let mut hits = Vec::with_capacity(queries);
        for _ in 0..queries {
            let n = r.get_len(8, "hit count")?;
            let mut per_query = Vec::with_capacity(n);
            for _ in 0..n {
                let d = r.get_f32("hit distance")?;
                let id = r.get_u32("hit id")?;
                per_query.push((d, id));
            }
            hits.push(per_query);
        }
        r.finish("response tail")?;
        Ok(Self { hits, makespan_s })
    }
}

fn encode_params(w: &mut WireWriter, p: &SearchParams) {
    w.put_len(p.k);
    w.put_len(p.beam);
    w.put_len(p.candidates);
    w.put_len(p.expand);
    w.put_len(p.max_iterations);
    w.put_u32(p.hash_bits);
    match p.dgs {
        None => w.put_u8(0),
        Some(d) => {
            w.put_u8(1);
            w.put_f64(d.keep_ratio);
            w.put_f64(d.cooldown_ratio);
            w.put_u8(u8::from(d.threshold_mode));
        }
    }
    w.put_u8(u8::from(p.random_discard));
    w.put_len(p.patience);
    w.put_u8(u8::from(p.quantized));
    w.put_u64(p.seed);
}

fn decode_params(r: &mut WireReader<'_>) -> Result<SearchParams, WireError> {
    let k = r.get_usize("k")?;
    let beam = r.get_usize("beam")?;
    let candidates = r.get_usize("candidates")?;
    let expand = r.get_usize("expand")?;
    let max_iterations = r.get_usize("max_iterations")?;
    let hash_bits = r.get_u32("hash_bits")?;
    let dgs = match r.get_u8("dgs flag")? {
        0 => None,
        _ => Some(DgsParams {
            keep_ratio: r.get_f64("keep_ratio")?,
            cooldown_ratio: r.get_f64("cooldown_ratio")?,
            threshold_mode: r.get_u8("threshold_mode")? != 0,
        }),
    };
    let random_discard = r.get_u8("random_discard")? != 0;
    let patience = r.get_usize("patience")?;
    let quantized = r.get_u8("quantized")? != 0;
    let seed = r.get_u64("seed")?;
    Ok(SearchParams {
        k,
        beam,
        candidates,
        expand,
        max_iterations,
        hash_bits,
        dgs,
        random_discard,
        patience,
        quantized,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> SearchRequest {
        let mut queries = VectorSet::empty(3);
        queries.push(&[1.0, -2.5, 0.25]);
        queries.push(&[0.0, f32::MIN_POSITIVE, 3.75]);
        SearchRequest {
            partition: 2,
            params: SearchParams {
                dgs: Some(DgsParams::default()),
                quantized: true,
                ..SearchParams::default()
            },
            queries,
        }
    }

    #[test]
    fn frame_round_trips() {
        let f = Frame { kind: FrameKind::Search, request_id: 42, payload: vec![9, 8, 7] };
        let bytes = f.encode();
        let (back, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn torn_frame_detected() {
        let f = Frame { kind: FrameKind::Hits, request_id: 1, payload: vec![0; 100] };
        let bytes = f.encode();
        for cut in [0, 5, FRAME_HEADER_LEN, bytes.len() - 1] {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, FrameError::Incomplete { .. }), "cut={cut}: {err:?}");
        }
    }

    #[test]
    fn bit_flip_detected() {
        let f = Frame { kind: FrameKind::Hits, request_id: 1, payload: vec![0xaa; 32] };
        let mut bytes = f.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::Corrupt { .. })));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Frame::control(FrameKind::Ping, 0).encode();
        bytes[0] ^= 0xff;
        assert!(matches!(Frame::decode(&bytes), Err(FrameError::Corrupt { detail: "bad magic" })));
    }

    #[test]
    fn search_request_round_trips_bitwise() {
        let req = sample_request();
        let back = SearchRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.partition, req.partition);
        assert_eq!(back.params, req.params);
        assert_eq!(back.queries.len(), req.queries.len());
        for q in 0..req.queries.len() {
            let a: Vec<u32> = req.queries.row(q).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = back.queries.row(q).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "query {q} must round-trip bit-exactly");
        }
    }

    #[test]
    fn search_response_round_trips() {
        let resp = SearchResponse {
            hits: vec![vec![(0.5, 3), (1.5, 9)], vec![], vec![(2.25, 0)]],
            makespan_s: 0.001953125,
        };
        let back = SearchResponse::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn truncated_payload_is_wire_error() {
        let req = sample_request();
        let bytes = req.encode();
        assert!(SearchRequest::decode(&bytes[..bytes.len() - 2]).is_err());
    }
}
