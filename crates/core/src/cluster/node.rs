//! The per-node front end: a serve endpoint speaking the cluster protocol.
//!
//! A [`ClusterNode`] owns one or more partition replicas (each an
//! [`PathWeaverIndex`] plus a local→cluster-global id map) and answers
//! `Search` frames by running the request's whole query batch through
//! [`serve_once`] — one exclusive micro-batch per request. That exclusivity
//! is load-bearing: per-row entry seeding depends on the row's index within
//! its batch, so coalescing two requests would change results. Keeping each
//! request a private batch is what makes a 1-node cluster bit-identical to
//! calling [`serve_once`] directly.
//!
//! Nodes also carry an optional [`FaultScript`] — scripted crash/torn/delay
//! behaviour that the `check_cluster` CI gate uses to prove the router's
//! failover keeps every in-flight query answered. Production nodes run with
//! the default (empty) script.

use super::frame::{Frame, FrameKind, SearchRequest, SearchResponse};
use super::transport::{Connection, Listener, NodeAddr, RpcError};
use crate::index::PathWeaverIndex;
use crate::serve::serve_once;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One partition replica hosted by a node.
#[derive(Clone)]
pub struct NodeReplica {
    /// Partition this replica serves.
    pub partition: u32,
    /// The partition's index. Replicas of the same partition share the
    /// `Arc` when co-hosted in one process.
    pub index: Arc<PathWeaverIndex>,
    /// Local row id → cluster-global id.
    pub global_ids: Arc<Vec<u32>>,
}

impl std::fmt::Debug for NodeReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeReplica")
            .field("partition", &self.partition)
            .field("rows", &self.global_ids.len())
            .finish()
    }
}

/// A window of search-request ordinals that respond late.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayWindow {
    /// First delayed ordinal (0-based, node-wide).
    pub from: u64,
    /// One past the last delayed ordinal.
    pub to: u64,
    /// How late each delayed response is.
    pub delay_ms: u64,
}

/// Scripted faults for tests and the `check_cluster` gate; the default is
/// fault-free.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    /// After receiving this many search requests, the node "crashes": the
    /// triggering request is swallowed without a response (a kill mid-batch)
    /// and the node stops accepting or answering anything afterwards.
    pub crash_after_requests: Option<u64>,
    /// Search ordinals whose response frame is truncated mid-payload.
    pub torn_responses: BTreeSet<u64>,
    /// Search ordinals whose response is delayed — a timeout storm when the
    /// delay exceeds the router's request budget.
    pub delay: Option<DelayWindow>,
}

/// Shared node state visible to every connection handler.
struct NodeShared {
    node_id: u64,
    replicas: Vec<NodeReplica>,
    fault: FaultScript,
    /// Node-wide count of search requests received; fault ordinals index
    /// into this sequence.
    search_seq: AtomicU64,
    /// One-way crash latch (see [`FaultScript::crash_after_requests`]).
    crashed: AtomicBool,
    /// Shutdown latch.
    stop: AtomicBool,
}

impl NodeShared {
    fn is_stopping(&self) -> bool {
        // Relaxed: both flags are one-way latches polled between requests;
        // a stale read only delays thread exit by one poll interval.
        self.stop.load(Ordering::Relaxed) || self.crashed.load(Ordering::Relaxed)
    }
}

/// A running cluster node: listener thread plus one handler thread per
/// accepted connection.
pub struct ClusterNode {
    shared: Arc<NodeShared>,
    addr: NodeAddr,
    listener_thread: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterNode")
            .field("node_id", &self.shared.node_id)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ClusterNode {
    /// Starts serving `replicas` on `listener`.
    ///
    /// # Errors
    ///
    /// [`super::ClusterError::Bootstrap`] when the OS refuses the listener
    /// thread; nothing is left running.
    pub fn spawn(
        node_id: u64,
        replicas: Vec<NodeReplica>,
        listener: Box<dyn Listener>,
        fault: FaultScript,
    ) -> Result<Self, super::ClusterError> {
        let addr = listener.local_addr();
        let shared = Arc::new(NodeShared {
            node_id,
            replicas,
            fault,
            search_seq: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let listener_thread = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name(format!("pw-node-{node_id}"))
                .spawn(move || accept_loop(listener, &shared, &handlers))
                .map_err(|e| super::ClusterError::Bootstrap {
                    detail: format!("cannot spawn node {node_id} listener thread: {e}"),
                })?
        };
        Ok(Self { shared, addr, listener_thread: Some(listener_thread), handlers })
    }

    /// The address peers dial to reach this node.
    pub fn addr(&self) -> NodeAddr {
        self.addr.clone()
    }

    /// This node's id.
    pub fn node_id(&self) -> u64 {
        self.shared.node_id
    }

    /// Whether the fault script has tripped the crash latch.
    pub fn is_crashed(&self) -> bool {
        // Relaxed: observational read of a one-way latch; no data rides it.
        self.shared.crashed.load(Ordering::Relaxed)
    }

    /// Stops the node: no new connections, handler threads joined. Pending
    /// requests on open connections are answered before their handler sees
    /// the stop flag.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        // Relaxed: one-way latch; handler loops poll it between requests.
        self.shared.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.listener_thread.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self.handlers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn accept_loop(
    mut listener: Box<dyn Listener>,
    shared: &Arc<NodeShared>,
    handlers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.is_stopping() {
        match listener.accept(20) {
            Ok(Some(conn)) => {
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("pw-node-{}-conn", shared.node_id))
                    .spawn(move || connection_loop(conn, &shared));
                // If the OS refuses a handler thread the connection is
                // dropped with the closure — the dialer sees a dead peer
                // and the router fails over to a sibling replica.
                if let Ok(h) = spawned {
                    handlers.lock().push(h);
                }
            }
            Ok(None) => {}
            Err(_) => break,
        }
    }
    // Dropping the listener here closes the accept queue: once crashed or
    // stopped, new dials are refused — the router observes a dead peer.
}

fn connection_loop(mut conn: Box<dyn Connection>, shared: &Arc<NodeShared>) {
    loop {
        if shared.is_stopping() {
            return;
        }
        let frame = match conn.recv(Some(50)) {
            Ok(f) => f,
            Err(RpcError::Timeout) => continue,
            Err(RpcError::Torn { detail }) => {
                // A damaged *request* still gets an answer: the router needs
                // the failure signal to retry on a sibling replica.
                let _ = conn.send(&error_frame(0, &format!("torn request: {detail}")));
                return;
            }
            Err(_) => return,
        };
        match frame.kind {
            FrameKind::Ping => {
                if pathweaver_obs::enabled() {
                    pathweaver_obs::registry().counter("cluster.node.pings").inc();
                }
                if conn.send(&Frame::control(FrameKind::Pong, frame.request_id)).is_err() {
                    return;
                }
            }
            FrameKind::Search => {
                if !handle_search(conn.as_mut(), shared, &frame) {
                    return;
                }
            }
            _ => {
                let _ = conn.send(&error_frame(frame.request_id, "unexpected frame kind"));
                return;
            }
        }
    }
}

/// Serves one search request; returns `false` when the connection should
/// close (crash, send failure).
fn handle_search(conn: &mut dyn Connection, shared: &Arc<NodeShared>, frame: &Frame) -> bool {
    // Relaxed: the ordinal only sequences scripted faults and metrics; no
    // other memory is published through it.
    let ordinal = shared.search_seq.fetch_add(1, Ordering::Relaxed);
    if let Some(after) = shared.fault.crash_after_requests {
        if ordinal >= after {
            // The kill-mid-batch fault: the request was received and is now
            // swallowed. The latch also stops the accept loop.
            // Relaxed: one-way latch, polled; see NodeShared::is_stopping.
            shared.crashed.store(true, Ordering::Relaxed);
            return false;
        }
    }
    if let Some(w) = shared.fault.delay {
        if ordinal >= w.from && ordinal < w.to {
            std::thread::sleep(Duration::from_millis(w.delay_ms));
        }
    }
    let req = match SearchRequest::decode(&frame.payload) {
        Ok(r) => r,
        Err(e) => return conn.send(&error_frame(frame.request_id, &e.to_string())).is_ok(),
    };
    let Some(replica) = shared.replicas.iter().find(|r| r.partition == req.partition) else {
        let msg = format!("node {} does not host partition {}", shared.node_id, req.partition);
        return conn.send(&error_frame(frame.request_id, &msg)).is_ok();
    };
    if req.queries.is_empty() || req.queries.dim() != replica.index.dim() {
        return conn.send(&error_frame(frame.request_id, "empty or mis-sized batch")).is_ok();
    }
    if pathweaver_obs::enabled() {
        let r = pathweaver_obs::registry();
        r.counter("cluster.node.requests").inc();
        r.counter("cluster.node.queries").add(req.queries.len() as u64);
    }
    // One exclusive micro-batch per request (see module docs); a panic from
    // hostile parameters is downgraded to an Error frame so one bad request
    // cannot wedge the node.
    let served =
        catch_unwind(AssertUnwindSafe(|| serve_once(&replica.index, &req.queries, &req.params)));
    let out = match served {
        Ok(Ok(out)) => out,
        Ok(Err(e)) => {
            let msg = format!("search failed: {e}");
            return conn.send(&error_frame(frame.request_id, &msg)).is_ok();
        }
        Err(_) => {
            return conn.send(&error_frame(frame.request_id, "search panicked")).is_ok();
        }
    };
    let mut hits: Vec<Vec<(f32, u32)>> = Vec::with_capacity(out.hits.len());
    for per_query in out.hits {
        let mut mapped = Vec::with_capacity(per_query.len());
        for (d, id) in per_query {
            // A local id outside the replica's id map means the replica
            // metadata and its index disagree — answer with an error frame
            // so the router fails over, instead of unwinding the handler.
            let Some(&global) = replica.global_ids.get(id as usize) else {
                let msg = format!("local id {id} outside replica id map");
                return conn.send(&error_frame(frame.request_id, &msg)).is_ok();
            };
            mapped.push((d, global));
        }
        hits.push(mapped);
    }
    let resp = SearchResponse { hits, makespan_s: out.makespan_s };
    let reply =
        Frame { kind: FrameKind::Hits, request_id: frame.request_id, payload: resp.encode() };
    if shared.fault.torn_responses.contains(&ordinal) {
        // Truncate mid-payload: enough bytes that the header parses, not
        // enough to satisfy its declared length.
        let keep = super::frame::FRAME_HEADER_LEN + resp.encode().len() / 2;
        let _ = conn.send_torn(&reply, keep);
        return false;
    }
    conn.send(&reply).is_ok()
}

fn error_frame(request_id: u64, detail: &str) -> Frame {
    Frame { kind: FrameKind::Error, request_id, payload: detail.as_bytes().to_vec() }
}

/// Decodes the detail string of an `Error` frame.
pub fn error_detail(frame: &Frame) -> String {
    String::from_utf8_lossy(&frame.payload).into_owned()
}
