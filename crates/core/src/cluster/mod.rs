//! Multi-node cluster layer: RPC routing, replication, failover.
//!
//! The ring executor scales PathWeaver across simulated devices inside one
//! process; this module scales it across *hosts* — the serve layer becomes
//! the per-node front end and a [`Router`] becomes the cluster's query
//! entry point. The design is deliberately minimal and fully deterministic
//! where it matters:
//!
//! - [`wire`] / [`frame`]: a hand-rolled little-endian codec under
//!   length-prefixed, CRC-checksummed frames. Floats travel as bit
//!   patterns, so distances survive the wire exactly.
//! - [`transport`]: one [`Connection`] trait, two transports — loopback/
//!   real TCP, and an in-process channel network ([`ChannelNet`]) whose
//!   fault injection is byte-exact and seeded (the `check_cluster` CI gate
//!   runs on it).
//! - [`ring`]: seeded consistent hashing with virtual nodes; every router
//!   and node derives the same partition→replica placement from
//!   `(node set, seed)` with no coordination service.
//! - [`node`]: a [`ClusterNode`] hosts partition replicas and serves each
//!   request's query batch as one exclusive `serve_once` micro-batch.
//! - [`router`]: scatter to one replica per partition (rotating choice for
//!   read fan-out), gather, and merge per query through
//!   [`crate::reduce::reduce_partitions`] — the same deterministic
//!   tie-breaking as every other top-k merge in the system.
//! - [`local`]: the one-process harness used by tests, the gate, the bench
//!   and `pwctl cluster`.
//!
//! **Identity contract.** A 1-node, 1-partition cluster returns hits
//! bit-identical to [`crate::serve::serve_once`] on the same batch (and
//! hence to `search_pipelined`): the whole batch travels as one request,
//! the node serves it as one exclusive micro-batch, distances cross the
//! wire as bit patterns, and the final merge of a single already-reduced
//! list is the identity.
//!
//! **Fault model.** Any RPC failure — timeout, torn frame, disconnect,
//! remote error — marks the replica dead in the router's health view and
//! the in-flight batch retries on a sibling replica; queries fail only when
//! every replica of some partition is down across all retry rounds. Health
//! probes (periodic or on demand) revive recovered replicas.

pub mod frame;
pub mod local;
pub mod node;
pub mod ring;
pub mod router;
pub mod transport;
pub mod wire;

pub use frame::{Frame, FrameError, FrameKind, SearchRequest, SearchResponse};
pub use local::{
    build_partitions, partition_rows, reference_merged, ClusterPartition, LocalCluster,
    TransportKind,
};
pub use node::{ClusterNode, DelayWindow, FaultScript, NodeReplica};
pub use ring::HashRing;
pub use router::{ClusterError, ClusterOutput, Peer, Router};
pub use transport::{ChannelNet, Connection, Listener, NodeAddr, RpcError, Transport};
