//! Interchangeable frame transports: real TCP and an in-process channel.
//!
//! The cluster talks [`Frame`]s over an abstract [`Connection`]; two
//! implementations exist so the same router/node code runs in production
//! and in deterministic tests:
//!
//! - **TCP** (`127.0.0.1` or real interfaces): length-prefixed frames over a
//!   byte stream, per-receive read timeouts, `TCP_NODELAY` so a scatter of
//!   small frames is not Nagle-delayed.
//! - **Channel** ([`ChannelNet`]): an in-process "network" of
//!   `std::sync::mpsc` pipes keyed by node id. Each message is one encoded
//!   frame, so fault injection (truncating a frame, dropping a pipe) is
//!   byte-exact and reproducible — the `check_cluster` fault matrix runs on
//!   this transport.
//!
//! Timeouts are expressed as plain millisecond budgets (`Duration` under the
//! hood); neither transport reads a wall clock directly, keeping the cluster
//! code inside the workspace determinism lint (D001).

use super::frame::{Frame, FrameError, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Why an RPC failed. The router folds every variant except
/// [`RpcError::Timeout`] into "this replica is faulty"; timeouts get the
/// same treatment after the per-request budget expires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The per-request receive budget expired.
    Timeout,
    /// The peer is gone: connect refused, pipe closed, clean EOF.
    Disconnected,
    /// A frame arrived damaged — truncated mid-frame or failing its CRC.
    Torn {
        /// Human-readable detail for reports.
        detail: String,
    },
    /// The frame was intact but its payload did not decode.
    Malformed {
        /// Human-readable detail for reports.
        detail: String,
    },
    /// The peer answered with an `Error` frame.
    Remote {
        /// Peer-supplied message.
        detail: String,
    },
    /// Transport-level I/O failure.
    Io {
        /// Stringified OS error.
        detail: String,
    },
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Timeout => f.write_str("request timed out"),
            Self::Disconnected => f.write_str("peer disconnected"),
            Self::Torn { detail } => write!(f, "torn frame: {detail}"),
            Self::Malformed { detail } => write!(f, "malformed payload: {detail}"),
            Self::Remote { detail } => write!(f, "remote error: {detail}"),
            Self::Io { detail } => write!(f, "transport i/o: {detail}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<FrameError> for RpcError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Incomplete { need } => {
                Self::Torn { detail: format!("frame truncated (need {need} bytes)") }
            }
            FrameError::Corrupt { detail } => Self::Torn { detail: detail.to_string() },
        }
    }
}

/// Where a node listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeAddr {
    /// A TCP socket address, e.g. `127.0.0.1:47000`.
    Tcp(String),
    /// A node id on an in-process [`ChannelNet`].
    Channel(u64),
}

impl std::fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp(a) => write!(f, "tcp://{a}"),
            Self::Channel(id) => write!(f, "chan://{id}"),
        }
    }
}

/// One bidirectional frame pipe.
pub trait Connection: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] / [`RpcError::Io`] when the peer is gone.
    fn send(&mut self, frame: &Frame) -> Result<(), RpcError>;

    /// Fault injection: sends only the first `keep` bytes of the encoded
    /// frame and then wedges the connection, so the receiver observes a torn
    /// frame. Used by the `check_cluster` matrix; production code never
    /// calls it.
    ///
    /// # Errors
    ///
    /// Same as [`Connection::send`].
    fn send_torn(&mut self, frame: &Frame, keep: usize) -> Result<(), RpcError>;

    /// Receives the next frame, waiting at most `timeout_ms` (forever when
    /// `None`).
    ///
    /// # Errors
    ///
    /// [`RpcError::Timeout`] on budget expiry, [`RpcError::Disconnected`] on
    /// clean EOF, [`RpcError::Torn`] on a damaged frame.
    fn recv(&mut self, timeout_ms: Option<u64>) -> Result<Frame, RpcError>;
}

/// One accept queue.
pub trait Listener: Send {
    /// Waits up to `timeout_ms` for an inbound connection; `Ok(None)` on
    /// timeout so the caller can poll a stop flag between waits.
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] once the listener is closed.
    fn accept(&mut self, timeout_ms: u64) -> Result<Option<Box<dyn Connection>>, RpcError>;

    /// The address peers dial to reach this listener.
    fn local_addr(&self) -> NodeAddr;
}

/// Client-side connector: the one piece of transport state the router keeps.
#[derive(Clone)]
pub enum Transport {
    /// Dial TCP addresses.
    Tcp,
    /// Dial node ids on this in-process network.
    Channel(Arc<ChannelNet>),
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp => f.write_str("Transport::Tcp"),
            Self::Channel(_) => f.write_str("Transport::Channel"),
        }
    }
}

impl Transport {
    /// Opens a connection to `addr`.
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] when the peer does not accept,
    /// [`RpcError::Io`] on an address/transport mismatch.
    pub fn connect(&self, addr: &NodeAddr) -> Result<Box<dyn Connection>, RpcError> {
        match (self, addr) {
            (Self::Tcp, NodeAddr::Tcp(a)) => {
                let stream = TcpStream::connect(a.as_str())
                    .map_err(|e| RpcError::Io { detail: e.to_string() })?;
                stream.set_nodelay(true).map_err(|e| RpcError::Io { detail: e.to_string() })?;
                Ok(Box::new(TcpConnection { stream }))
            }
            (Self::Channel(net), NodeAddr::Channel(id)) => Ok(Box::new(net.connect(*id)?)),
            _ => Err(RpcError::Io { detail: format!("transport cannot dial {addr}") }),
        }
    }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// A frame pipe over one TCP stream.
pub struct TcpConnection {
    stream: TcpStream,
}

/// Outcome of filling a buffer from a stream.
enum Fill {
    Full,
    Eof { got: usize },
}

fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> Result<Fill, RpcError> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Ok(Fill::Eof { got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(RpcError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(RpcError::Io { detail: e.to_string() }),
        }
    }
    Ok(Fill::Full)
}

impl Connection for TcpConnection {
    fn send(&mut self, frame: &Frame) -> Result<(), RpcError> {
        self.stream.write_all(&frame.encode()).and_then(|()| self.stream.flush()).map_err(|e| {
            match e.kind() {
                ErrorKind::BrokenPipe | ErrorKind::ConnectionReset => RpcError::Disconnected,
                _ => RpcError::Io { detail: e.to_string() },
            }
        })
    }

    fn send_torn(&mut self, frame: &Frame, keep: usize) -> Result<(), RpcError> {
        let bytes = frame.encode();
        let keep = keep.min(bytes.len());
        self.stream
            .write_all(&bytes[..keep])
            .and_then(|()| self.stream.flush())
            .map_err(|e| RpcError::Io { detail: e.to_string() })?;
        // Closing both directions is what makes the truncation observable:
        // the reader sees EOF mid-frame instead of waiting for the rest.
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        Ok(())
    }

    fn recv(&mut self, timeout_ms: Option<u64>) -> Result<Frame, RpcError> {
        // A zero timeout means "no timeout" to the OS; clamp to 1 ms.
        let budget = timeout_ms.map(|ms| Duration::from_millis(ms.max(1)));
        self.stream.set_read_timeout(budget).map_err(|e| RpcError::Io { detail: e.to_string() })?;
        let mut header = [0u8; FRAME_HEADER_LEN];
        match read_full(&mut self.stream, &mut header)? {
            Fill::Eof { got: 0 } => return Err(RpcError::Disconnected),
            Fill::Eof { got } => {
                return Err(RpcError::Torn { detail: format!("EOF after {got} header bytes") })
            }
            Fill::Full => {}
        }
        let payload_len = u32::from_le_bytes([header[13], header[14], header[15], header[16]]);
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(RpcError::Torn { detail: "payload length over limit".into() });
        }
        let mut bytes = vec![0u8; FRAME_HEADER_LEN + payload_len as usize];
        bytes[..FRAME_HEADER_LEN].copy_from_slice(&header);
        match read_full(&mut self.stream, &mut bytes[FRAME_HEADER_LEN..])? {
            Fill::Eof { got } => {
                return Err(RpcError::Torn { detail: format!("EOF after {got} payload bytes") })
            }
            Fill::Full => {}
        }
        let (frame, _) = Frame::decode(&bytes)?;
        Ok(frame)
    }
}

/// Accept side of a TCP node.
pub struct TcpNodeListener {
    listener: TcpListener,
    addr: String,
}

impl TcpNodeListener {
    /// Binds to `addr` (use `127.0.0.1:0` for an ephemeral test port).
    ///
    /// # Errors
    ///
    /// [`RpcError::Io`] when the bind fails.
    pub fn bind(addr: &str) -> Result<Self, RpcError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| RpcError::Io { detail: e.to_string() })?;
        listener.set_nonblocking(true).map_err(|e| RpcError::Io { detail: e.to_string() })?;
        let addr =
            listener.local_addr().map_err(|e| RpcError::Io { detail: e.to_string() })?.to_string();
        Ok(Self { listener, addr })
    }
}

impl Listener for TcpNodeListener {
    fn accept(&mut self, timeout_ms: u64) -> Result<Option<Box<dyn Connection>>, RpcError> {
        // Nonblocking accept + 1 ms sleeps: a counted poll loop instead of a
        // wall-clock deadline, so no `Instant` enters the cluster code.
        let polls = timeout_ms.max(1);
        for _ in 0..polls {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .and_then(|()| stream.set_nodelay(true))
                        .map_err(|e| RpcError::Io { detail: e.to_string() })?;
                    return Ok(Some(Box::new(TcpConnection { stream })));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(RpcError::Io { detail: e.to_string() }),
            }
        }
        Ok(None)
    }

    fn local_addr(&self) -> NodeAddr {
        NodeAddr::Tcp(self.addr.clone())
    }
}

// ---------------------------------------------------------------------------
// In-process channel network
// ---------------------------------------------------------------------------

/// A frame pipe over a pair of in-process byte channels.
#[derive(Debug)]
pub struct ChannelConnection {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
}

impl Connection for ChannelConnection {
    fn send(&mut self, frame: &Frame) -> Result<(), RpcError> {
        self.tx.send(frame.encode()).map_err(|_| RpcError::Disconnected)
    }

    fn send_torn(&mut self, frame: &Frame, keep: usize) -> Result<(), RpcError> {
        let bytes = frame.encode();
        let keep = keep.min(bytes.len());
        self.tx.send(bytes[..keep].to_vec()).map_err(|_| RpcError::Disconnected)
    }

    fn recv(&mut self, timeout_ms: Option<u64>) -> Result<Frame, RpcError> {
        let bytes = match timeout_ms {
            None => self.rx.recv().map_err(|_| RpcError::Disconnected)?,
            Some(ms) => match self.rx.recv_timeout(Duration::from_millis(ms)) {
                Ok(b) => b,
                Err(mpsc::RecvTimeoutError::Timeout) => return Err(RpcError::Timeout),
                Err(mpsc::RecvTimeoutError::Disconnected) => return Err(RpcError::Disconnected),
            },
        };
        let (frame, used) = Frame::decode(&bytes)?;
        if used != bytes.len() {
            return Err(RpcError::Torn { detail: "trailing bytes after frame".into() });
        }
        Ok(frame)
    }
}

/// Accept side of a channel-transport node.
pub struct ChannelListener {
    node: u64,
    rx: mpsc::Receiver<ChannelConnection>,
}

impl Listener for ChannelListener {
    fn accept(&mut self, timeout_ms: u64) -> Result<Option<Box<dyn Connection>>, RpcError> {
        match self.rx.recv_timeout(Duration::from_millis(timeout_ms.max(1))) {
            Ok(conn) => Ok(Some(Box::new(conn))),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RpcError::Disconnected),
        }
    }

    fn local_addr(&self) -> NodeAddr {
        NodeAddr::Channel(self.node)
    }
}

/// An in-process "network": node ids map to accept queues.
///
/// Deterministic by construction — no sockets, no ports, no OS scheduling in
/// the data path beyond the threads the test itself spawns.
#[derive(Default)]
pub struct ChannelNet {
    listeners: Mutex<BTreeMap<u64, mpsc::Sender<ChannelConnection>>>,
}

impl std::fmt::Debug for ChannelNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChannelNet({} listeners)", self.listeners.lock().len())
    }
}

impl ChannelNet {
    /// Creates an empty network.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers node `node` and returns its accept queue.
    ///
    /// # Panics
    ///
    /// Panics when the node id is already listening — ids are unique per
    /// network by construction.
    pub fn listen(&self, node: u64) -> ChannelListener {
        let (tx, rx) = mpsc::channel();
        let prev = self.listeners.lock().insert(node, tx);
        assert!(prev.is_none(), "node {node} is already listening");
        ChannelListener { node, rx }
    }

    /// Unregisters node `node`: existing connections keep working, new
    /// dials are refused. Models a crashed process's closed listen socket.
    pub fn unlisten(&self, node: u64) {
        self.listeners.lock().remove(&node);
    }

    /// Dials node `node`.
    ///
    /// # Errors
    ///
    /// [`RpcError::Disconnected`] when the node is not listening.
    pub fn connect(&self, node: u64) -> Result<ChannelConnection, RpcError> {
        let (c2s_tx, c2s_rx) = mpsc::channel();
        let (s2c_tx, s2c_rx) = mpsc::channel();
        let server_half = ChannelConnection { tx: s2c_tx, rx: c2s_rx };
        // Clone the accept sender out of the registry so the lock is
        // released before the (potentially blocking) channel send.
        let accept = {
            let guard = self.listeners.lock();
            guard.get(&node).ok_or(RpcError::Disconnected)?.clone()
        };
        accept.send(server_half).map_err(|_| RpcError::Disconnected)?;
        Ok(ChannelConnection { tx: c2s_tx, rx: s2c_rx })
    }
}

#[cfg(test)]
mod tests {
    use super::super::frame::FrameKind;
    use super::*;

    fn ping(id: u64) -> Frame {
        Frame::control(FrameKind::Ping, id)
    }

    #[test]
    fn channel_round_trip() {
        let net = ChannelNet::new();
        let mut listener = net.listen(7);
        let mut client = net.connect(7).unwrap();
        client.send(&ping(3)).unwrap();
        let mut server = listener.accept(100).unwrap().expect("dial arrived");
        let got = server.recv(Some(100)).unwrap();
        assert_eq!(got.request_id, 3);
        server.send(&Frame::control(FrameKind::Pong, 3)).unwrap();
        assert_eq!(client.recv(Some(100)).unwrap().kind, FrameKind::Pong);
    }

    #[test]
    fn channel_timeout_and_disconnect() {
        let net = ChannelNet::new();
        let mut listener = net.listen(1);
        let mut client = net.connect(1).unwrap();
        assert_eq!(client.recv(Some(1)).unwrap_err(), RpcError::Timeout);
        drop(listener.accept(50).unwrap().expect("server half"));
        assert_eq!(client.recv(Some(50)).unwrap_err(), RpcError::Disconnected);
    }

    #[test]
    fn channel_refuses_unknown_node() {
        let net = ChannelNet::new();
        assert_eq!(net.connect(99).unwrap_err(), RpcError::Disconnected);
        let _l = net.listen(5);
        net.unlisten(5);
        assert_eq!(net.connect(5).unwrap_err(), RpcError::Disconnected);
    }

    #[test]
    fn channel_torn_send_detected() {
        let net = ChannelNet::new();
        let mut listener = net.listen(2);
        let mut client = net.connect(2).unwrap();
        let mut server = listener.accept(100).unwrap().unwrap();
        let f = Frame { kind: FrameKind::Hits, request_id: 9, payload: vec![1; 64] };
        client.send_torn(&f, FRAME_HEADER_LEN + 10).unwrap();
        assert!(matches!(server.recv(Some(100)).unwrap_err(), RpcError::Torn { .. }));
    }

    #[test]
    fn tcp_round_trip_and_torn() {
        let mut listener = TcpNodeListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr();
        let transport = Transport::Tcp;
        let mut client = transport.connect(&addr).unwrap();
        let big = Frame { kind: FrameKind::Search, request_id: 11, payload: vec![5; 1000] };
        client.send(&big).unwrap();
        let mut server = listener.accept(2000).unwrap().expect("accept");
        let got = server.recv(Some(2000)).unwrap();
        assert_eq!(got, big);

        // Torn direction: server truncates its response mid-payload.
        server.send_torn(&big, FRAME_HEADER_LEN + 100).unwrap();
        assert!(matches!(client.recv(Some(2000)).unwrap_err(), RpcError::Torn { .. }));
    }

    #[test]
    fn tcp_mid_header_truncation_is_torn_not_panic() {
        // Regression: a peer dying mid-header (10 of the 21 header bytes on
        // the wire, then EOF) must surface as RpcError::Torn — the reader
        // used to index into the short header buffer and panic.
        let mut listener = TcpNodeListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr();
        let mut client = Transport::Tcp.connect(&addr).unwrap();
        let f = Frame { kind: FrameKind::Hits, request_id: 13, payload: vec![7; 32] };
        client.send_torn(&f, 10).unwrap();
        drop(client); // Close so the reader sees EOF rather than stalling.
        let mut server = listener.accept(2000).unwrap().expect("accept");
        let err = server.recv(Some(2000)).unwrap_err();
        assert!(matches!(err, RpcError::Torn { .. }), "mid-header EOF must be Torn, got {err:?}");
    }

    #[test]
    fn channel_mid_header_truncation_is_torn_not_panic() {
        let net = ChannelNet::new();
        let mut listener = net.listen(3);
        let mut client = net.connect(3).unwrap();
        let mut server = listener.accept(100).unwrap().unwrap();
        let f = Frame { kind: FrameKind::Hits, request_id: 17, payload: vec![9; 32] };
        client.send_torn(&f, 10).unwrap();
        let err = server.recv(Some(100)).unwrap_err();
        assert!(matches!(err, RpcError::Torn { .. }), "mid-header tear must be Torn, got {err:?}");
    }

    #[test]
    fn tcp_recv_times_out() {
        let mut listener = TcpNodeListener::bind("127.0.0.1:0").expect("bind loopback");
        let mut client = Transport::Tcp.connect(&listener.local_addr()).unwrap();
        let _server = listener.accept(2000).unwrap().expect("accept");
        assert_eq!(client.recv(Some(10)).unwrap_err(), RpcError::Timeout);
    }
}
