//! In-process cluster harness: build partitions, boot nodes, wire a router.
//!
//! Production deployments run one [`ClusterNode`] per host and a router
//! wherever queries enter; tests, the `check_cluster` gate, the
//! `cluster_serve` bench, and `pwctl cluster` all want the same thing in one
//! process. [`LocalCluster`] provides it over either transport. Placement is
//! *not* negotiated: the harness and the [`Router`] independently derive the
//! same consistent-hash assignment from `(node ids, ClusterConfig::seed)`,
//! which is exactly how a real deployment's nodes and routers would agree
//! without a coordination service.

use super::node::{ClusterNode, FaultScript, NodeReplica};
use super::ring::HashRing;
use super::router::{Peer, Router};
use super::transport::{ChannelNet, Listener, TcpNodeListener, Transport};
use crate::config::{ClusterConfig, PathWeaverConfig};
use crate::index::{BuildError, PathWeaverIndex};
use crate::reduce::reduce_partitions;
use crate::serve::serve_once;
use pathweaver_search::SearchParams;
use pathweaver_vector::VectorSet;
use std::sync::Arc;

/// One built partition: an index over a slice of the collection plus the
/// local→cluster-global id map.
#[derive(Clone)]
pub struct ClusterPartition {
    /// The partition's index.
    pub index: Arc<PathWeaverIndex>,
    /// Local row id → cluster-global id.
    pub global_ids: Arc<Vec<u32>>,
}

impl std::fmt::Debug for ClusterPartition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterPartition").field("rows", &self.global_ids.len()).finish()
    }
}

/// Which transport a [`LocalCluster`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Loopback TCP with ephemeral ports.
    Tcp,
    /// The deterministic in-process channel network.
    Channel,
}

/// Splits `dataset` into `partitions` contiguous row ranges.
///
/// Contiguous (rather than hashed) partitioning keeps the 1-partition case
/// literally the original dataset, which the bit-identity contract with
/// `serve_once` relies on.
///
/// # Panics
///
/// Panics when `partitions` is zero or exceeds the row count.
pub fn partition_rows(len: usize, partitions: usize) -> Vec<std::ops::Range<usize>> {
    assert!(partitions > 0, "need at least one partition");
    assert!(partitions <= len, "more partitions than rows");
    (0..partitions).map(|p| (p * len / partitions)..((p + 1) * len / partitions)).collect()
}

/// Builds one [`PathWeaverIndex`] per contiguous partition of `dataset`.
///
/// # Errors
///
/// Propagates [`BuildError`] from any partition build.
///
/// # Panics
///
/// Panics when `partitions` is zero or exceeds the row count.
pub fn build_partitions(
    dataset: &VectorSet,
    index_config: &PathWeaverConfig,
    partitions: usize,
) -> Result<Vec<ClusterPartition>, BuildError> {
    partition_rows(dataset.len(), partitions)
        .into_iter()
        .map(|range| {
            let rows: Vec<usize> = range.clone().collect();
            let slice = dataset.gather(&rows);
            let index = PathWeaverIndex::build(&slice, index_config)?;
            let global_ids: Vec<u32> = range.map(|r| r as u32).collect();
            Ok(ClusterPartition { index: Arc::new(index), global_ids: Arc::new(global_ids) })
        })
        .collect()
}

/// The reference answer for a partitioned collection: every partition served
/// independently through [`serve_once`], ids mapped to cluster-global, then
/// merged per query. The `check_cluster` gate holds every fault case to this
/// bitwise.
///
/// # Errors
///
/// [`ClusterError::Internal`](super::ClusterError::Internal) when a local
/// serve fails or a partition returns a local id outside its id map.
pub fn reference_merged(
    parts: &[ClusterPartition],
    queries: &VectorSet,
    params: &SearchParams,
) -> Result<Vec<Vec<(f32, u32)>>, super::ClusterError> {
    let mut per_partition: Vec<Vec<Vec<(f32, u32)>>> = Vec::with_capacity(parts.len());
    for part in parts {
        let out = serve_once(&part.index, queries, params).map_err(|e| {
            super::ClusterError::Internal { detail: format!("reference serve failed: {e}") }
        })?;
        let mut rows = Vec::with_capacity(out.hits.len());
        for pq in out.hits {
            let mut row = Vec::with_capacity(pq.len());
            for (d, id) in pq {
                let Some(&global) = part.global_ids.get(id as usize) else {
                    return Err(super::ClusterError::Internal {
                        detail: format!("local id {id} outside partition id map"),
                    });
                };
                row.push((d, global));
            }
            rows.push(row);
        }
        per_partition.push(rows);
    }
    Ok(reduce_partitions(&per_partition, params.k))
}

/// A whole cluster in one process: N nodes plus a router.
pub struct LocalCluster {
    router: Router,
    nodes: Vec<ClusterNode>,
    /// Kept alive so channel nodes stay dialable; also handed to tests that
    /// want to inject network-level faults.
    net: Option<Arc<ChannelNet>>,
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster").field("nodes", &self.nodes.len()).finish_non_exhaustive()
    }
}

impl LocalCluster {
    /// Builds partitions from `dataset` and boots a fault-free cluster of
    /// `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Build`](super::ClusterError::Build) from partition
    /// builds, or any bootstrap error from
    /// [`launch_with_partitions`](Self::launch_with_partitions).
    pub fn launch(
        dataset: &VectorSet,
        index_config: &PathWeaverConfig,
        cluster_config: &ClusterConfig,
        num_nodes: usize,
        kind: TransportKind,
    ) -> Result<Self, super::ClusterError> {
        let parts = build_partitions(dataset, index_config, cluster_config.partitions)?;
        Self::launch_with_partitions(&parts, cluster_config, num_nodes, kind, &[])
    }

    /// Boots `num_nodes` nodes over prebuilt `parts` (replicas share the
    /// partition `Arc`s) and a router over them. `faults[i]` scripts node
    /// `i`; missing entries are fault-free.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Bootstrap`](super::ClusterError::Bootstrap) when a
    /// TCP listener cannot bind, a node's service threads cannot spawn, or
    /// the derived placement is inconsistent.
    ///
    /// # Panics
    ///
    /// Panics when `num_nodes` is zero or the config is invalid — caller
    /// bugs, not runtime conditions.
    pub fn launch_with_partitions(
        parts: &[ClusterPartition],
        cluster_config: &ClusterConfig,
        num_nodes: usize,
        kind: TransportKind,
        faults: &[FaultScript],
    ) -> Result<Self, super::ClusterError> {
        cluster_config.validate();
        assert!(num_nodes > 0, "need at least one node");
        assert_eq!(parts.len(), cluster_config.partitions, "partition count mismatch");

        let ids: Vec<u64> = (0..num_nodes as u64).collect();
        let ring = HashRing::new(&ids, cluster_config.vnodes, cluster_config.seed);
        let mut per_node: Vec<Vec<NodeReplica>> = vec![Vec::new(); num_nodes];
        for (p, part) in parts.iter().enumerate() {
            for node in ring.replicas(p as u64, cluster_config.replication) {
                let slot = per_node.get_mut(node as usize).ok_or_else(|| {
                    super::ClusterError::Bootstrap {
                        detail: format!("ring placed partition {p} on unknown node {node}"),
                    }
                })?;
                slot.push(NodeReplica {
                    partition: p as u32,
                    index: Arc::clone(&part.index),
                    global_ids: Arc::clone(&part.global_ids),
                });
            }
        }

        let net = match kind {
            TransportKind::Channel => Some(ChannelNet::new()),
            TransportKind::Tcp => None,
        };
        let mut nodes = Vec::with_capacity(num_nodes);
        let mut peers = Vec::with_capacity(num_nodes);
        for (i, replicas) in per_node.into_iter().enumerate() {
            let listener: Box<dyn Listener> = match &net {
                Some(net) => Box::new(net.listen(i as u64)),
                None => Box::new(TcpNodeListener::bind("127.0.0.1:0").map_err(|e| {
                    super::ClusterError::Bootstrap {
                        detail: format!("cannot bind loopback listener: {e}"),
                    }
                })?),
            };
            peers.push(Peer { node_id: i as u64, addr: listener.local_addr() });
            let fault = faults.get(i).cloned().unwrap_or_default();
            nodes.push(ClusterNode::spawn(i as u64, replicas, listener, fault)?);
        }
        let transport = match &net {
            Some(net) => Transport::Channel(Arc::clone(net)),
            None => Transport::Tcp,
        };
        let router = Router::new(peers, transport, cluster_config.clone())?;
        Ok(Self { router, nodes, net })
    }

    /// The cluster's router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The running nodes, in node-id order.
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// The channel network, when running on [`TransportKind::Channel`].
    pub fn net(&self) -> Option<&Arc<ChannelNet>> {
        self.net.as_ref()
    }

    /// Stops the router's health thread and every node.
    pub fn shutdown(self) {
        let Self { router, nodes, net } = self;
        router.shutdown();
        for node in nodes {
            node.shutdown();
        }
        drop(net);
    }
}
