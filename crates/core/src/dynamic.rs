//! Dynamic updates (paper §6.2).
//!
//! Insertions go to the smallest shard: the new node's adjacency row is
//! found by a build-time graph search, the direction table and the shard's
//! outgoing `I(u)` entry are extended incrementally, and the ghost shard is
//! left untouched (it is a random sample; one more point does not move it).
//! Deletions are logical: a tombstone flag hides the node from results while
//! it keeps serving as a bridge, preserving connectivity exactly as the
//! paper suggests.
//!
//! [`DurableIndex`] wraps the same mutations with write-ahead durability:
//! every insert/delete is appended (and fsynced) to the store's WAL *before*
//! it is applied, so a crash at any point loses at most the unacknowledged
//! mutation, and [`DurableIndex::open`] replays the log back onto the
//! segment.

use crate::index::PathWeaverIndex;
use crate::store::{self, wal, StoreError};
use pathweaver_graph::greedy_search;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What a [`PathWeaverIndex::delete_outcome`] call actually did.
///
/// `delete` collapses the three cases into a bool, which makes
/// delete-unknown indistinguishable from delete-twice at call sites that
/// care (WAL replay, client error reporting). The outcome keeps them apart
/// while staying idempotent: replaying any of the three is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteOutcome {
    /// The id was live and is now tombstoned.
    Applied,
    /// The id exists but was already tombstoned (or compacted away after a
    /// tombstone — its slot is gone but the id was once deleted).
    AlreadyDeleted,
    /// The id was never allocated (above the high-water mark) or was
    /// compacted away by [`PathWeaverIndex::maintain`].
    Unknown,
}

impl DeleteOutcome {
    /// Whether the call changed the index (the legacy `delete` bool).
    pub fn applied(self) -> bool {
        matches!(self, Self::Applied)
    }
}

/// Errors raised by [`PathWeaverIndex::maintain`].
///
/// With the background maintainer ([`crate::snapshot::ConcurrentIndex`])
/// calling `maintain` on a live serving path, a bad threshold must surface
/// as a value, not a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintainError {
    /// `rebuild_threshold` outside `(0, 1]`.
    InvalidThreshold {
        /// The rejected value.
        got: f64,
    },
}

impl std::fmt::Display for MaintainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidThreshold { got } => {
                write!(f, "rebuild threshold {got} out of (0, 1]")
            }
        }
    }
}

impl std::error::Error for MaintainError {}

impl PathWeaverIndex {
    /// Inserts a vector, returning its new global id.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from the index dimensionality.
    pub fn insert(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim(), "dimensionality mismatch");
        let s = self.assignment.smallest_shard();
        // `num_vectors` is a high-water mark for id allocation (maintain()
        // never rewinds it), so ids stay unique and per-shard `global_ids`
        // stay ascending — which `delete` relies on for binary search.
        let global_id = self.num_vectors as u32;
        self.num_vectors += 1;

        let degree = self.shards[s].graph.degree();
        let next = (s + 1) % self.shards.len();

        // Locate the new node's neighbors with a build-quality search,
        // entering through the ghost shard when one exists (random-only
        // entries can strand the search in a far region of the graph).
        let mut entries: Vec<u32> = (0..16)
            .map(|i| {
                (pathweaver_util::seed_from_parts(self.config.seed, "insert", global_id as u64 + i)
                    % self.shards[s].len() as u64) as u32
            })
            .collect();
        if let Some(ghost) = &self.shards[s].ghost {
            let ghost_hits = greedy_search(&ghost.graph, &ghost.vectors, vector, &[0], 8, 2);
            entries.extend(ghost_hits.iter().map(|&(_, g)| ghost.original_id(g)));
        }
        let hits = greedy_search(
            &self.shards[s].graph,
            &self.shards[s].vectors,
            vector,
            &entries,
            (degree * 2).max(16),
            degree,
        );
        let mut row: Vec<u32> = hits.iter().map(|&(_, id)| id).collect();
        // Pad pathological underfull rows by wrapping over the shard. Only
        // locals that exist before this push are legal neighbors: an
        // unbounded pad fabricates ids at or past the new node's own id (a
        // self-loop at best, an out-of-range panic at worst) whenever the
        // shard is smaller than the degree.
        let existing = self.shards[s].len() as u32;
        let mut pad = 0u32;
        while row.len() < degree && pad < existing {
            if !row.contains(&pad) {
                row.push(pad);
            }
            pad += 1;
        }
        // A shard smaller than the degree cycles its own row; duplicate
        // neighbors are legal in a fixed-degree graph.
        let mut wrap = 0;
        while row.len() < degree {
            row.push(row[wrap]);
            wrap += 1;
        }

        // Extend every affected structure in dependency order. The first
        // mutation after a snapshot publish copies the shard (`make_mut`);
        // pinned snapshots keep reading the old Arc untouched.
        let shard = Arc::make_mut(&mut self.shards[s]);
        shard.vectors.push(vector);
        // The quantized tier encodes with the shard's frozen scales/offsets
        // (re-deriving them would re-code every row); out-of-range values
        // clamp to ±127 and are repaired by the exact re-rank at query time.
        if let Some(q) = shard.quantized.as_mut() {
            q.push(vector);
        }
        let local = shard.graph.push_node(&row);
        shard.global_ids.push(global_id);
        shard.deleted.grow(shard.vectors.len());
        if let Some(table) = shard.dir_table.as_mut() {
            table.push_node(&shard.vectors, &shard.graph);
        }
        debug_assert_eq!(local as usize, shard.vectors.len() - 1);

        // Reverse edges: searches reach the new node only through in-edges,
        // so each forward neighbor replaces its farthest out-edge with the
        // newcomer when the newcomer is closer. The nearest neighbor adopts
        // the newcomer unconditionally — an outlier insert would otherwise
        // have in-degree zero and be unreachable forever.
        for (rank, &v) in row.iter().enumerate() {
            let force = rank == 0;
            let d_new = pathweaver_vector::l2_squared(
                shard.vectors.row(v as usize),
                shard.vectors.row(local as usize),
            );
            let mut vrow: Vec<u32> = shard.graph.neighbors(v).to_vec();
            let (worst_j, worst_d) = vrow
                .iter()
                .enumerate()
                .map(|(j, &w)| {
                    (
                        j,
                        pathweaver_vector::l2_squared(
                            shard.vectors.row(v as usize),
                            shard.vectors.row(w as usize),
                        ),
                    )
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("positive degree");
            if (force || d_new < worst_d) && !vrow.contains(&local) {
                vrow[worst_j] = local;
                shard.graph.set_neighbors(v, &vrow);
                if let Some(table) = shard.dir_table.as_mut() {
                    table.rebuild_node(&shard.vectors, &shard.graph, v);
                }
            }
        }

        // Outgoing inter-shard edge of the new node (incoming edges from the
        // previous shard stay stale — the paper argues a small local change
        // does not affect existing similarities).
        if self.shards.len() > 1 {
            let target = {
                let next_shard = &self.shards[next];
                let entries: Vec<u32> = (0..4)
                    .map(|i| {
                        (pathweaver_util::seed_from_parts(
                            self.config.seed,
                            "isd",
                            global_id as u64 + i,
                        ) % next_shard.len() as u64) as u32
                    })
                    .collect();
                greedy_search(
                    &next_shard.graph,
                    &next_shard.vectors,
                    vector,
                    &entries,
                    self.config.intershard.beam,
                    1,
                )[0]
                .1
            };
            // The shard Arc is already unique after the `make_mut` above, so
            // this second `make_mut` is a pointer check, not a clone.
            Arc::make_mut(&mut self.shards[s])
                .intershard
                .as_mut()
                .expect("multi-device index has inter-shard tables")
                .push(target);
        }

        self.assignment.push(s, global_id);
        global_id
    }

    /// Logically deletes a global id; returns `false` when it was not found
    /// or already deleted. See [`PathWeaverIndex::delete_outcome`] when the
    /// two `false` cases must stay distinguishable.
    pub fn delete(&mut self, global_id: u32) -> bool {
        self.delete_outcome(global_id).applied()
    }

    /// Logically deletes a global id, reporting which of the three cases
    /// occurred ([`DeleteOutcome`]). Idempotent: replaying the same delete
    /// (WAL recovery) reports [`DeleteOutcome::AlreadyDeleted`] and changes
    /// nothing.
    pub fn delete_outcome(&mut self, global_id: u32) -> DeleteOutcome {
        for shard in self.shards.iter_mut() {
            // `global_ids` is ascending (built sorted; inserts append
            // monotonically increasing ids), so each shard is one binary
            // search instead of a linear scan.
            if let Ok(local) = shard.global_ids.binary_search(&global_id) {
                if shard.deleted.contains(local) {
                    return DeleteOutcome::AlreadyDeleted;
                }
                // Copy-on-write: only the hit shard is cloned, and only when
                // a pinned snapshot still shares it.
                Arc::make_mut(shard).deleted.insert(local);
                return DeleteOutcome::Applied;
            }
        }
        if (global_id as usize) < self.num_vectors {
            // Below the high-water mark but in no shard: the slot was
            // tombstoned and then compacted away by `maintain`.
            DeleteOutcome::AlreadyDeleted
        } else {
            DeleteOutcome::Unknown
        }
    }

    /// Number of live (non-tombstoned, non-compacted) vectors.
    pub fn live_vectors(&self) -> usize {
        self.shards.iter().map(|s| s.len() - s.deleted.count()).sum()
    }

    /// Physically rebuilds every shard whose tombstone fraction reaches
    /// `rebuild_threshold` (§6.2: "when a substantial portion of a shard is
    /// deleted, rebuilding the shard and its associated structures becomes
    /// beneficial"). Rebuilds the shard's graph, ghost shard and direction
    /// table, plus both inter-shard tables touching the shard (its outgoing
    /// table and the predecessor's incoming one). Returns the number of
    /// shards rebuilt.
    ///
    /// A shard whose survivors are too few for a CAGRA build (`degree + 1`
    /// or fewer) is not skipped: it is compacted into a dense brute-force
    /// remnant whose every node links to every other survivor, so a
    /// nearly-emptied shard stops serving from a ~100 %-tombstoned graph.
    /// A fully-emptied shard keeps its first node as a tombstoned bridge
    /// (the ring needs a non-empty shard on every device); the bridge never
    /// surfaces in results.
    ///
    /// # Errors
    ///
    /// [`MaintainError::InvalidThreshold`] if `rebuild_threshold` is outside
    /// `(0, 1]`; the index is unchanged.
    pub fn maintain(&mut self, rebuild_threshold: f64) -> Result<usize, MaintainError> {
        if !(rebuild_threshold > 0.0 && rebuild_threshold <= 1.0) {
            return Err(MaintainError::InvalidThreshold { got: rebuild_threshold });
        }
        let mut rebuilt = 0;
        for s in 0..self.shards.len() {
            if !shard_needs_rebuild(&self.shards[s], rebuild_threshold) {
                continue;
            }
            let replacement = rebuild_shard(&self.shards[s], &self.config, s);
            self.install_rebuilt(s, Arc::new(replacement));
            rebuilt += 1;
        }
        Ok(rebuilt)
    }

    /// Swaps a rebuilt shard in at position `s` and repairs everything that
    /// references its local ids: the assignment's member list and (multi-
    /// device) both inter-shard tables touching the shard. The background
    /// maintainer calls this under its writer lock after building the
    /// replacement off-lock ([`crate::snapshot::ConcurrentIndex`]).
    pub(crate) fn install_rebuilt(&mut self, s: usize, shard: Arc<crate::index::ShardIndex>) {
        let n = self.shards.len();
        self.assignment.set_members(s, shard.global_ids.clone());
        self.shards[s] = shard;
        if n > 1 {
            // Outgoing I(u) of the rebuilt shard and the predecessor's
            // table into it both reference changed local ids.
            let next = (s + 1) % n;
            let prev = (s + n - 1) % n;
            let out_table = pathweaver_graph::InterShardTable::build(
                &self.shards[s].vectors,
                &self.shards[next].vectors,
                &self.shards[next].graph,
                &self.config.intershard,
            );
            Arc::make_mut(&mut self.shards[s]).intershard = Some(out_table);
            let in_table = pathweaver_graph::InterShardTable::build(
                &self.shards[prev].vectors,
                &self.shards[s].vectors,
                &self.shards[s].graph,
                &self.config.intershard,
            );
            Arc::make_mut(&mut self.shards[prev]).intershard = Some(in_table);
        }
    }
}

/// Whether [`PathWeaverIndex::maintain`] at `rebuild_threshold` would
/// rebuild this shard. The minimal bridge remnant (one node, tombstoned) is
/// exempt: rebuilding it again every pass would make `maintain` permanently
/// non-idle.
pub(crate) fn shard_needs_rebuild(
    shard: &crate::index::ShardIndex,
    rebuild_threshold: f64,
) -> bool {
    let dead = shard.deleted.count();
    if dead == 0 || (dead as f64) < rebuild_threshold * shard.len() as f64 {
        return false;
    }
    !(shard.len() == 1 && dead == 1)
}

/// Builds the replacement for a heavily-deleted shard from its survivors:
/// graph, auxiliaries and quantized tier, but no inter-shard table — the
/// caller installs those via [`PathWeaverIndex::install_rebuilt`], because
/// they depend on the neighbor shards at install time.
///
/// Three regimes by survivor count: a full CAGRA rebuild above
/// `degree + 1`; a dense brute-force remnant (every node cycles over the
/// other survivors; duplicate neighbors are legal in a fixed-degree graph)
/// down to one survivor; and, when every node is tombstoned, a single
/// tombstoned bridge node with a self-loop row, so the shard (and the ring
/// through it) stays searchable without ever surfacing in results.
pub(crate) fn rebuild_shard(
    shard: &crate::index::ShardIndex,
    config: &crate::config::PathWeaverConfig,
    s: usize,
) -> crate::index::ShardIndex {
    let survivors: Vec<usize> = (0..shard.len()).filter(|&l| !shard.deleted.contains(l)).collect();
    let degree = config.graph.degree;
    let full_rebuild = survivors.len() > degree + 1;
    let (vectors, global_ids, graph, deleted) = if full_rebuild {
        let vectors = shard.vectors.gather(&survivors);
        let global_ids: Vec<u32> = survivors.iter().map(|&l| shard.global_ids[l]).collect();
        let graph = pathweaver_graph::cagra_build(&vectors, &config.graph);
        let deleted = pathweaver_util::FixedBitSet::new(vectors.len());
        (vectors, global_ids, graph, deleted)
    } else if survivors.is_empty() {
        let vectors = shard.vectors.gather(&[0]);
        let global_ids = vec![shard.global_ids[0]];
        let row = vec![0u32; degree];
        let graph = pathweaver_graph::FixedDegreeGraph::from_lists(degree, &[row]);
        let mut deleted = pathweaver_util::FixedBitSet::new(1);
        deleted.insert(0);
        (vectors, global_ids, graph, deleted)
    } else {
        let vectors = shard.vectors.gather(&survivors);
        let global_ids: Vec<u32> = survivors.iter().map(|&l| shard.global_ids[l]).collect();
        let m = survivors.len();
        let lists: Vec<Vec<u32>> = (0..m)
            .map(|u| {
                (0..degree)
                    .map(|j| {
                        if m == 1 {
                            0 // single survivor: self-loop row
                        } else {
                            ((u + 1 + j % (m - 1)) % m) as u32
                        }
                    })
                    .collect()
            })
            .collect();
        let graph = pathweaver_graph::FixedDegreeGraph::from_lists(degree, &lists);
        let deleted = pathweaver_util::FixedBitSet::new(m);
        (vectors, global_ids, graph, deleted)
    };
    // Remnant shards skip the ghost/direction auxiliaries: both assume a
    // graph large enough to sample from, and a brute-force remnant is exact
    // without them.
    let dir_table = (config.build_dir_table && full_rebuild)
        .then(|| pathweaver_graph::DirectionTable::build(&vectors, &graph));
    let ghost = if full_rebuild {
        config.ghost.map(|mut gp| {
            gp.seed = pathweaver_util::seed_from_parts(config.seed, "ghost-rebuild", s as u64);
            pathweaver_graph::GhostShard::build(&vectors, &gp)
        })
    } else {
        None
    };
    // Rebuilds re-derive the quantization grid from the survivors, so
    // post-insert drift accumulated by frozen-parameter pushes is flushed at
    // the same cadence as the graph itself.
    let quantized =
        config.build_quantized.then(|| pathweaver_vector::QuantizedSet::quantize(&vectors));
    crate::index::ShardIndex {
        global_ids,
        vectors,
        graph,
        dir_table,
        quantized,
        ghost,
        intershard: None,
        deleted,
    }
}

/// A store-backed index whose mutations are durable.
///
/// The crash-recovery contract: after [`DurableIndex::insert`] or
/// [`DurableIndex::delete`] returns, the mutation survives any crash —
/// kill the process at an arbitrary WAL byte offset, [`DurableIndex::open`]
/// the directory again, and searches return results bitwise-identical to an
/// index that never saw the torn record (the torn tail is truncated away on
/// open). Reads go through [`std::ops::Deref`]; there is deliberately no
/// `DerefMut`, so every mutation funnels through the log.
#[derive(Debug)]
pub struct DurableIndex {
    index: PathWeaverIndex,
    wal: wal::WalWriter,
    dir: PathBuf,
}

impl std::ops::Deref for DurableIndex {
    type Target = PathWeaverIndex;

    fn deref(&self) -> &PathWeaverIndex {
        &self.index
    }
}

impl DurableIndex {
    /// Persists a freshly built `index` under `dir` (segment + empty WAL)
    /// and returns the durable handle. An existing store at `dir` is
    /// replaced.
    ///
    /// # Errors
    ///
    /// IO failures.
    pub fn create(index: PathWeaverIndex, dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        store::save_index(&index, &dir)?;
        let wal = wal::WalWriter::open_append(dir.join(store::WAL_FILE))?;
        Ok(Self { index, wal, dir })
    }

    /// Opens the store at `dir`: loads the segment, replays the WAL, and
    /// **repairs** any torn tail on disk (truncates it away) so appends
    /// continue from the last durable record.
    ///
    /// # Errors
    ///
    /// IO failures, [`StoreError::Corrupt`] for checksum violations, or
    /// [`StoreError::Malformed`] if `dir` holds a legacy store — migrate
    /// those first (`pwctl compact`), durability needs a WAL.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        if !store::is_segment_store(&dir) {
            return Err(StoreError::Malformed(
                "not a segment store; migrate legacy directories with `pwctl compact`".into(),
            ));
        }
        let mut index = store::segment::read_segment(dir.join(store::SEGMENT_FILE))?;
        let wal_path = dir.join(store::WAL_FILE);
        let replay = wal::read_wal(&wal_path)?;
        if replay.dim != index.dim() {
            return Err(StoreError::Corrupt {
                offset: 8,
                detail: format!(
                    "wal dim {} disagrees with segment dim {}",
                    replay.dim,
                    index.dim()
                ),
            });
        }
        wal::apply_records(&mut index, &replay.records)?;
        if replay.torn_bytes > 0 {
            wal::truncate_tail(&wal_path, replay.valid_len)?;
        }
        let wal = wal::WalWriter::open_append(&wal_path)?;
        Ok(Self { index, wal, dir })
    }

    /// Durably inserts a vector, returning its new global id. The WAL
    /// append (with fsync) happens before the in-memory mutation, so an
    /// acknowledged insert is never lost.
    ///
    /// # Errors
    ///
    /// IO failures; the index is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from the index dimensionality.
    pub fn insert(&mut self, vector: &[f32]) -> Result<u32, StoreError> {
        assert_eq!(vector.len(), self.index.dim(), "dimensionality mismatch");
        let expected_id = self.index.num_vectors as u32;
        self.wal.append_insert(expected_id, vector)?;
        let got = self.index.insert(vector);
        debug_assert_eq!(got, expected_id);
        Ok(got)
    }

    /// Durably tombstones a global id; `false` when it was not found or
    /// already deleted. Logged before it is applied, like inserts.
    ///
    /// # Errors
    ///
    /// IO failures; the index is unchanged on error.
    pub fn delete(&mut self, global_id: u32) -> Result<bool, StoreError> {
        Ok(self.delete_outcome(global_id)?.applied())
    }

    /// Durably tombstones a global id, reporting the [`DeleteOutcome`].
    /// The record is logged even for no-op outcomes — replay is idempotent
    /// (`AlreadyDeleted`/`Unknown` replays change nothing), and logging
    /// unconditionally keeps the WAL a faithful mutation history.
    ///
    /// # Errors
    ///
    /// IO failures; the index is unchanged on error.
    pub fn delete_outcome(&mut self, global_id: u32) -> Result<DeleteOutcome, StoreError> {
        self.wal.append_delete(global_id)?;
        Ok(self.index.delete_outcome(global_id))
    }

    /// Folds the WAL into a fresh segment and resets the log. The segment
    /// is replaced atomically (temp file + rename); a crash between the
    /// rename and the WAL reset is benign because replay is idempotent
    /// (see [`wal::apply_records`]).
    ///
    /// # Errors
    ///
    /// IO failures.
    pub fn compact(&mut self) -> Result<(), StoreError> {
        store::segment::write_segment(&self.index, self.dir.join(store::SEGMENT_FILE))?;
        self.wal = wal::WalWriter::create(self.dir.join(store::WAL_FILE), self.index.dim())?;
        Ok(())
    }

    /// The store directory this handle is bound to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Consumes the handle, returning the in-memory index.
    pub fn into_index(self) -> PathWeaverIndex {
        self.index
    }

    /// Consumes the handle, returning the index, the open WAL writer, and
    /// the store directory. Used by [`crate::snapshot::ConcurrentIndex`] to
    /// take over the WAL-before-publish ordering while keeping the same
    /// on-disk contract.
    pub fn into_parts(self) -> (PathWeaverIndex, wal::WalWriter, PathBuf) {
        (self.index, self.wal, self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathWeaverConfig;
    use pathweaver_datasets::{DatasetProfile, Scale};
    use pathweaver_search::SearchParams;

    fn built() -> (pathweaver_datasets::Workload, PathWeaverIndex) {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 6, 5, 13);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        (w, idx)
    }

    #[test]
    fn inserted_vector_is_findable() {
        let (w, mut idx) = built();
        let novel: Vec<f32> = w.base.row(0).iter().map(|x| x + 0.01).collect();
        let id = idx.insert(&novel);
        assert_eq!(id as usize, w.base.len());
        let mut queries = pathweaver_vector::VectorSet::empty(idx.dim());
        queries.push(&novel);
        let out = idx.search_pipelined(&queries, &SearchParams::default());
        assert!(out.results[0].contains(&id), "inserted id missing: {:?}", out.results[0]);
    }

    #[test]
    fn insert_updates_all_structures() {
        let (w, mut idx) = built();
        let before: Vec<usize> = idx.shards.iter().map(|s| s.len()).collect();
        let _ = idx.insert(w.base.row(1));
        let s = idx
            .shards
            .iter()
            .position(|sh| {
                sh.len() != before[idx.shards.iter().position(|x| std::ptr::eq(x, sh)).unwrap()]
            })
            .unwrap();
        let shard = &idx.shards[s];
        assert_eq!(shard.vectors.len(), shard.graph.num_nodes());
        assert_eq!(shard.vectors.len(), shard.global_ids.len());
        assert_eq!(shard.intershard.as_ref().unwrap().len(), shard.len());
        assert!(shard.deleted.capacity() >= shard.len());
    }

    #[test]
    fn deleted_vector_leaves_results() {
        let (w, mut idx) = built();
        // Query for an exact base vector, then tombstone it.
        let target_global = 7u32;
        let mut queries = pathweaver_vector::VectorSet::empty(idx.dim());
        queries.push(w.base.row(target_global as usize));
        let before = idx.search_pipelined(&queries, &SearchParams::default());
        assert!(before.results[0].contains(&target_global));
        assert!(idx.delete(target_global));
        assert!(!idx.delete(target_global), "double delete must be false");
        let after = idx.search_pipelined(&queries, &SearchParams::default());
        assert!(!after.results[0].contains(&target_global));
        assert_eq!(idx.live_vectors(), w.base.len() - 1);
    }

    #[test]
    fn delete_unknown_id_is_false() {
        let (_, mut idx) = built();
        assert!(!idx.delete(999_999));
    }

    #[test]
    fn maintain_rebuilds_heavily_deleted_shard() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 5, 19);
        let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        // Tombstone 40 % of shard 0.
        let victims: Vec<u32> = idx.shards[0]
            .global_ids
            .iter()
            .step_by(2)
            .copied()
            .take(idx.shards[0].len() * 2 / 5)
            .collect();
        for &g in &victims {
            assert!(idx.delete(g));
        }
        let len_before = idx.shards[0].len();
        let rebuilt = idx.maintain(0.3).unwrap();
        assert_eq!(rebuilt, 1);
        let shard = &idx.shards[0];
        assert_eq!(shard.len(), len_before - victims.len());
        assert_eq!(shard.deleted.count(), 0);
        assert_eq!(shard.graph.num_nodes(), shard.len());
        assert_eq!(shard.intershard.as_ref().unwrap().len(), shard.len());
        // The predecessor's table into the rebuilt shard must be in range.
        let prev = &idx.shards[1];
        let prev_table = prev.intershard.as_ref().unwrap();
        for u in 0..prev.len() as u32 {
            assert!((prev_table.target(u) as usize) < shard.len());
        }
        // Victims stay gone; search still works end to end.
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        for hits in &out.results {
            for id in hits {
                assert!(!victims.contains(id), "tombstoned id {id} resurfaced");
            }
        }
        // A second pass is a no-op.
        assert_eq!(idx.maintain(0.3).unwrap(), 0);
    }

    #[test]
    fn insert_after_maintain_never_reuses_ids() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, 29);
        let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let victims: Vec<u32> = idx.shards[0]
            .global_ids
            .iter()
            .step_by(2)
            .copied()
            .take(idx.shards[0].len() / 2)
            .collect();
        for &g in &victims {
            idx.delete(g);
        }
        assert_eq!(idx.maintain(0.3).unwrap(), 1);
        // New ids must stay above every live id even after compaction.
        let id = idx.insert(w.base.row(0));
        assert_eq!(id as usize, w.base.len(), "id high-water mark must not rewind");
        let all: Vec<u32> = idx.shards.iter().flat_map(|s| s.global_ids.iter().copied()).collect();
        let unique: std::collections::HashSet<u32> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "duplicate global ids after maintain+insert");
    }

    #[test]
    fn heavy_local_deletion_still_returns_k_live_results() {
        // Tombstone a query's nearest neighbors: the over-fetch must surface
        // the live nodes ranked just past them.
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 1, 12, 31);
        let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(1)).unwrap();
        let params = SearchParams::default();
        let before = idx.search_pipelined(&w.queries, &params);
        for &g in &before.results[0][..6] {
            assert!(idx.delete(g));
        }
        let after = idx.search_pipelined(&w.queries, &params);
        assert_eq!(after.results[0].len(), params.k, "k live results expected");
        for id in &after.results[0] {
            assert!(!before.results[0][..6].contains(id), "tombstoned id returned");
        }
    }

    #[test]
    fn maintain_ignores_lightly_deleted_shards() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, 23);
        let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let g = idx.shards[0].global_ids[0];
        idx.delete(g);
        assert_eq!(idx.maintain(0.3).unwrap(), 0);
        assert_eq!(idx.shards[0].deleted.count(), 1);
    }

    #[test]
    fn maintain_rejects_bad_threshold_without_panicking() {
        let (_, mut idx) = built();
        for bad in [0.0, -0.3, 1.5, f64::NAN] {
            let err = idx.maintain(bad).unwrap_err();
            assert!(matches!(err, MaintainError::InvalidThreshold { .. }), "{bad} accepted");
        }
        // A valid threshold still works after the rejections.
        assert_eq!(idx.maintain(1.0).unwrap(), 0);
    }

    #[test]
    fn maintain_folds_nearly_emptied_shard_instead_of_skipping() {
        // Regression: `maintain` used to `continue` once a shard's survivor
        // count fell to degree + 1 or fewer, leaving a ~100 %-tombstoned
        // graph serving bridges forever. The fold must compact the remnant.
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 6, 5, 37);
        let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let degree = idx.config.graph.degree;
        // Tombstone shard 0 down to degree survivors — under the old skip
        // condition this shard would never be rebuilt.
        let ids: Vec<u32> = idx.shards[0].global_ids.clone();
        let keep = degree.min(ids.len().saturating_sub(1));
        for &g in &ids[keep..] {
            assert!(idx.delete(g));
        }
        let dead_before = idx.shards[0].deleted.count();
        assert!(dead_before > 0);
        assert!(
            ids.len() - dead_before <= degree + 1,
            "test setup must land in the remnant regime"
        );
        assert_eq!(idx.maintain(0.3).unwrap(), 1, "remnant shard must be folded, not skipped");
        let shard = &idx.shards[0];
        assert_eq!(shard.deleted.count(), 0, "tombstones must be physically gone");
        assert_eq!(shard.len(), keep);
        assert_eq!(shard.graph.num_nodes(), keep);
        // The ring tables on both sides of the folded shard stay in range.
        let prev_table = idx.shards[1].intershard.as_ref().unwrap();
        for u in 0..idx.shards[1].len() as u32 {
            assert!((prev_table.target(u) as usize) < shard.len());
        }
        // Every survivor is still findable through the remnant graph.
        let params = SearchParams::default();
        for (local, &g) in idx.shards[0].global_ids.clone().iter().enumerate() {
            let queries = idx.shards[0].vectors.gather(&[local]);
            let out = idx.search_pipelined(&queries, &params);
            assert!(out.results[0].contains(&g), "survivor {g} lost by the fold");
        }
    }

    #[test]
    fn maintain_keeps_bridge_when_shard_fully_tombstoned() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 6, 5, 43);
        let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let ids: Vec<u32> = idx.shards[0].global_ids.clone();
        for &g in &ids {
            assert!(idx.delete(g));
        }
        assert_eq!(idx.maintain(0.3).unwrap(), 1);
        let shard = &idx.shards[0];
        assert_eq!(shard.len(), 1, "one bridge node keeps the ring searchable");
        assert_eq!(shard.deleted.count(), 1, "the bridge stays tombstoned");
        // The bridge never surfaces; searches still answer from live shards.
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        for hits in &out.results {
            for id in hits {
                assert!(!ids.contains(id), "tombstoned id {id} resurfaced");
            }
        }
        // A second pass is a no-op (no rebuild storm on the minimal remnant).
        assert_eq!(idx.maintain(0.3).unwrap(), 0);
    }

    #[test]
    fn delete_outcome_three_way() {
        let (w, mut idx) = built();
        assert_eq!(idx.delete_outcome(7), DeleteOutcome::Applied);
        assert_eq!(idx.delete_outcome(7), DeleteOutcome::AlreadyDeleted);
        assert_eq!(idx.delete_outcome(999_999), DeleteOutcome::Unknown);
        // An id compacted away by maintain is AlreadyDeleted, not Unknown:
        // it was allocated once and its slot is gone.
        let victims: Vec<u32> = idx.shards[0]
            .global_ids
            .iter()
            .step_by(2)
            .copied()
            .take(idx.shards[0].len() * 2 / 5)
            .collect();
        for &g in &victims {
            idx.delete(g);
        }
        assert!(idx.maintain(0.3).unwrap() >= 1);
        assert_eq!(idx.delete_outcome(victims[0]), DeleteOutcome::AlreadyDeleted);
        // Fresh inserts stay deletable exactly once.
        let id = idx.insert(w.base.row(0));
        assert_eq!(idx.delete_outcome(id), DeleteOutcome::Applied);
        assert_eq!(idx.delete_outcome(id), DeleteOutcome::AlreadyDeleted);
    }

    #[test]
    fn insert_into_tiny_shard_stays_in_range() {
        // A shard smaller than the graph degree must not pad the new row
        // with fabricated ids at or past the new node's own id (self-loop
        // or out-of-range panic in `push_node`).
        let dim = 4;
        let n = 4usize;
        let degree = 6usize;
        let mut vectors = pathweaver_vector::VectorSet::empty(dim);
        for i in 0..n {
            let row: Vec<f32> = (0..dim).map(|d| (i * dim + d) as f32).collect();
            vectors.push(&row);
        }
        let lists: Vec<Vec<u32>> =
            (0..n).map(|u| (0..degree).map(|j| ((u + j + 1) % n) as u32).collect()).collect();
        let graph = pathweaver_graph::FixedDegreeGraph::from_lists(degree, &lists);
        let shard = crate::index::ShardIndex {
            global_ids: (0..n as u32).collect(),
            deleted: pathweaver_util::FixedBitSet::new(n),
            vectors,
            graph,
            dir_table: None,
            quantized: None,
            ghost: None,
            intershard: None,
        };
        let mut idx = PathWeaverIndex {
            config: PathWeaverConfig::test_scale(1),
            shards: vec![Arc::new(shard)],
            assignment: crate::shard::ShardAssignment::random(n, 1, 7),
            build_report: pathweaver_graph::BuildReport::new(),
            ledgers: Vec::new(),
            num_vectors: n,
        };
        let id = idx.insert(&[0.5; 4]);
        assert_eq!(id, n as u32);
        let local = (idx.shards[0].len() - 1) as u32;
        let row = idx.shards[0].graph.neighbors(local);
        assert!(
            row.iter().all(|&v| v < local),
            "new node's row references itself or out-of-range ids: {row:?}"
        );
    }

    #[test]
    fn insert_extends_quantized_tier_and_stays_searchable() {
        let (w, mut idx) = built();
        assert!(idx.shards.iter().all(|s| s.quantized.is_some()), "test_scale builds the tier");
        let novel: Vec<f32> = w.base.row(2).iter().map(|x| x + 0.02).collect();
        let id = idx.insert(&novel);
        for shard in &idx.shards {
            let q = shard.quantized.as_ref().unwrap();
            assert_eq!(q.len(), shard.vectors.len(), "tier must track the vectors");
        }
        let mut queries = pathweaver_vector::VectorSet::empty(idx.dim());
        queries.push(&novel);
        let params = SearchParams { quantized: true, ..Default::default() };
        let out = idx.search_pipelined(&queries, &params);
        assert!(out.results[0].contains(&id), "inserted id missing: {:?}", out.results[0]);
    }

    #[test]
    fn maintain_rebuilds_quantized_tier() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 5, 19);
        let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let victims: Vec<u32> = idx.shards[0]
            .global_ids
            .iter()
            .step_by(2)
            .copied()
            .take(idx.shards[0].len() * 2 / 5)
            .collect();
        for &g in &victims {
            assert!(idx.delete(g));
        }
        assert_eq!(idx.maintain(0.3).unwrap(), 1);
        let shard = &idx.shards[0];
        let q = shard.quantized.as_ref().expect("rebuild keeps the tier");
        assert_eq!(q.len(), shard.vectors.len());
        // The rebuilt grid is the fresh quantization of the survivors.
        assert_eq!(q, &pathweaver_vector::QuantizedSet::quantize(&shard.vectors));
    }

    #[test]
    fn many_inserts_keep_index_consistent() {
        let (w, mut idx) = built();
        for i in 0..20 {
            let novel: Vec<f32> = w.base.row(i).iter().map(|x| x * 1.001).collect();
            idx.insert(&novel);
        }
        assert_eq!(idx.num_vectors, w.base.len() + 20);
        let total: usize = idx.shards.iter().map(|s| s.len()).sum();
        assert_eq!(total, idx.num_vectors);
        // Search still functions.
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        assert_eq!(out.results.len(), w.queries.len());
    }
}
