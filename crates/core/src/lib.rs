//! PathWeaver — the framework API.
//!
//! This crate assembles the substrates into the system the paper describes:
//!
//! - [`config`]: [`PathWeaverConfig`] — device count, graph/ghost/DGS/
//!   inter-shard parameters and feature toggles (the ablation axes of
//!   Fig 11).
//! - [`shard`]: random dataset partitioning and global↔local id mapping.
//! - [`index`]: [`PathWeaverIndex::build`] — per-shard CAGRA-style graphs
//!   plus the three auxiliary structures (inter-shard edge tables, ghost
//!   shards, direction tables), with simulated-memory accounting and a
//!   build-time report (Fig 17).
//! - [`pipeline`]: pipelining-based path extension over the ring executor
//!   (§3.1) with ghost staging in the first stage (§3.2).
//! - [`naive`]: the sharding baseline (every device searches every query).
//! - [`reduce`]: host-side top-k reduction across devices.
//! - [`eval`]: QPS–recall sweeps, `QPS@recall` readout and ablation runs.
//! - [`baselines`]: CAGRA (+sharding), GGNN-style, and HNSW-CPU baselines.
//! - [`serve`]: streaming query serving — a micro-batching admission queue
//!   over a persistent device ring that keeps multiple batches overlapped in
//!   flight (the throughput mode §3.1's pipelining exists for).
//! - [`cluster`]: the multi-node layer — length-prefixed frame RPC (TCP or
//!   an in-process channel transport), consistent-hash routing of
//!   partitions to nodes, N-way replication with read fan-out, health
//!   checks and failover; a 1-node cluster is bit-identical to
//!   [`serve::serve_once`].
//! - [`dynamic`]: shard-local insertions and logical deletions (§6.2), and
//!   [`DurableIndex`] — the same mutations under write-ahead durability.
//! - [`snapshot`]: snapshot-isolated concurrent mutation —
//!   [`snapshot::ConcurrentIndex`] lets searches pin immutable
//!   point-in-time snapshots while inserts/deletes stream and a background
//!   maintainer rebuilds heavily-deleted shards off the hot path.
//! - [`store`]: the durable index store — checksummed zero-copy segment
//!   files plus a write-ahead log, with a legacy-directory loader behind a
//!   format probe.
//! - [`report`]: JSON experiment records for the reproduction harness.
//!
//! # Quickstart
//!
//! ```
//! use pathweaver_core::prelude::*;
//!
//! // A small clustered dataset and queries.
//! let profile = pathweaver_datasets::DatasetProfile::deep10m_like();
//! let workload = profile.workload(pathweaver_datasets::Scale::Test, 8, 10, 42);
//!
//! // Build a 2-device PathWeaver index with all features on.
//! let config = PathWeaverConfig::test_scale(2);
//! let index = PathWeaverIndex::build(&workload.base, &config).unwrap();
//!
//! // Pipelined multi-GPU search.
//! let params = SearchParams::default();
//! let out = index.search_pipelined(&workload.queries, &params);
//! assert_eq!(out.results.len(), workload.queries.len());
//! let recall = pathweaver_datasets::recall_batch(&workload.ground_truth, &out.results, 10);
//! assert!(recall > 0.5);
//! ```

#![forbid(unsafe_code)]

pub mod baselines;
pub mod cluster;
pub mod config;
pub mod dynamic;
pub mod eval;
pub mod index;
pub mod naive;
pub mod pipeline;
pub mod reduce;
pub mod report;
pub mod serve;
pub mod shard;
pub mod snapshot;
pub mod store;

pub use cluster::{ClusterError, ClusterOutput, LocalCluster, Router};
pub use config::{ClusterConfig, PathWeaverConfig};
pub use dynamic::{DeleteOutcome, DurableIndex, MaintainError};
pub use index::{PathWeaverIndex, SearchOutput, ShardIndex};
pub use serve::{
    QueryResult, QueryTicket, ServeConfig, ServeError, ServeSource, Server, SubmitError,
};
pub use snapshot::{ConcurrentError, ConcurrentIndex, IndexSnapshot, MaintainerHandle};
pub use store::{StoreError, StoreReport};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::baselines::{CagraBaseline, GgnnBaseline, HnswBaseline};
    pub use crate::cluster::{ClusterError, ClusterOutput, LocalCluster, Router, TransportKind};
    pub use crate::config::{ClusterConfig, PathWeaverConfig};
    pub use crate::dynamic::{DeleteOutcome, DurableIndex, MaintainError};
    pub use crate::eval::{qps_at_recall, sweep_beam, sweep_iterations, SweepPoint};
    pub use crate::index::{PathWeaverIndex, SearchOutput, ShardIndex};
    pub use crate::serve::{
        QueryResult, QueryTicket, ServeConfig, ServeError, ServeSource, Server, SubmitError,
    };
    pub use crate::snapshot::{ConcurrentError, ConcurrentIndex, IndexSnapshot, MaintainerHandle};
    pub use crate::store::{StoreError, StoreReport};
    pub use pathweaver_datasets::{recall_batch, DatasetProfile, Scale, Workload};
    pub use pathweaver_gpusim::{CostModel, DeviceSpec, RingTopology};
    pub use pathweaver_search::{DgsParams, SearchParams};
}
