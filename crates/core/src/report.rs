//! Machine-readable experiment records.
//!
//! The `reproduce` harness prints human tables and, alongside, persists each
//! experiment as JSON so EXPERIMENTS.md can be regenerated and results can
//! be diffed across runs. When observability is enabled
//! (`PATHWEAVER_OBS=1`), [`save_metrics_summary`] additionally persists the
//! metrics registry snapshot next to the records.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One reproduced table/figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `fig8` or `table1`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Free-form caveats (scale substitutions, simulated-clock note, ...).
    pub notes: Vec<String>,
    /// Row objects; keys are column names.
    pub rows: Vec<serde_json::Value>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self { id: id.into(), title: title.into(), notes: Vec::new(), rows: Vec::new() }
    }

    /// Appends a serializable row.
    ///
    /// # Panics
    ///
    /// Panics if the row fails to serialize (programmer error).
    pub fn push_row<T: Serialize>(&mut self, row: &T) {
        self.rows.push(serde_json::to_value(row).expect("row serializes"));
    }

    /// Adds a caveat note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Writes the record as pretty JSON to `dir/<id>.json`.
    pub fn save(&self, dir: impl AsRef<Path>) -> std::io::Result<std::path::PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path)?;
        let body = serde_json::to_string_pretty(self).expect("record serializes");
        f.write_all(body.as_bytes())?;
        f.write_all(b"\n")?;
        Ok(path)
    }

    /// Loads a record back.
    ///
    /// # Errors
    ///
    /// IO errors or malformed JSON.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, Box<dyn std::error::Error>> {
        let body = std::fs::read_to_string(path)?;
        Ok(serde_json::from_str(&body)?)
    }
}

/// Writes the global observability snapshot as pretty JSON to
/// `dir/metrics_summary.json`, so experiment results ship with the
/// per-stage latency/skip-rate/entry metrics that produced them.
///
/// Returns `Ok(None)` without touching the filesystem when observability is
/// disabled (the snapshot would be empty noise).
///
/// # Errors
///
/// IO errors creating the directory or writing the file.
pub fn save_metrics_summary(dir: impl AsRef<Path>) -> std::io::Result<Option<std::path::PathBuf>> {
    if !pathweaver_obs::enabled() {
        return Ok(None);
    }
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join("metrics_summary.json");
    let mut body = pathweaver_obs::global_snapshot().to_json();
    body.push('\n');
    std::fs::write(&path, body)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Row {
        dataset: &'static str,
        qps: f64,
    }

    #[test]
    fn roundtrip_via_disk() {
        let dir = std::env::temp_dir().join(format!("pw-report-test-{}", std::process::id()));
        let mut rec = ExperimentRecord::new("fig0", "smoke");
        rec.note("simulated clock");
        rec.push_row(&Row { dataset: "sift-like", qps: 123.0 });
        let path = rec.save(&dir).unwrap();
        let back = ExperimentRecord::load(&path).unwrap();
        assert_eq!(back.id, "fig0");
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.rows[0]["dataset"], "sift-like");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_creates_directories() {
        let dir = std::env::temp_dir().join(format!("pw-report-nested-{}/a/b", std::process::id()));
        let rec = ExperimentRecord::new("t", "t");
        let path = rec.save(&dir).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).ok();
    }
}
