//! Pipelining-based path extension (paper §3.1) with ghost staging (§3.2).
//!
//! The query batch is split into one chunk per device. Chunk `d` starts on
//! device `d`: the first stage searches from scratch (or from ghost-stage
//! seeds), every later stage starts from the forwarded `I(z)` seeds of the
//! previous shard's best hits. After `N` stages every chunk has visited
//! every shard and the host reduces the accumulated candidates.

use crate::index::{PathWeaverIndex, SearchOutput};
use crate::reduce::reduce_hits;
use pathweaver_gpusim::{obs_bridge, run_ring_stream, CostModel, RingMessage, StageRecord};
use pathweaver_obs::{trace, SpanTimer, TraceEvent};
use pathweaver_search::{BatchStats, EntryPolicy, SearchParams};
use pathweaver_vector::VectorSet;

/// In-flight state of one query chunk. Shared between the one-shot
/// pipelined mode and the streaming serve layer.
pub(crate) struct ChunkState {
    /// Global query row indices of this chunk (rows of the batch's
    /// `VectorSet`).
    pub(crate) query_rows: Vec<usize>,
    /// Per-query entry seeds for the *next* stage (local ids of the device
    /// that will process the chunk next); empty before stage 0.
    pub(crate) seeds: Vec<Vec<u32>>,
    /// Accumulated `(distance, global id)` candidates per query.
    pub(crate) hits: Vec<Vec<(f32, u32)>>,
    /// Accumulated statistics of this chunk.
    pub(crate) stats: BatchStats,
}

/// Splits a batch of `num_queries` rows into contiguous per-device chunks —
/// chunk `d` gets rows `[d·Q/N, (d+1)·Q/N)` — skipping chunks that would be
/// empty (`Q < N` leaves some devices without a chunk). Empty chunks used to
/// circulate anyway, paying `N` no-op stage records each and polluting the
/// per-stage histograms; now they are never submitted.
pub(crate) fn make_chunks(num_queries: usize, num_devices: usize) -> Vec<(usize, ChunkState)> {
    (0..num_devices)
        .filter_map(|d| {
            let lo = d * num_queries / num_devices;
            let hi = (d + 1) * num_queries / num_devices;
            if lo == hi {
                return None;
            }
            let rows: Vec<usize> = (lo..hi).collect();
            let m = rows.len();
            Some((
                d,
                ChunkState {
                    query_rows: rows,
                    seeds: vec![Vec::new(); m],
                    hits: vec![Vec::new(); m],
                    stats: BatchStats::default(),
                },
            ))
        })
        .collect()
}

/// Host-side reduction of finished chunks back into global query order.
/// `finished` must be sorted by origin chunk (the executor guarantees it),
/// so stats merge in a deterministic order.
pub(crate) fn reduce_chunks(
    finished: Vec<RingMessage<ChunkState>>,
    num_queries: usize,
    k: usize,
) -> (Vec<Vec<(f32, u32)>>, BatchStats) {
    let mut hits_by_row: Vec<Vec<(f32, u32)>> = vec![Vec::new(); num_queries];
    let mut stats = BatchStats::default();
    for msg in finished {
        let mut chunk = msg.payload;
        stats.merge(&chunk.stats);
        for (i, row) in chunk.query_rows.iter().enumerate() {
            // Take the accumulated list instead of cloning it: the chunk
            // is consumed here, and reduce only needs it by value to sort.
            let hits = std::mem::take(&mut chunk.hits[i]);
            hits_by_row[*row] = reduce_hits(&[hits], k);
        }
    }
    (hits_by_row, stats)
}

impl PathWeaverIndex {
    /// Pipelined multi-GPU search (the full PathWeaver mode).
    ///
    /// With one device this degenerates to the single-GPU mode: one stage,
    /// ghost staging still applies.
    ///
    /// # Panics
    ///
    /// Panics if `queries` is empty or its dimensionality differs from the
    /// index.
    pub fn search_pipelined(&self, queries: &VectorSet, params: &SearchParams) -> SearchOutput {
        assert!(!queries.is_empty(), "empty query batch");
        assert_eq!(queries.dim(), self.dim(), "query dimensionality mismatch");
        let n = self.num_devices();
        let cost = CostModel::new(self.config.device);
        // Batch ids are only consumed while tracing, so metrics-only runs
        // leave the sequence untouched.
        let batch_id = if pathweaver_obs::tracing_enabled() { trace::next_batch_id() } else { 0 };

        // Contiguous chunking, empty chunks skipped.
        let chunks = make_chunks(queries.len(), n);

        let (finished, timeline) = run_ring_stream(n, n, batch_id, chunks, |device, stage, msg| {
            self.run_stage(
                device,
                stage,
                msg.origin_chunk,
                &mut msg.payload,
                queries,
                params,
                &cost,
                batch_id,
            )
        });

        let (hits_by_row, stats) = reduce_chunks(finished, queries.len(), params.k);
        SearchOutput::from_parts(hits_by_row, stats, timeline, queries.len())
    }

    /// Executes one pipeline stage of one chunk on one device. Returns
    /// `None` for an empty chunk (nothing to search, no record to emit) —
    /// the executor skips such chunks at submission, so this is a guard, not
    /// a hot path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_stage(
        &self,
        device: usize,
        stage: usize,
        origin_chunk: usize,
        chunk: &mut ChunkState,
        queries: &VectorSet,
        params: &SearchParams,
        cost: &CostModel,
        batch_id: u64,
    ) -> Option<StageRecord> {
        if chunk.query_rows.is_empty() {
            return None;
        }
        // Stage-entry span: wall time of the whole hop (ghost stage, search,
        // seed forwarding). Inert unless observability is on.
        let span = SpanTimer::start();
        let n = self.num_devices();
        let shard = &self.shards[device];
        let chunk_queries = queries.gather(&chunk.query_rows);

        // Stage 0 starts from scratch (ghost staging if available); later
        // stages start from the forwarded I(z) seeds. Empty seed lists
        // (possible when every forwarded hit was tombstoned) fall back to
        // random entries.
        let (entries, use_ghost): (Vec<EntryPolicy>, bool) = if stage == 0 {
            (vec![EntryPolicy::Random { count: params.candidates }], shard.ghost.is_some())
        } else {
            let e = chunk
                .seeds
                .iter()
                .map(|s| {
                    if s.is_empty() {
                        EntryPolicy::Random { count: params.candidates }
                    } else {
                        EntryPolicy::Seeded {
                            seeds: s.clone(),
                            // Scale the escape-hatch entries with the search
                            // width so wider (higher-recall) configurations
                            // keep their diversity.
                            extra_random: self.config.seed_extra_random.max(params.candidates / 8),
                        }
                    }
                })
                .collect();
            (e, false)
        };

        // Later stages converge in far fewer iterations (the whole point of
        // path extension); the kernel's convergence check realizes that
        // automatically, so parameters stay identical across stages.
        let out = shard.search_local(&chunk_queries, params, &entries, use_ghost, &self.config);
        let mut counters = out.counters;
        chunk.stats.merge(&out.stats);

        // Accumulate global candidates.
        for (i, hits) in out.hits.iter().enumerate() {
            chunk.hits[i].extend(hits.iter().map(|&(d, local)| (d, shard.to_global(local))));
        }

        // Prepare forwarded seeds through this shard's I(u) table.
        let mut comm_s = 0.0;
        if stage + 1 < n {
            let table = shard
                .intershard
                .as_ref()
                // lint: allow(hot-panic) — builder invariant, not input: every
                // multi-device build attaches I(u) tables before serving.
                .expect("multi-device index always builds inter-shard tables");
            for (i, hits) in out.hits.iter().enumerate() {
                chunk.seeds[i] = hits
                    .iter()
                    .take(self.config.forward_width)
                    .map(|&(_, local)| table.target(local))
                    .collect();
            }
            let bytes = (chunk.query_rows.len() * self.config.forward_width * 4) as u64;
            counters.comm_bytes += bytes;
            comm_s = self.config.topology.forward_time(device, bytes);
        }

        let mut breakdown = cost.kernel_time(&counters, self.dim());
        breakdown.comm_s = comm_s;

        // Stage-exit instrumentation: per-stage latency/iteration/distance
        // histograms, the gpu-sim counter bridge, and (when tracing) one
        // structured trace event for this shard hop. All of it only reads
        // the counters, so the simulated clock cannot be perturbed.
        let wall_ns = span.elapsed_ns();
        if pathweaver_obs::enabled() {
            let r = pathweaver_obs::registry();
            r.histogram(&format!("pipeline.stage{stage}.wall_ns")).record(wall_ns);
            r.histogram(&format!("pipeline.stage{stage}.iterations")).record(counters.iterations);
            r.histogram(&format!("pipeline.stage{stage}.dist_calcs")).record(counters.dist_calcs);
            obs_bridge::record_counters("pipeline", &counters);
        }
        if pathweaver_obs::tracing_enabled() {
            trace::record(TraceEvent {
                batch: batch_id,
                chunk: origin_chunk,
                device,
                stage,
                queries: chunk.query_rows.len() as u64,
                iterations: counters.iterations,
                dist_calcs: counters.dist_calcs,
                bytes_read: counters.bytes_read(),
                comm_bytes: counters.comm_bytes,
                wall_ns,
            });
        }
        Some(StageRecord { device, stage, origin_chunk, batch: batch_id, breakdown, counters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathWeaverConfig;
    use pathweaver_datasets::{recall_batch, DatasetProfile, Scale};

    fn workload() -> pathweaver_datasets::Workload {
        DatasetProfile::deep10m_like().workload(Scale::Test, 12, 10, 21)
    }

    #[test]
    fn pipelined_search_reaches_high_recall() {
        let w = workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(3)).unwrap();
        let params = SearchParams::default();
        let out = idx.search_pipelined(&w.queries, &params);
        assert_eq!(out.results.len(), w.queries.len());
        let recall = recall_batch(&w.ground_truth, &out.results, 10);
        assert!(recall > 0.8, "recall {recall}");
        assert!(out.qps > 0.0);
        assert!(out.makespan_s > 0.0);
    }

    #[test]
    fn timeline_has_n_by_n_stages() {
        let w = workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(3)).unwrap();
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        assert_eq!(out.timeline.num_stages(), 3);
        assert_eq!(out.timeline.records().len(), 9);
    }

    #[test]
    fn later_stages_are_cheaper_than_first() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 20, 10, 33);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        let times = out.timeline.stage_times_s();
        assert!(times[0] > times[1], "stage0 {} stage1 {}", times[0], times[1]);
    }

    #[test]
    fn communication_recorded_between_stages() {
        let w = workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        let agg = out.timeline.aggregate_counters();
        assert!(agg.comm_bytes > 0);
        assert!(out.breakdown.comm_s > 0.0);
        // §6.4: communication must be a small fraction of total time.
        assert!(out.breakdown.comm_s < 0.25 * out.breakdown.total_s());
    }

    #[test]
    fn single_device_pipeline_works() {
        let w = workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(1)).unwrap();
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        let recall = recall_batch(&w.ground_truth, &out.results, 10);
        assert!(recall > 0.8, "recall {recall}");
        assert_eq!(out.timeline.num_stages(), 1);
    }

    #[test]
    fn fewer_queries_than_devices_skips_empty_chunks() {
        // Regression: 1 query on 4 devices used to circulate 3 empty chunks
        // through all 4 stages, logging 16 stage records instead of 4.
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 1, 10, 41);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(4)).unwrap();
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        assert_eq!(out.results.len(), 1);
        assert!(!out.results[0].is_empty());
        assert_eq!(
            out.timeline.records().len(),
            4,
            "only the non-empty chunk should produce records"
        );
        // The lone chunk still visits every device in ring order.
        let devices: Vec<usize> = out.timeline.records().iter().map(|r| r.device).collect();
        let origin = out.timeline.records()[0].origin_chunk;
        let want: Vec<usize> = (0..4).map(|s| (origin + s) % 4).collect();
        assert_eq!(devices, want);
        // Every stage of the batch shows up exactly once.
        let stages: Vec<usize> = out.timeline.records().iter().map(|r| r.stage).collect();
        assert_eq!(stages, vec![0, 1, 2, 3]);
    }

    #[test]
    fn make_chunks_covers_rows_without_empties() {
        for (q, n) in [(1usize, 4usize), (3, 4), (5, 4), (12, 3), (4, 4), (2, 5)] {
            let chunks = make_chunks(q, n);
            assert!(chunks.iter().all(|(_, c)| !c.query_rows.is_empty()), "q={q} n={n}");
            let rows: Vec<usize> =
                chunks.iter().flat_map(|(_, c)| c.query_rows.iter().copied()).collect();
            assert_eq!(rows, (0..q).collect::<Vec<_>>(), "q={q} n={n}");
        }
    }

    #[test]
    fn results_sorted_and_unique_per_query() {
        let w = workload();
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let out = idx.search_pipelined(&w.queries, &SearchParams::default());
        for hits in &out.hits {
            assert!(hits.windows(2).all(|p| p[0].0 <= p[1].0));
            let ids: std::collections::HashSet<u32> = hits.iter().map(|h| h.1).collect();
            assert_eq!(ids.len(), hits.len());
        }
    }
}
