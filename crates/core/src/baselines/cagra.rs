//! CAGRA and CAGRA-with-sharding baselines.
//!
//! CAGRA is PathWeaver's substrate, so the baseline is the same kernel and
//! graph build with every PathWeaver addition turned off: no ghost shards,
//! no direction tables, no pipelining — multi-device operation uses plain
//! sharding, exactly how the paper extends the official implementation.

use crate::config::PathWeaverConfig;
use crate::index::{BuildError, PathWeaverIndex, SearchOutput};
use pathweaver_search::SearchParams;
use pathweaver_vector::VectorSet;

/// The CAGRA baseline: a stripped PathWeaver index searched in sharding
/// mode.
#[derive(Debug, Clone)]
pub struct CagraBaseline {
    /// The underlying stripped index.
    pub index: PathWeaverIndex,
}

impl CagraBaseline {
    /// Builds the baseline over `num_devices` simulated GPUs.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the index build.
    pub fn build(dataset: &VectorSet, num_devices: usize) -> Result<Self, BuildError> {
        let config = PathWeaverConfig::cagra_sharding(num_devices);
        Ok(Self { index: PathWeaverIndex::build(dataset, &config)? })
    }

    /// Builds with a custom configuration (degree sweeps, testbed variants).
    ///
    /// Ghost and direction structures are forcibly disabled to keep the
    /// baseline honest.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the index build.
    pub fn build_with(
        dataset: &VectorSet,
        mut config: PathWeaverConfig,
    ) -> Result<Self, BuildError> {
        config.ghost = None;
        config.build_dir_table = false;
        Ok(Self { index: PathWeaverIndex::build(dataset, &config)? })
    }

    /// Sharded search (single device: a plain full search).
    ///
    /// DGS is forcibly disabled — the baseline never filters neighbors.
    pub fn search(&self, queries: &VectorSet, params: &SearchParams) -> SearchOutput {
        let clean = SearchParams { dgs: None, random_discard: false, ..*params };
        self.index.search_naive(queries, &clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathweaver_datasets::{recall_batch, DatasetProfile, Scale};

    #[test]
    fn baseline_has_no_pathweaver_structures() {
        let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 5, 1);
        let b = CagraBaseline::build(&w.base, 2).unwrap();
        for shard in &b.index.shards {
            assert!(shard.ghost.is_none());
            assert!(shard.dir_table.is_none());
        }
    }

    #[test]
    fn baseline_recall_is_sane() {
        let w = DatasetProfile::sift_like().workload(Scale::Test, 8, 10, 2);
        let b = CagraBaseline::build(&w.base, 2).unwrap();
        let out = b.search(&w.queries, &SearchParams::default());
        let recall = recall_batch(&w.ground_truth, &out.results, 10);
        assert!(recall > 0.75, "recall {recall}");
    }

    #[test]
    fn dgs_request_is_ignored() {
        let w = DatasetProfile::sift_like().workload(Scale::Test, 4, 5, 3);
        let b = CagraBaseline::build(&w.base, 1).unwrap();
        let params = SearchParams {
            dgs: Some(pathweaver_search::DgsParams::default()),
            ..Default::default()
        };
        // Must not panic despite the absent direction table.
        let out = b.search(&w.queries, &params);
        assert_eq!(out.results.len(), 4);
        assert_eq!(out.timeline.aggregate_counters().dir_table_bytes, 0);
    }
}
