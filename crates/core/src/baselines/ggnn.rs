//! The GGNN-style multi-GPU baseline.
//!
//! GGNN shards the dataset, builds a dense (unpruned) k-NN graph per shard,
//! and finds entry points through a sampled selection layer. The baseline
//! assembles those pieces into the framework's [`ShardIndex`] shape — the
//! selection layer slots into the ghost-shard mechanism (it plays the same
//! role: locating entry points) — and searches in sharding mode, which is
//! how GGNN natively supports multiple GPUs.

use crate::config::PathWeaverConfig;
use crate::index::{BuildError, PathWeaverIndex, SearchOutput, ShardIndex};
use crate::shard::ShardAssignment;
use pathweaver_gpusim::MemoryLedger;
use pathweaver_graph::ggnn::{GgnnIndex, GgnnParams};
use pathweaver_search::SearchParams;
use pathweaver_util::FixedBitSet;
use pathweaver_vector::VectorSet;

/// The GGNN-style baseline.
#[derive(Debug, Clone)]
pub struct GgnnBaseline {
    /// The assembled sharded index (base graphs + selection layers).
    pub index: PathWeaverIndex,
}

impl GgnnBaseline {
    /// Builds the baseline over `num_devices` simulated GPUs.
    ///
    /// # Errors
    ///
    /// [`BuildError::TooFewVectors`] for undersized datasets,
    /// [`BuildError::OutOfMemory`] when a shard exceeds device memory.
    pub fn build(
        dataset: &VectorSet,
        num_devices: usize,
        params: &GgnnParams,
    ) -> Result<Self, BuildError> {
        let mut config = PathWeaverConfig::full(num_devices);
        config.build_dir_table = false;
        let need = num_devices * (params.degree + 1);
        if dataset.len() < need {
            return Err(BuildError::TooFewVectors { have: dataset.len(), need });
        }
        let assignment = ShardAssignment::random(
            dataset.len(),
            num_devices,
            pathweaver_util::seed_from_parts(config.seed, "ggnn-shard", 0),
        );
        let mut report = pathweaver_graph::BuildReport::new();
        let mut shards = Vec::with_capacity(num_devices);
        for s in 0..num_devices {
            let vectors = assignment.gather(s, dataset);
            let built = report.time(pathweaver_graph::build_report::BuildPhase::GraphBuild, || {
                GgnnIndex::build(&vectors, params)
            });
            let deleted = FixedBitSet::new(vectors.len());
            shards.push(std::sync::Arc::new(ShardIndex {
                global_ids: assignment.members(s).to_vec(),
                vectors,
                graph: built.base,
                dir_table: None,
                quantized: None,
                ghost: Some(built.selection),
                intershard: None,
                deleted,
            }));
        }
        let mut ledgers = Vec::with_capacity(num_devices);
        for shard in &shards {
            let mut ledger = MemoryLedger::new(config.device.mem_capacity);
            for (label, bytes) in shard.resident_bytes() {
                ledger.allocate(label, bytes).map_err(BuildError::OutOfMemory)?;
            }
            ledgers.push(ledger);
        }
        Ok(Self {
            index: PathWeaverIndex {
                config,
                shards,
                assignment,
                build_report: report,
                ledgers,
                num_vectors: dataset.len(),
            },
        })
    }

    /// Sharded search through the selection layer.
    pub fn search(&self, queries: &VectorSet, params: &SearchParams) -> SearchOutput {
        let clean = SearchParams { dgs: None, random_discard: false, ..*params };
        self.index.search_naive(queries, &clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathweaver_datasets::{recall_batch, DatasetProfile, Scale};

    fn small_params() -> GgnnParams {
        GgnnParams { degree: 12, selection_ratio: 0.05, selection_degree: 6, ..Default::default() }
    }

    #[test]
    fn build_creates_selection_layers() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, 7);
        let b = GgnnBaseline::build(&w.base, 2, &small_params()).unwrap();
        for shard in &b.index.shards {
            assert!(shard.ghost.is_some(), "selection layer missing");
            assert_eq!(shard.graph.degree(), 12);
            assert!(shard.dir_table.is_none());
        }
    }

    #[test]
    fn recall_is_sane() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 9);
        let b = GgnnBaseline::build(&w.base, 2, &small_params()).unwrap();
        let out = b.search(&w.queries, &SearchParams::default());
        let recall = recall_batch(&w.ground_truth, &out.results, 10);
        assert!(recall > 0.7, "recall {recall}");
    }

    #[test]
    fn too_small_dataset_errors() {
        let tiny = VectorSet::from_fn(8, 4, |r, c| (r * c) as f32);
        assert!(matches!(
            GgnnBaseline::build(&tiny, 2, &small_params()),
            Err(BuildError::TooFewVectors { .. })
        ));
    }
}
