//! HNSW baselines: CPU search (paper §5.1) and the GPU-searched HNSW graph
//! of the ghost-staging comparison (§6.1, Fig 18).

use crate::config::PathWeaverConfig;
use crate::index::{PathWeaverIndex, ShardIndex};
use crate::shard::ShardAssignment;
use pathweaver_gpusim::MemoryLedger;
use pathweaver_graph::{Hnsw, HnswParams};
use pathweaver_util::FixedBitSet;
use pathweaver_vector::VectorSet;

/// The HNSW baseline: one CPU index over the full dataset.
#[derive(Debug, Clone)]
pub struct HnswBaseline {
    /// The hierarchical index.
    pub hnsw: Hnsw,
    /// The indexed vectors (owned copy; the CPU baseline is standalone).
    pub vectors: VectorSet,
}

/// Results plus measured CPU throughput.
#[derive(Debug, Clone)]
pub struct CpuSearchOutput {
    /// Per-query global result ids.
    pub results: Vec<Vec<u32>>,
    /// Measured wall-clock queries/second (real CPU time, not simulated).
    pub qps_measured: f64,
    /// Elapsed wall-clock seconds.
    pub elapsed_s: f64,
}

impl HnswBaseline {
    /// Builds the CPU index.
    pub fn build(dataset: &VectorSet, params: &HnswParams) -> Self {
        Self { hnsw: Hnsw::build(dataset, params), vectors: dataset.clone() }
    }

    /// CPU k-NN search over a batch, parallelized across host threads, with
    /// measured wall-clock throughput.
    ///
    /// Unlike the GPU paths, this baseline reports *real* CPU time — it runs
    /// on an actual CPU, so no simulation is needed (the paper likewise ran
    /// HNSW natively with 64 threads).
    pub fn search_cpu(&self, queries: &VectorSet, k: usize, ef: usize) -> CpuSearchOutput {
        let sw = pathweaver_obs::Stopwatch::start();
        let results: Vec<Vec<u32>> = pathweaver_util::parallel_map(queries.len(), |q| {
            self.hnsw
                .search(&self.vectors, queries.row(q), k, ef)
                .into_iter()
                .map(|(_, id)| id)
                .collect()
        });
        let elapsed_s = sw.elapsed_secs();
        let qps_measured = if elapsed_s > 0.0 { queries.len() as f64 / elapsed_s } else { 0.0 };
        CpuSearchOutput { results, qps_measured, elapsed_s }
    }

    /// Wraps the HNSW layer-0 graph as a single-device framework index so
    /// the GPU kernel can search it (Fig 18's "GPU-based HNSW").
    ///
    /// The hierarchy is discarded — the GPU kernel enters from random nodes,
    /// which is exactly the configuration ghost staging is compared against.
    pub fn as_gpu_index(&self) -> PathWeaverIndex {
        let graph = self.hnsw.layer0_as_fixed_degree();
        let n = self.vectors.len();
        let mut config = PathWeaverConfig::full(1);
        config.ghost = None;
        config.build_dir_table = false;
        config.build_quantized = false;
        let shard = ShardIndex {
            global_ids: (0..n as u32).collect(),
            vectors: self.vectors.clone(),
            graph,
            dir_table: None,
            quantized: None,
            ghost: None,
            intershard: None,
            deleted: FixedBitSet::new(n),
        };
        let mut ledger = MemoryLedger::new(config.device.mem_capacity);
        for (label, bytes) in shard.resident_bytes() {
            ledger.allocate(label, bytes).expect("HNSW graph fits a 48 GiB device at test scale");
        }
        PathWeaverIndex {
            config,
            shards: vec![std::sync::Arc::new(shard)],
            assignment: ShardAssignment::random(n, 1, 0),
            build_report: pathweaver_graph::BuildReport::new(),
            ledgers: vec![ledger],
            num_vectors: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathweaver_datasets::{recall_batch, DatasetProfile, Scale};
    use pathweaver_search::SearchParams;

    #[test]
    fn cpu_search_recall() {
        let w = DatasetProfile::sift_like().workload(Scale::Test, 10, 10, 4);
        let b = HnswBaseline::build(&w.base, &HnswParams::default());
        let out = b.search_cpu(&w.queries, 10, 64);
        let recall = recall_batch(&w.ground_truth, &out.results, 10);
        assert!(recall > 0.8, "recall {recall}");
        assert!(out.qps_measured > 0.0);
    }

    #[test]
    fn gpu_index_over_hnsw_graph_searches() {
        let w = DatasetProfile::sift_like().workload(Scale::Test, 6, 10, 5);
        let b = HnswBaseline::build(&w.base, &HnswParams::default());
        let idx = b.as_gpu_index();
        let out = idx.search_naive(&w.queries, &SearchParams::default());
        let recall = recall_batch(&w.ground_truth, &out.results, 10);
        assert!(recall > 0.7, "recall {recall}");
    }
}
