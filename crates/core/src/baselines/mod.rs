//! Evaluation baselines (paper §5.1).
//!
//! - [`cagra`]: CAGRA on one device and "CAGRA w/ Sharding" on several — the
//!   strongest GPU baseline, sharing PathWeaver's kernel with the auxiliary
//!   structures disabled.
//! - [`ggnn`]: the GGNN-style baseline — denser unpruned per-shard graphs
//!   with a sampled selection layer for entry points.
//! - [`hnsw`]: HNSW on the CPU — the paper's CPU reference — plus the
//!   GPU-searched-HNSW-graph configuration of Fig 18.

pub mod cagra;
pub mod ggnn;
pub mod hnsw;

pub use cagra::CagraBaseline;
pub use ggnn::GgnnBaseline;
pub use hnsw::HnswBaseline;
