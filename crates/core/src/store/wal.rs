//! Append-only write-ahead log for index mutations.
//!
//! The segment file is immutable; every `insert`/`delete` between compactions
//! is logged here *before* it is acknowledged, so a crash at any byte offset
//! loses at most the mutation that never finished writing. File layout:
//!
//! ```text
//! offset 0    magic "PWAL" | version u16 | flags u16 | dim u32 | reserved u32
//! offset 16   record | record | ...
//! record  =   len u32 | crc u32 | payload (len bytes)
//! payload =   op u8 (1=insert, 2=delete)
//!             insert: expected global id u32, then dim f32 components
//!             delete: global id u32
//! ```
//!
//! All words are little-endian. `crc` covers the payload only; `len` is
//! implicitly validated by the CRC (a corrupted length either overruns the
//! file or frames bytes whose checksum cannot match).
//!
//! **Torn-tail semantics**: [`read_wal`] replays the longest valid prefix
//! and reports everything after the first invalid frame as
//! [`WalReplay::torn_bytes`] — a torn tail is an expected crash artifact,
//! not corruption, and is never an error. Only the *header* failing
//! validation is [`StoreError::Corrupt`]. Reading never modifies the file;
//! [`crate::dynamic::DurableIndex::open`] calls [`truncate_tail`] to repair
//! the file on disk before appending to it again.

use super::{corrupt, StoreError};
use crate::index::PathWeaverIndex;
use pathweaver_util::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: [u8; 4] = *b"PWAL";
const VERSION: u16 = 1;
/// Fixed header length; records start here.
pub const WAL_HEADER_LEN: u64 = 16;
/// Frame prefix: `len u32 | crc u32`.
const FRAME_LEN: usize = 8;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;

/// One decoded mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Insert `vector`; replaying it must allocate `expected_id`.
    Insert {
        /// Global id the original insert returned.
        expected_id: u32,
        /// The inserted vector.
        vector: Vec<f32>,
    },
    /// Tombstone `global_id`.
    Delete {
        /// The deleted global id.
        global_id: u32,
    },
}

/// A decoded record and where its frame starts in the file.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Byte offset of the record's frame header.
    pub offset: u64,
    /// The mutation.
    pub op: WalOp,
}

/// The result of scanning a WAL: its longest valid prefix.
#[derive(Debug)]
pub struct WalReplay {
    /// Valid records, in append order.
    pub records: Vec<WalRecord>,
    /// Vector dimensionality the log was created for.
    pub dim: usize,
    /// File length of the valid prefix (header + whole valid records).
    pub valid_len: u64,
    /// Bytes past `valid_len` — a torn tail from an interrupted append.
    pub torn_bytes: u64,
}

/// Appends mutation records, each flushed and fsynced before the mutation
/// is acknowledged.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    dim: usize,
}

impl WalWriter {
    /// Creates (truncating) a fresh log for `dim`-dimensional vectors.
    ///
    /// # Errors
    ///
    /// IO failures.
    pub fn create(path: impl AsRef<Path>, dim: usize) -> Result<Self, StoreError> {
        let mut file = File::create(path)?;
        let mut header = [0u8; WAL_HEADER_LEN as usize];
        header[..4].copy_from_slice(&MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        // Bytes 6..8 are flags, 12..16 reserved — zero for version 1.
        header[8..12].copy_from_slice(&(dim as u32).to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(Self { file, dim })
    }

    /// Opens an existing log for appending. The header is validated; the
    /// body is not scanned — run [`read_wal`] first and [`truncate_tail`]
    /// any torn tail, or new appends land after garbage and are lost.
    ///
    /// # Errors
    ///
    /// IO failures, or [`StoreError::Corrupt`] for a damaged header.
    pub fn open_append(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        let dim = read_header(&std::fs::read(path)?)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self { file, dim })
    }

    /// Vector dimensionality the log was created for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Logs an insert. Durable (fsynced) when this returns.
    ///
    /// # Errors
    ///
    /// IO failures.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len()` differs from the log's dimensionality.
    pub fn append_insert(&mut self, expected_id: u32, vector: &[f32]) -> Result<(), StoreError> {
        assert_eq!(vector.len(), self.dim, "dimensionality mismatch");
        let mut payload = Vec::with_capacity(5 + vector.len() * 4);
        payload.push(OP_INSERT);
        payload.extend_from_slice(&expected_id.to_le_bytes());
        for &x in vector {
            payload.extend_from_slice(&x.to_le_bytes());
        }
        self.append(&payload)
    }

    /// Logs a delete. Durable (fsynced) when this returns.
    ///
    /// # Errors
    ///
    /// IO failures.
    pub fn append_delete(&mut self, global_id: u32) -> Result<(), StoreError> {
        let mut payload = Vec::with_capacity(5);
        payload.push(OP_DELETE);
        payload.extend_from_slice(&global_id.to_le_bytes());
        self.append(&payload)
    }

    fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        if pathweaver_obs::enabled() {
            pathweaver_obs::registry().counter("store.wal_appends").inc();
        }
        Ok(())
    }
}

fn read_header(raw: &[u8]) -> Result<usize, StoreError> {
    if raw.len() < WAL_HEADER_LEN as usize {
        return Err(corrupt(0, format!("wal shorter than its {WAL_HEADER_LEN}-byte header")));
    }
    if raw[..4] != MAGIC {
        return Err(corrupt(0, "bad wal magic"));
    }
    let version = u16::from_le_bytes([raw[4], raw[5]]);
    if version != VERSION {
        return Err(corrupt(4, format!("unsupported wal version {version}")));
    }
    let dim = u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]) as usize;
    if dim == 0 {
        return Err(corrupt(8, "wal header declares dim 0"));
    }
    Ok(dim)
}

/// Decodes one payload; `None` means structurally invalid (treated as torn
/// by the caller, since a crash can tear a frame at any byte).
fn decode_payload(payload: &[u8], dim: usize) -> Option<WalOp> {
    let (&op, body) = payload.split_first()?;
    match op {
        OP_INSERT => {
            if body.len() != 4 + dim * 4 {
                return None;
            }
            let expected_id = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
            let vector = body[4..]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Some(WalOp::Insert { expected_id, vector })
        }
        OP_DELETE => {
            if body.len() != 4 {
                return None;
            }
            Some(WalOp::Delete {
                global_id: u32::from_le_bytes([body[0], body[1], body[2], body[3]]),
            })
        }
        _ => None,
    }
}

/// Scans a WAL and returns its longest valid prefix. Read-only: torn tails
/// are reported, not repaired.
///
/// # Errors
///
/// IO failures, or [`StoreError::Corrupt`] for a damaged *header* (body
/// damage is by construction a torn tail, never an error).
pub fn read_wal(path: impl AsRef<Path>) -> Result<WalReplay, StoreError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let dim = read_header(&raw)?;
    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN as usize;
    while let Some(frame) = raw.get(at..at + FRAME_LEN) {
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        let want_crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        let Some(payload) = raw.get(at + FRAME_LEN..at + FRAME_LEN + len) else { break };
        if crc32(payload) != want_crc {
            break;
        }
        let Some(op) = decode_payload(payload, dim) else { break };
        records.push(WalRecord { offset: at as u64, op });
        at += FRAME_LEN + len;
    }
    Ok(WalReplay { records, dim, valid_len: at as u64, torn_bytes: (raw.len() - at) as u64 })
}

/// Truncates a torn tail off the log, leaving exactly the valid prefix that
/// [`read_wal`] reported as `valid_len`.
///
/// # Errors
///
/// IO failures.
pub fn truncate_tail(path: impl AsRef<Path>, valid_len: u64) -> Result<(), StoreError> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    file.sync_all()?;
    Ok(())
}

/// Replays decoded records onto a freshly loaded index, in order.
///
/// Replay is idempotent: global ids are allocated monotonically and never
/// rewound, so an insert whose `expected_id` is below the index's id
/// high-water mark was already folded into the segment (a crash between
/// [`crate::dynamic::DurableIndex::compact`]'s segment rename and its WAL
/// reset leaves exactly such records) and is skipped; deletes re-tombstone
/// harmlessly.
///
/// # Errors
///
/// [`StoreError::Corrupt`] when a replayed insert allocates a different id
/// than the log recorded, or a record's dimensionality disagrees with the
/// index — both mean the WAL does not belong to this segment.
pub fn apply_records(index: &mut PathWeaverIndex, records: &[WalRecord]) -> Result<(), StoreError> {
    for rec in records {
        match &rec.op {
            WalOp::Insert { expected_id, vector } => {
                if vector.len() != index.dim() {
                    return Err(corrupt(
                        rec.offset,
                        format!(
                            "wal insert has dim {} but the segment has dim {}",
                            vector.len(),
                            index.dim()
                        ),
                    ));
                }
                if (*expected_id as usize) < index.num_vectors {
                    continue; // Already folded into the segment by a compact.
                }
                let got = index.insert(vector);
                if got != *expected_id {
                    return Err(corrupt(
                        rec.offset,
                        format!("replayed insert allocated id {got}, log expected {expected_id}"),
                    ));
                }
            }
            // Deletes are idempotent; a tombstone already present in the
            // segment (logged before a compact) is not an error.
            WalOp::Delete { global_id } => {
                let _ = index.delete(*global_id);
            }
        }
    }
    if pathweaver_obs::enabled() && !records.is_empty() {
        pathweaver_obs::registry().counter("store.replay_records").add(records.len() as u64);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::testutil::TempDir;
    use super::*;

    fn sample_log(dir: &TempDir) -> std::path::PathBuf {
        let path = dir.join("wal.pwal");
        let mut w = WalWriter::create(&path, 3).unwrap();
        w.append_insert(7, &[1.0, 2.0, 3.0]).unwrap();
        w.append_delete(2).unwrap();
        w.append_insert(8, &[4.0, 5.0, 6.0]).unwrap();
        path
    }

    #[test]
    fn roundtrip_preserves_records() {
        let dir = TempDir::new("wal-roundtrip");
        let replay = read_wal(sample_log(&dir)).unwrap();
        assert_eq!(replay.dim, 3);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(
            replay.records[0].op,
            WalOp::Insert { expected_id: 7, vector: vec![1.0, 2.0, 3.0] }
        );
        assert_eq!(replay.records[1].op, WalOp::Delete { global_id: 2 });
        assert_eq!(replay.records[0].offset, WAL_HEADER_LEN);
    }

    #[test]
    fn truncation_drops_only_the_torn_tail() {
        let dir = TempDir::new("wal-torn");
        let path = sample_log(&dir);
        let full = std::fs::read(&path).unwrap();
        // Tear the log at every byte boundary inside the last record.
        let second_end = read_wal(&path).unwrap().records[2].offset as usize;
        for cut in second_end + 1..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = read_wal(&path).unwrap();
            assert_eq!(replay.records.len(), 2, "cut at {cut}");
            assert_eq!(replay.valid_len, second_end as u64);
            assert_eq!(replay.torn_bytes, (cut - second_end) as u64);
        }
    }

    #[test]
    fn bitflip_truncates_from_damaged_record() {
        let dir = TempDir::new("wal-flip");
        let path = sample_log(&dir);
        let full = std::fs::read(&path).unwrap();
        let second = read_wal(&path).unwrap().records[1].offset as usize;
        // Flip one bit in every byte of the middle record's frame+payload.
        let third = read_wal(&path).unwrap().records[2].offset as usize;
        for i in second..third {
            let mut damaged = full.clone();
            damaged[i] ^= 0x10;
            std::fs::write(&path, &damaged).unwrap();
            let replay = read_wal(&path).unwrap();
            // The first record always survives; the damaged one never does.
            // (A flipped length can occasionally keep a valid-CRC frame from
            // being found at all, but never yields a *wrong* record.)
            assert_eq!(replay.records.len(), 1, "flip at {i}");
            assert_eq!(replay.valid_len, second as u64);
        }
    }

    #[test]
    fn header_damage_is_corrupt_not_torn() {
        let dir = TempDir::new("wal-header");
        let path = sample_log(&dir);
        let mut raw = std::fs::read(&path).unwrap();
        raw[0] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt { offset: 0, .. })));
    }

    #[test]
    fn truncate_tail_then_append_continues_cleanly() {
        let dir = TempDir::new("wal-repair");
        let path = sample_log(&dir);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        truncate_tail(&path, replay.valid_len).unwrap();
        let mut w = WalWriter::open_append(&path).unwrap();
        w.append_delete(9).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[2].op, WalOp::Delete { global_id: 9 });
    }

    #[test]
    fn empty_log_replays_nothing() {
        let dir = TempDir::new("wal-empty");
        let path = dir.join("wal.pwal");
        WalWriter::create(&path, 5).unwrap();
        let replay = read_wal(&path).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_len, WAL_HEADER_LEN);
        assert_eq!(replay.torn_bytes, 0);
    }
}
