//! The immutable checksummed segment file (store format v2).
//!
//! One file holds every shard structure in its exact in-memory layout, so
//! opening a store is **one aligned read plus typed views** — no per-record
//! framing and no per-element decode loop (the legacy format pays both, and
//! rebuilds the direction tables besides; the `segment_open` wallclock bench
//! pins the gap). File layout, all words little-endian:
//!
//! ```text
//! offset 0     header (64 bytes)
//!   0..4         magic "PWSG"
//!   4..6         format version u16 (= 2)
//!   6..8         reserved
//!   8..12        section count u32
//!   12..16       header crc u32 (over bytes 0..data_offset, this field zeroed)
//!   16..24       file length u64
//!   24..32       toc offset u64 (= 64)
//!   32..40       data offset u64 (64-aligned)
//!   40..64       reserved
//! offset 64    table of contents: one 32-byte entry per section
//!   0..4         kind u32                8..16   section offset u64
//!   4..8         shard u32 (MAX=global)  16..24  section length u64
//!                                        24..28  section crc u32
//! data offset  sections, each at a 64-byte-aligned offset:
//!   0..64        preamble: up to 8 u64 shape parameters
//!   64..         raw word array (f32 / u32 / u64, little-endian)
//! ```
//!
//! Every byte of the file is checksum-covered: the header CRC spans the
//! header, TOC and inter-TOC padding; each section CRC spans the section's
//! *padded* extent (pad bytes are written as zeros), and the padded extents
//! must tile the file exactly. Any mismatch is [`StoreError::Corrupt`] with
//! the offset of the rejected region — a damaged segment is rejected, never
//! partially loaded.

use super::{corrupt, Meta, StoreError};
use crate::index::{PathWeaverIndex, ShardIndex};
use pathweaver_graph::{DirectionTable, FixedDegreeGraph, GhostShard, InterShardTable};
use pathweaver_util::{crc32, put_le_words, AlignedBytes, FixedBitSet};
use pathweaver_vector::{QuantizedSet, VectorSet};
use std::io::Write;
use std::path::Path;

const MAGIC: [u8; 4] = *b"PWSG";
const VERSION: u16 = 2;
/// Fixed header length; the TOC starts here.
pub const HEADER_LEN: usize = 64;
/// Fixed TOC entry length: kind u32, shard u32, offset u64, len u64,
/// crc u32, 4 bytes reserved. Public so external gates (check_store) can
/// walk the TOC and aim corruption at specific section kinds.
pub const TOC_ENTRY_LEN: usize = 32;
const PREAMBLE_LEN: usize = 64;
/// `shard` value of sections that belong to the whole index.
const GLOBAL: u32 = u32::MAX;

// Section kinds. All public so external gates (check_store's corruption
// matrix) can aim damage at every kind the writer emits; lint.toml's
// [format.segment] group pins this file as their one home (W001) and
// requires writer, reader dispatch and corruption matrix to handle each
// (W002).
/// Index-wide JSON metadata.
pub const KIND_META: u32 = 0;
/// Per-shard base vectors.
pub const KIND_VECTORS: u32 = 1;
/// Per-shard fixed-degree adjacency.
pub const KIND_GRAPH: u32 = 2;
/// Per-shard local→global id map.
pub const KIND_GLOBAL_IDS: u32 = 3;
/// Per-shard tombstone bitset.
pub const KIND_TOMBSTONES: u32 = 4;
/// Per-shard inter-shard jump targets.
pub const KIND_INTERSHARD: u32 = 5;
/// Ghost replica: ghost→original id map.
pub const KIND_GHOST_MAP: u32 = 6;
/// Ghost replica: vectors.
pub const KIND_GHOST_VECTORS: u32 = 7;
/// Ghost replica: adjacency.
pub const KIND_GHOST_GRAPH: u32 = 8;
/// Per-shard direction table codes.
pub const KIND_DIR_TABLE: u32 = 9;
/// Section kind of the int8 quantized tier.
pub const KIND_QUANTIZED: u32 = 10;

fn pad64(n: usize) -> usize {
    n.div_ceil(64) * 64
}

/// One section staged for writing: preamble parameters + raw words.
struct Section {
    kind: u32,
    shard: u32,
    bytes: Vec<u8>,
}

impl Section {
    fn new(kind: u32, shard: u32, params: &[u64]) -> Self {
        assert!(params.len() <= PREAMBLE_LEN / 8, "preamble overflow");
        let mut bytes = vec![0u8; PREAMBLE_LEN];
        for (i, &p) in params.iter().enumerate() {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&p.to_le_bytes());
        }
        Self { kind, shard, bytes }
    }
}

/// Writes `index` as a segment at `path`.
///
/// The bytes go to a sibling temporary file first and are renamed into
/// place after a sync, so a crash mid-write never leaves a half-written
/// segment under the final name.
///
/// # Errors
///
/// IO failures.
pub fn write_segment(index: &PathWeaverIndex, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let path = path.as_ref();
    let mut sections = Vec::new();

    let meta = Meta::from_index(2, index);
    let json = serde_json::to_string_pretty(&meta)
        .map_err(|e| StoreError::Malformed(format!("meta does not serialize: {e}")))?
        .into_bytes();
    let mut sec = Section::new(KIND_META, GLOBAL, &[json.len() as u64]);
    sec.bytes.extend_from_slice(&json);
    sections.push(sec);

    for (s, shard) in index.shards.iter().enumerate() {
        let s = s as u32;
        sections.push(vectors_section(KIND_VECTORS, s, &shard.vectors));
        sections.push(graph_section(KIND_GRAPH, s, &shard.graph));
        let mut sec = Section::new(KIND_GLOBAL_IDS, s, &[shard.global_ids.len() as u64]);
        put_le_words(&mut sec.bytes, &shard.global_ids);
        sections.push(sec);
        let words = shard.deleted.as_words();
        let mut sec = Section::new(
            KIND_TOMBSTONES,
            s,
            &[shard.deleted.capacity() as u64, words.len() as u64],
        );
        put_le_words(&mut sec.bytes, words);
        sections.push(sec);
        if let Some(t) = &shard.intershard {
            let mut sec = Section::new(KIND_INTERSHARD, s, &[t.len() as u64]);
            put_le_words(&mut sec.bytes, t.as_targets());
            sections.push(sec);
        }
        if let Some(t) = &shard.dir_table {
            let mut sec = Section::new(
                KIND_DIR_TABLE,
                s,
                &[t.dim() as u64, shard.graph.degree() as u64, t.as_words().len() as u64],
            );
            put_le_words(&mut sec.bytes, t.as_words());
            sections.push(sec);
        }
        if let Some(q) = &shard.quantized {
            // Layout: scales f32[dim] | offsets f32[dim] | padded code rows
            // (len x stride int8, persisted verbatim so reopen is bitwise).
            let mut sec = Section::new(
                KIND_QUANTIZED,
                s,
                &[q.dim() as u64, q.stride() as u64, q.len() as u64],
            );
            put_le_words(&mut sec.bytes, q.scales());
            put_le_words(&mut sec.bytes, q.offsets());
            sec.bytes.extend(q.as_padded_codes().iter().map(|&c| c as u8));
            sections.push(sec);
        }
        if let Some(g) = &shard.ghost {
            let mut sec = Section::new(KIND_GHOST_MAP, s, &[g.to_original.len() as u64]);
            put_le_words(&mut sec.bytes, &g.to_original);
            sections.push(sec);
            sections.push(vectors_section(KIND_GHOST_VECTORS, s, &g.vectors));
            sections.push(graph_section(KIND_GHOST_GRAPH, s, &g.graph));
        }
    }

    // Lay the sections out at 64-byte-aligned offsets.
    let toc_len = sections.len() * TOC_ENTRY_LEN;
    let data_offset = pad64(HEADER_LEN + toc_len);
    let mut offsets = Vec::with_capacity(sections.len());
    let mut at = data_offset;
    for sec in &sections {
        offsets.push(at);
        at += pad64(sec.bytes.len());
    }
    let file_len = at;

    let mut buf = vec![0u8; file_len];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
    buf[8..12].copy_from_slice(&(sections.len() as u32).to_le_bytes());
    buf[16..24].copy_from_slice(&(file_len as u64).to_le_bytes());
    buf[24..32].copy_from_slice(&(HEADER_LEN as u64).to_le_bytes());
    buf[32..40].copy_from_slice(&(data_offset as u64).to_le_bytes());
    for (i, (sec, &off)) in sections.iter().zip(&offsets).enumerate() {
        buf[off..off + sec.bytes.len()].copy_from_slice(&sec.bytes);
        let crc = crc32(&buf[off..off + pad64(sec.bytes.len())]);
        let e = HEADER_LEN + i * TOC_ENTRY_LEN;
        buf[e..e + 4].copy_from_slice(&sec.kind.to_le_bytes());
        buf[e + 4..e + 8].copy_from_slice(&sec.shard.to_le_bytes());
        buf[e + 8..e + 16].copy_from_slice(&(off as u64).to_le_bytes());
        buf[e + 16..e + 24].copy_from_slice(&(sec.bytes.len() as u64).to_le_bytes());
        buf[e + 24..e + 28].copy_from_slice(&crc.to_le_bytes());
    }
    // The header CRC covers everything before the data (its own field
    // zeroed); it is computed last so it also covers the finished TOC.
    let header_crc = crc32(&buf[..data_offset]);
    buf[12..16].copy_from_slice(&header_crc.to_le_bytes());

    let tmp = path.with_extension("pwseg.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&buf)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn vectors_section(kind: u32, shard: u32, vs: &VectorSet) -> Section {
    // Persist the aligned physical layout: `try_from_padded_flat` rebuilds
    // exactly that, so a compact set (stride not a multiple of the 16-lane
    // block) is normalized here once at save time.
    let owned;
    let vs = if vs.stride().is_multiple_of(16) {
        vs
    } else {
        owned = vs.clone().into_aligned();
        &owned
    };
    let mut sec =
        Section::new(kind, shard, &[vs.dim() as u64, vs.stride() as u64, vs.len() as u64]);
    put_le_words(&mut sec.bytes, vs.as_padded_flat());
    sec
}

fn graph_section(kind: u32, shard: u32, graph: &FixedDegreeGraph) -> Section {
    let mut sec = Section::new(kind, shard, &[graph.degree() as u64, graph.num_nodes() as u64]);
    put_le_words(&mut sec.bytes, graph.as_flat());
    sec
}

/// A parsed TOC entry whose extent passed its checksum.
struct RawSection {
    kind: u32,
    shard: u32,
    offset: usize,
    len: usize,
}

/// Little-endian field readers over untrusted bytes: an out-of-bounds range
/// is [`StoreError::Corrupt`] at that offset, never a slice panic, so a
/// torn or lying header cannot take the reader down.
fn le_u32(bytes: &[u8], at: usize) -> Result<u32, StoreError> {
    let b = bytes.get(at..at + 4).ok_or_else(|| corrupt(at as u64, "u32 field out of bounds"))?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn le_u64(bytes: &[u8], at: usize) -> Result<u64, StoreError> {
    let b = bytes.get(at..at + 8).ok_or_else(|| corrupt(at as u64, "u64 field out of bounds"))?;
    Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

/// Validates the header, TOC and every section checksum; returns the parsed
/// TOC. Shared by [`read_segment`] and [`verify_segment`].
fn parse_segment(raw: &AlignedBytes) -> Result<Vec<RawSection>, StoreError> {
    let bytes = raw.as_slice();
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(0, format!("segment shorter than its {HEADER_LEN}-byte header")));
    }
    if bytes[..4] != MAGIC {
        return Err(corrupt(0, "bad segment magic"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(corrupt(4, format!("unsupported segment version {version}")));
    }
    let count = le_u32(bytes, 8)? as usize;
    let stored_crc = le_u32(bytes, 12)?;
    let file_len = le_u64(bytes, 16)?;
    let toc_offset = le_u64(bytes, 24)? as usize;
    let data_offset = le_u64(bytes, 32)? as usize;
    if file_len != bytes.len() as u64 {
        return Err(corrupt(16, format!("header says {file_len} bytes, file has {}", bytes.len())));
    }
    if toc_offset != HEADER_LEN {
        return Err(corrupt(24, format!("toc offset {toc_offset} != {HEADER_LEN}")));
    }
    let toc_end = HEADER_LEN + count * TOC_ENTRY_LEN;
    if data_offset < toc_end || data_offset > bytes.len() || !data_offset.is_multiple_of(64) {
        return Err(corrupt(32, format!("data offset {data_offset} out of place")));
    }
    // The header CRC spans bytes 0..data_offset with its own field zeroed.
    let mut head = bytes[..data_offset].to_vec();
    head[12..16].fill(0);
    let got = crc32(&head);
    if got != stored_crc {
        return Err(corrupt(12, format!("header crc {got:#010x} != stored {stored_crc:#010x}")));
    }

    let mut sections = Vec::with_capacity(count);
    let mut covered = data_offset;
    for i in 0..count {
        let e = HEADER_LEN + i * TOC_ENTRY_LEN;
        let kind = le_u32(bytes, e)?;
        let shard = le_u32(bytes, e + 4)?;
        let offset = le_u64(bytes, e + 8)? as usize;
        let len = le_u64(bytes, e + 16)? as usize;
        let want_crc = le_u32(bytes, e + 24)?;
        let Some(padded_end) = offset.checked_add(pad64(len)) else {
            return Err(corrupt(e as u64, format!("section {i} extent overflows")));
        };
        if offset < data_offset || padded_end > bytes.len() || !offset.is_multiple_of(64) {
            return Err(corrupt(
                e as u64,
                format!("section {i} extent {offset}..{padded_end} out of place"),
            ));
        }
        if len < PREAMBLE_LEN {
            return Err(corrupt(e as u64, format!("section {i} shorter than its preamble")));
        }
        let got = crc32(&bytes[offset..padded_end]);
        if got != want_crc {
            return Err(corrupt(
                offset as u64,
                format!("section {i} crc {got:#010x} != stored {want_crc:#010x}"),
            ));
        }
        covered += padded_end - offset;
        sections.push(RawSection { kind, shard, offset, len });
    }
    // Checksums must tile the whole file: header CRC up to data_offset, one
    // padded extent per section after it. A gap would be unchecked bytes.
    if covered != bytes.len() {
        return Err(corrupt(
            covered as u64,
            format!("sections cover {covered} of {} bytes", bytes.len()),
        ));
    }
    Ok(sections)
}

fn param(raw: &AlignedBytes, sec: &RawSection, i: usize) -> Result<u64, StoreError> {
    // Preambles are validated to exist (len >= PREAMBLE_LEN) and section
    // offsets are 64-aligned by `parse_segment`, but the readers do not get
    // to assume that: a bad view is Corrupt, not a panic.
    let pre = raw
        .u64s(sec.offset, PREAMBLE_LEN / 8)
        .ok_or_else(|| corrupt(sec.offset as u64, "section preamble out of bounds"))?;
    pre.get(i)
        .copied()
        .ok_or_else(|| corrupt(sec.offset as u64, format!("preamble parameter {i} out of range")))
}

fn data_words(sec: &RawSection, word: usize) -> usize {
    (sec.len - PREAMBLE_LEN) / word
}

/// The checksum audit [`verify_segment`] returns.
#[derive(Debug)]
pub struct SegmentAudit {
    /// Number of sections whose checksums were verified.
    pub sections: usize,
    /// Total file bytes covered by a checksum (the whole file).
    pub bytes: u64,
}

/// Verifies every checksum of the segment at `path` without materializing
/// an index.
///
/// # Errors
///
/// IO failures, or [`StoreError::Corrupt`] naming the first rejected byte
/// range.
pub fn verify_segment(path: impl AsRef<Path>) -> Result<SegmentAudit, StoreError> {
    let raw = AlignedBytes::read_to_end(std::fs::File::open(path)?)?;
    let sections = parse_segment(&raw)?;
    Ok(SegmentAudit { sections: sections.len(), bytes: raw.len() as u64 })
}

/// Per-shard sections collected while walking the TOC.
#[derive(Default)]
struct ShardSections<'a> {
    vectors: Option<&'a RawSection>,
    graph: Option<&'a RawSection>,
    global_ids: Option<&'a RawSection>,
    tombstones: Option<&'a RawSection>,
    intershard: Option<&'a RawSection>,
    dir_table: Option<&'a RawSection>,
    quantized: Option<&'a RawSection>,
    ghost_map: Option<&'a RawSection>,
    ghost_vectors: Option<&'a RawSection>,
    ghost_graph: Option<&'a RawSection>,
}

fn claim<'a>(slot: &mut Option<&'a RawSection>, sec: &'a RawSection) -> Result<(), StoreError> {
    if slot.replace(sec).is_some() {
        return Err(corrupt(
            sec.offset as u64,
            format!("duplicate section kind {} for shard {}", sec.kind, sec.shard),
        ));
    }
    Ok(())
}

/// Opens the segment at `path`: one aligned read, checksum validation, and
/// zero-per-record materialization of every shard structure (direction
/// tables included — nothing is rebuilt). Open latency is recorded in the
/// `store.segment_open_wall_ns` histogram when observability is enabled.
///
/// # Errors
///
/// IO failures, or [`StoreError::Corrupt`] naming the first rejected byte
/// range. A corrupt segment never yields an index.
pub fn read_segment(path: impl AsRef<Path>) -> Result<PathWeaverIndex, StoreError> {
    let sw = pathweaver_obs::Stopwatch::start();
    let raw = AlignedBytes::read_to_end(std::fs::File::open(path)?)?;
    let sections = parse_segment(&raw)?;

    let meta_sec = sections
        .iter()
        .find(|s| s.kind == KIND_META)
        .ok_or_else(|| corrupt(0, "segment has no meta section"))?;
    let json_len = param(&raw, meta_sec, 0)? as usize;
    if json_len != meta_sec.len - PREAMBLE_LEN {
        return Err(corrupt(meta_sec.offset as u64, "meta length disagrees with its section"));
    }
    let json = &raw.as_slice()[meta_sec.offset + PREAMBLE_LEN..meta_sec.offset + meta_sec.len];
    let meta: Meta = serde_json::from_str(
        std::str::from_utf8(json).map_err(|e| corrupt(meta_sec.offset as u64, e))?,
    )
    .map_err(|e| corrupt(meta_sec.offset as u64, e))?;
    if meta.version != 2 {
        return Err(corrupt(
            meta_sec.offset as u64,
            format!("segment meta declares version {}", meta.version),
        ));
    }
    if meta.num_devices == 0 {
        return Err(corrupt(meta_sec.offset as u64, "segment meta declares zero shards"));
    }

    let mut per_shard: Vec<ShardSections<'_>> = Vec::new();
    per_shard.resize_with(meta.num_devices, ShardSections::default);
    for sec in &sections {
        if sec.kind == KIND_META {
            continue;
        }
        let at = sec.offset as u64;
        let slots = per_shard
            .get_mut(sec.shard as usize)
            .ok_or_else(|| corrupt(at, format!("section for unknown shard {}", sec.shard)))?;
        match sec.kind {
            KIND_VECTORS => claim(&mut slots.vectors, sec)?,
            KIND_GRAPH => claim(&mut slots.graph, sec)?,
            KIND_GLOBAL_IDS => claim(&mut slots.global_ids, sec)?,
            KIND_TOMBSTONES => claim(&mut slots.tombstones, sec)?,
            KIND_INTERSHARD => claim(&mut slots.intershard, sec)?,
            KIND_DIR_TABLE => claim(&mut slots.dir_table, sec)?,
            KIND_QUANTIZED => claim(&mut slots.quantized, sec)?,
            KIND_GHOST_MAP => claim(&mut slots.ghost_map, sec)?,
            KIND_GHOST_VECTORS => claim(&mut slots.ghost_vectors, sec)?,
            KIND_GHOST_GRAPH => claim(&mut slots.ghost_graph, sec)?,
            k => return Err(corrupt(at, format!("unknown section kind {k}"))),
        }
    }

    let config = meta.to_config();
    let mut shards = Vec::with_capacity(meta.num_devices);
    let mut members = Vec::with_capacity(meta.num_devices);
    for (s, slots) in per_shard.iter().enumerate() {
        let missing = |what: &str| corrupt(0, format!("shard {s} has no {what} section"));
        let vec_sec = slots.vectors.ok_or_else(|| missing("vectors"))?;
        let vectors = read_vectors(&raw, vec_sec)?;
        if vectors.dim() != meta.dim {
            return Err(corrupt(
                vec_sec.offset as u64,
                format!("shard {s} dim {} != meta dim {}", vectors.dim(), meta.dim),
            ));
        }
        let graph = read_graph(&raw, slots.graph.ok_or_else(|| missing("graph"))?)?;
        let sec = slots.global_ids.ok_or_else(|| missing("global ids"))?;
        let global_ids = read_u32s(&raw, sec, param(&raw, sec, 0)? as usize)?.to_vec();
        let sec = slots.tombstones.ok_or_else(|| missing("tombstones"))?;
        let capacity = param(&raw, sec, 0)? as usize;
        let words = read_u64s(&raw, sec, param(&raw, sec, 1)? as usize)?.to_vec();
        let deleted = FixedBitSet::try_from_words(capacity, words)
            .map_err(|e| corrupt(sec.offset as u64, e))?;
        if graph.num_nodes() != vectors.len()
            || global_ids.len() != vectors.len()
            || deleted.capacity() != vectors.len()
        {
            return Err(corrupt(
                sec.offset as u64,
                format!("shard {s} structures disagree on node count"),
            ));
        }
        let intershard = match slots.intershard {
            Some(sec) => {
                let targets = read_u32s(&raw, sec, param(&raw, sec, 0)? as usize)?.to_vec();
                if targets.len() != vectors.len() {
                    return Err(corrupt(
                        sec.offset as u64,
                        format!(
                            "shard {s} inter-shard table covers {} of {} nodes",
                            targets.len(),
                            vectors.len()
                        ),
                    ));
                }
                Some(InterShardTable::from_targets(targets))
            }
            None => None,
        };
        if meta.num_devices > 1 && intershard.is_none() {
            return Err(missing("inter-shard table"));
        }
        let dir_table = match slots.dir_table {
            Some(sec) => {
                let dim = param(&raw, sec, 0)? as usize;
                let degree = param(&raw, sec, 1)? as usize;
                let codes = read_u32s(&raw, sec, param(&raw, sec, 2)? as usize)?.to_vec();
                let t = DirectionTable::try_from_words(dim, degree, codes)
                    .map_err(|e| corrupt(sec.offset as u64, e))?;
                if dim != meta.dim || degree != graph.degree() {
                    return Err(corrupt(
                        sec.offset as u64,
                        format!("shard {s} direction table shape disagrees with its graph"),
                    ));
                }
                Some(t)
            }
            // Older builds may not have persisted one; fall back to the
            // legacy loader's rebuild so the index still opens.
            None => meta.build_dir_table.then(|| DirectionTable::build(&vectors, &graph)),
        };
        let quantized = match slots.quantized {
            Some(sec) => Some(read_quantized(&raw, sec, s, &meta, &vectors)?),
            // Metas that want the tier but segments written before the
            // quantized section existed: rebuild from the vectors (the
            // encoding is deterministic), mirroring the dir-table fallback.
            None => meta.build_quantized.unwrap_or(false).then(|| QuantizedSet::quantize(&vectors)),
        };
        let ghost = match (slots.ghost_map, slots.ghost_vectors, slots.ghost_graph) {
            (Some(map), Some(vsec), Some(gsec)) => {
                let to_original = read_u32s(&raw, map, param(&raw, map, 0)? as usize)?.to_vec();
                let gvec = read_vectors(&raw, vsec)?;
                let ggraph = read_graph(&raw, gsec)?;
                if to_original.len() != gvec.len() || ggraph.num_nodes() != gvec.len() {
                    return Err(corrupt(
                        map.offset as u64,
                        format!("shard {s} ghost structures disagree on node count"),
                    ));
                }
                Some(GhostShard { to_original, vectors: gvec, graph: ggraph })
            }
            (None, None, None) => None,
            _ => return Err(corrupt(0, format!("shard {s} has a partial ghost shard"))),
        };
        members.push(global_ids.clone());
        shards.push(ShardIndex {
            global_ids,
            vectors,
            graph,
            dir_table,
            quantized,
            ghost,
            intershard,
            deleted,
        });
    }

    // The ring-target validation and ledger rebuild are shared with the
    // legacy loader; its Malformed is a checksum-passing structural lie
    // here, i.e. corruption.
    let index = super::legacy::finish_load(meta, config, shards, members).map_err(|e| match e {
        StoreError::Malformed(m) => corrupt(0, m),
        other => other,
    })?;
    if pathweaver_obs::enabled() {
        pathweaver_obs::registry()
            .histogram("store.segment_open_wall_ns")
            .record(sw.elapsed_nanos());
    }
    Ok(index)
}

fn read_vectors(raw: &AlignedBytes, sec: &RawSection) -> Result<VectorSet, StoreError> {
    let at = sec.offset as u64;
    let dim = param(raw, sec, 0)? as usize;
    let stride = param(raw, sec, 1)? as usize;
    let len = param(raw, sec, 2)? as usize;
    let count = data_words(sec, 4);
    if stride.checked_mul(len) != Some(count) {
        return Err(corrupt(
            at,
            format!("vector section holds {count} floats, shape says {stride}x{len}"),
        ));
    }
    let floats = raw
        .f32s(sec.offset + PREAMBLE_LEN, count)
        .ok_or_else(|| corrupt(at, "vector data out of bounds"))?;
    VectorSet::try_from_padded_flat(dim, len, &floats).map_err(|e| corrupt(at, e))
}

/// Materializes a quantized section, validating every shape claim against
/// the section's byte extent and the shard it belongs to before any buffer
/// is built — a lying preamble is [`StoreError::Corrupt`], never a panic.
fn read_quantized(
    raw: &AlignedBytes,
    sec: &RawSection,
    shard: usize,
    meta: &Meta,
    vectors: &VectorSet,
) -> Result<QuantizedSet, StoreError> {
    let at = sec.offset as u64;
    let dim = param(raw, sec, 0)?;
    let stride = param(raw, sec, 1)?;
    let len = param(raw, sec, 2)?;
    // scales f32[dim] + offsets f32[dim] + len x stride codes, all claimed
    // by an untrusted preamble: checked arithmetic so a hostile shape
    // cannot overflow its way past the extent comparison.
    let expect = dim
        .checked_mul(8)
        .and_then(|p| stride.checked_mul(len).and_then(|c| p.checked_add(c)))
        .ok_or_else(|| corrupt(at, format!("quantized shape {dim}x{stride}x{len} overflows")))?;
    if expect != (sec.len - PREAMBLE_LEN) as u64 {
        return Err(corrupt(
            at,
            format!(
                "quantized section holds {} bytes, shape says {expect}",
                sec.len - PREAMBLE_LEN
            ),
        ));
    }
    let (dim, len) = (dim as usize, len as usize);
    let scales = raw
        .f32s(sec.offset + PREAMBLE_LEN, dim)
        .ok_or_else(|| corrupt(at, "quantized scales out of bounds"))?
        .to_vec();
    let offsets = raw
        .f32s(sec.offset + PREAMBLE_LEN + 4 * dim, dim)
        .ok_or_else(|| corrupt(at, "quantized offsets out of bounds"))?
        .to_vec();
    let code_bytes = &raw.as_slice()[sec.offset + PREAMBLE_LEN + 8 * dim..sec.offset + sec.len];
    let codes: Vec<i8> = code_bytes.iter().map(|&b| b as i8).collect();
    // `try_from_parts` re-derives the stride from `dim`, so a stride lie in
    // the preamble surfaces as a code-length mismatch here.
    let q = QuantizedSet::try_from_parts(dim, len, scales, offsets, &codes)
        .map_err(|e| corrupt(at, e))?;
    if dim != meta.dim || len != vectors.len() {
        return Err(corrupt(
            at,
            format!("shard {shard} quantized tier shape disagrees with its vectors"),
        ));
    }
    Ok(q)
}

fn read_graph(raw: &AlignedBytes, sec: &RawSection) -> Result<FixedDegreeGraph, StoreError> {
    let at = sec.offset as u64;
    let degree = param(raw, sec, 0)? as usize;
    let nodes = param(raw, sec, 1)? as usize;
    let count = data_words(sec, 4);
    if degree.checked_mul(nodes) != Some(count) {
        return Err(corrupt(
            at,
            format!("graph section holds {count} words, shape says {nodes}x{degree}"),
        ));
    }
    let adj = read_u32s(raw, sec, count)?;
    FixedDegreeGraph::try_from_flat(degree, adj.to_vec()).map_err(|e| corrupt(at, e))
}

fn read_u32s<'a>(
    raw: &'a AlignedBytes,
    sec: &RawSection,
    count: usize,
) -> Result<pathweaver_util::aligned::TypedView<'a, u32>, StoreError> {
    if count != data_words(sec, 4) {
        return Err(corrupt(
            sec.offset as u64,
            format!("section holds {} words, preamble says {count}", data_words(sec, 4)),
        ));
    }
    raw.u32s(sec.offset + PREAMBLE_LEN, count)
        .ok_or_else(|| corrupt(sec.offset as u64, "section data out of bounds"))
}

fn read_u64s<'a>(
    raw: &'a AlignedBytes,
    sec: &RawSection,
    count: usize,
) -> Result<pathweaver_util::aligned::TypedView<'a, u64>, StoreError> {
    if count != data_words(sec, 8) {
        return Err(corrupt(
            sec.offset as u64,
            format!("section holds {} words, preamble says {count}", data_words(sec, 8)),
        ));
    }
    raw.u64s(sec.offset + PREAMBLE_LEN, count)
        .ok_or_else(|| corrupt(sec.offset as u64, "section data out of bounds"))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::TempDir;
    use super::*;
    use crate::config::PathWeaverConfig;
    use pathweaver_datasets::{DatasetProfile, Scale};

    fn built(seed: u64) -> PathWeaverIndex {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, seed);
        PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap()
    }

    #[test]
    fn every_file_byte_is_checksum_covered() {
        let idx = built(81);
        let dir = TempDir::new("seg-cover");
        let path = dir.join("segment.pwseg");
        write_segment(&idx, &path).unwrap();
        let raw = std::fs::read(&path).unwrap();
        let audit = verify_segment(&path).unwrap();
        assert_eq!(audit.bytes, raw.len() as u64);
        assert!(audit.sections >= 9, "meta + at least four sections per shard");
    }

    #[test]
    fn any_single_bitflip_is_rejected() {
        let idx = built(82);
        let dir = TempDir::new("seg-flip");
        let path = dir.join("segment.pwseg");
        write_segment(&idx, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        // Exhaustive over a stride; every flip must surface as Corrupt.
        for i in (0..pristine.len()).step_by(97) {
            let mut damaged = pristine.clone();
            damaged[i] ^= 0x04;
            std::fs::write(&path, &damaged).unwrap();
            match read_segment(&path) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("flip at byte {i} not rejected: {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let idx = built(83);
        let dir = TempDir::new("seg-trunc");
        let path = dir.join("segment.pwseg");
        write_segment(&idx, &path).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for keep in [0, 3, 63, 64, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..keep]).unwrap();
            assert!(
                matches!(read_segment(&path), Err(StoreError::Corrupt { .. })),
                "truncation to {keep} bytes not rejected"
            );
        }
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let idx = built(84);
        let dir = TempDir::new("seg-tmp");
        write_segment(&idx, dir.join("segment.pwseg")).unwrap();
        let names: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert_eq!(names, vec!["segment.pwseg".to_string()]);
    }

    #[test]
    fn wrong_version_is_corrupt() {
        let idx = built(85);
        let dir = TempDir::new("seg-version");
        let path = dir.join("segment.pwseg");
        write_segment(&idx, &path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[4] = 9;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(read_segment(&path), Err(StoreError::Corrupt { offset: 4, .. })));
    }
}
