//! The legacy (v1) directory format: one file per structure per shard.
//!
//! ```text
//! index-dir/
//!   meta.json                  build parameters + shape
//!   shard-000/
//!     vectors.fvecs            shard vectors
//!     graph.pwgr               proximity graph
//!     globals.ivecs            local → global id map (one record)
//!     deleted.ivecs            tombstoned local ids (one record)
//!     intershard.ivecs         I(u) targets (one record; multi-device only)
//!     ghost-map.ivecs          ghost → local map (optional)
//!     ghost-vectors.fvecs      ghost vectors (optional)
//!     ghost-graph.pwgr         ghost graph (optional)
//!   shard-001/ ...
//! ```
//!
//! Every array is deserialized record by record and the direction tables
//! are rebuilt from scratch on load, which is why the segment format
//! superseded it (see the `segment_open` wallclock bench entry). Kept so
//! existing stores load; `pwctl compact` rewrites them as segments.

use super::{malformed, Meta, StoreError};
use crate::index::{PathWeaverIndex, ShardIndex};
use crate::shard::ShardAssignment;
use pathweaver_datasets::io::{read_fvecs, read_ivecs, write_fvecs, write_ivecs};
use pathweaver_gpusim::MemoryLedger;
use pathweaver_graph::serialize::{read_graph, write_graph};
use pathweaver_graph::{BuildReport, DirectionTable, GhostShard, InterShardTable};
use pathweaver_util::FixedBitSet;
use std::fs;
use std::path::Path;

/// Saves `index` under `dir` (created if missing) in the legacy directory
/// format.
///
/// # Errors
///
/// IO failures; the directory is left in an undefined state on error.
pub fn save_index_legacy(index: &PathWeaverIndex, dir: impl AsRef<Path>) -> Result<(), StoreError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let meta = Meta::from_index(1, index);
    fs::write(
        dir.join("meta.json"),
        serde_json::to_string_pretty(&meta)
            .map_err(|e| StoreError::Malformed(format!("meta does not serialize: {e}")))?,
    )?;
    for (s, shard) in index.shards.iter().enumerate() {
        let sdir = dir.join(format!("shard-{s:03}"));
        fs::create_dir_all(&sdir)?;
        write_fvecs(fs::File::create(sdir.join("vectors.fvecs"))?, &shard.vectors)
            .map_err(malformed)?;
        write_graph(fs::File::create(sdir.join("graph.pwgr"))?, &shard.graph).map_err(malformed)?;
        write_ivecs(
            fs::File::create(sdir.join("globals.ivecs"))?,
            std::slice::from_ref(&shard.global_ids),
        )
        .map_err(malformed)?;
        let deleted: Vec<u32> = shard.deleted.iter().map(|i| i as u32).collect();
        write_ivecs(fs::File::create(sdir.join("deleted.ivecs"))?, &[deleted])
            .map_err(malformed)?;
        if let Some(t) = &shard.intershard {
            write_ivecs(
                fs::File::create(sdir.join("intershard.ivecs"))?,
                &[t.as_targets().to_vec()],
            )
            .map_err(malformed)?;
        }
        if let Some(g) = &shard.ghost {
            write_ivecs(
                fs::File::create(sdir.join("ghost-map.ivecs"))?,
                std::slice::from_ref(&g.to_original),
            )
            .map_err(malformed)?;
            write_fvecs(fs::File::create(sdir.join("ghost-vectors.fvecs"))?, &g.vectors)
                .map_err(malformed)?;
            write_graph(fs::File::create(sdir.join("ghost-graph.pwgr"))?, &g.graph)
                .map_err(malformed)?;
        }
    }
    Ok(())
}

/// Loads an index saved by [`save_index_legacy`], rebuilding the direction
/// tables and memory ledgers.
///
/// The device/topology models come from the standard presets (the saved
/// index carries algorithmic state, not simulator calibration).
///
/// # Errors
///
/// IO failures or structural mismatches (missing files, inconsistent
/// shapes).
pub fn load_index_legacy(dir: impl AsRef<Path>) -> Result<PathWeaverIndex, StoreError> {
    let dir = dir.as_ref();
    let meta: Meta =
        serde_json::from_str(&fs::read_to_string(dir.join("meta.json"))?).map_err(malformed)?;
    if meta.version != 1 {
        return Err(StoreError::Malformed(format!("unsupported version {}", meta.version)));
    }
    let config = meta.to_config();

    let mut shards = Vec::with_capacity(meta.num_devices);
    let mut members = Vec::with_capacity(meta.num_devices);
    for s in 0..meta.num_devices {
        let sdir = dir.join(format!("shard-{s:03}"));
        if !sdir.is_dir() {
            return Err(StoreError::Malformed(format!(
                "missing shard directory {s} of {} (shard-count mismatch)",
                meta.num_devices
            )));
        }
        // Restore the aligned storage the build phase uses (fvecs on disk is
        // compact; distances are identical either way).
        let vectors = read_fvecs(fs::File::open(sdir.join("vectors.fvecs"))?, None)
            .map_err(malformed)?
            .into_aligned();
        if vectors.dim() != meta.dim {
            return Err(StoreError::Malformed(format!(
                "shard {s} dim {} != meta dim {}",
                vectors.dim(),
                meta.dim
            )));
        }
        let graph = read_graph(fs::File::open(sdir.join("graph.pwgr"))?).map_err(malformed)?;
        if graph.num_nodes() != vectors.len() {
            return Err(StoreError::Malformed(format!("shard {s} graph/vector size mismatch")));
        }
        let global_ids = read_ivecs(fs::File::open(sdir.join("globals.ivecs"))?, None)
            .map_err(malformed)?
            .into_iter()
            .next()
            .ok_or_else(|| StoreError::Malformed(format!("shard {s} missing globals")))?;
        if global_ids.len() != vectors.len() {
            return Err(StoreError::Malformed(format!("shard {s} globals length mismatch")));
        }
        let mut deleted = FixedBitSet::new(vectors.len());
        for id in read_ivecs(fs::File::open(sdir.join("deleted.ivecs"))?, None)
            .map_err(malformed)?
            .into_iter()
            .next()
            .unwrap_or_default()
        {
            if (id as usize) < vectors.len() {
                deleted.insert(id as usize);
            }
        }
        let intershard = if meta.num_devices > 1 {
            let path = sdir.join("intershard.ivecs");
            if !path.exists() {
                return Err(StoreError::Malformed(format!(
                    "shard {s} is missing its inter-shard table"
                )));
            }
            let targets = read_ivecs(fs::File::open(path)?, None)
                .map_err(malformed)?
                .into_iter()
                .next()
                .unwrap_or_default();
            if targets.len() != vectors.len() {
                return Err(StoreError::Malformed(format!(
                    "shard {s} inter-shard table covers {} of {} nodes",
                    targets.len(),
                    vectors.len()
                )));
            }
            Some(InterShardTable::from_targets(targets))
        } else {
            None
        };
        let ghost = if sdir.join("ghost-map.ivecs").exists() {
            let to_original = read_ivecs(fs::File::open(sdir.join("ghost-map.ivecs"))?, None)
                .map_err(malformed)?
                .into_iter()
                .next()
                .unwrap_or_default();
            let gvec = read_fvecs(fs::File::open(sdir.join("ghost-vectors.fvecs"))?, None)
                .map_err(malformed)?
                .into_aligned();
            let ggraph =
                read_graph(fs::File::open(sdir.join("ghost-graph.pwgr"))?).map_err(malformed)?;
            Some(GhostShard { to_original, vectors: gvec, graph: ggraph })
        } else {
            None
        };
        let dir_table = meta.build_dir_table.then(|| DirectionTable::build(&vectors, &graph));
        // Legacy layouts predate the quantized section; the encoding is
        // deterministic, so rebuilding from the vectors lands on the same
        // grid the segment writer would have persisted.
        let quantized = meta
            .build_quantized
            .unwrap_or(false)
            .then(|| pathweaver_vector::QuantizedSet::quantize(&vectors));
        members.push(global_ids.clone());
        shards.push(ShardIndex {
            global_ids,
            vectors,
            graph,
            dir_table,
            quantized,
            ghost,
            intershard,
            deleted,
        });
    }

    finish_load(meta, config, shards, members)
}

/// Shared tail of both loaders: ring-target validation, shard assignment
/// and memory-ledger reconstruction.
pub(crate) fn finish_load(
    meta: Meta,
    config: crate::config::PathWeaverConfig,
    shards: Vec<ShardIndex>,
    members: Vec<Vec<u32>>,
) -> Result<PathWeaverIndex, StoreError> {
    // Targets must land inside the ring successor's shard.
    for s in 0..shards.len() {
        if let Some(t) = &shards[s].intershard {
            let next_len = shards[(s + 1) % shards.len()].vectors.len() as u32;
            for u in 0..t.len() as u32 {
                if t.target(u) >= next_len {
                    return Err(StoreError::Malformed(format!(
                        "shard {s} inter-shard target {} out of range for next shard ({next_len} nodes)",
                        t.target(u)
                    )));
                }
            }
        }
    }

    let mut assignment =
        ShardAssignment::random(meta.num_vectors.max(meta.num_devices), meta.num_devices, 0);
    for (s, m) in members.into_iter().enumerate() {
        assignment.set_members(s, m);
    }
    let mut ledgers = Vec::with_capacity(meta.num_devices);
    for shard in &shards {
        let mut ledger = MemoryLedger::new(config.device.mem_capacity);
        for (label, bytes) in shard.resident_bytes() {
            ledger.allocate(label, bytes).map_err(|e| StoreError::Malformed(e.to_string()))?;
        }
        ledgers.push(ledger);
    }
    Ok(PathWeaverIndex {
        config,
        shards: shards.into_iter().map(std::sync::Arc::new).collect(),
        assignment,
        build_report: BuildReport::new(),
        ledgers,
        num_vectors: meta.num_vectors,
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::TempDir;
    use super::*;
    use crate::config::PathWeaverConfig;
    use pathweaver_datasets::{DatasetProfile, Scale};
    use pathweaver_search::SearchParams;

    #[test]
    fn legacy_roundtrip_preserves_search_results() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 71);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let dir = TempDir::new("legacy-roundtrip");
        save_index_legacy(&idx, dir.path()).unwrap();
        // The probe must route a legacy directory to this loader.
        let loaded = super::super::load_index(dir.path()).unwrap();
        let params = SearchParams::default();
        let a = idx.search_pipelined(&w.queries, &params);
        let b = loaded.search_pipelined(&w.queries, &params);
        assert_eq!(a.results, b.results, "legacy-loaded index must search identically");
    }

    #[test]
    fn corrupted_graph_is_detected() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, 73);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let dir = TempDir::new("legacy-corrupt");
        save_index_legacy(&idx, dir.path()).unwrap();
        let victim = dir.join("shard-000/graph.pwgr");
        let mut bytes = fs::read(&victim).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&victim, bytes).unwrap();
        assert!(matches!(load_index_legacy(dir.path()), Err(StoreError::Malformed(_))));
    }
}
