//! Durable index persistence.
//!
//! Two on-disk formats live here:
//!
//! - **Segment stores** (the default since format v2): one immutable,
//!   versioned, CRC-checksummed [`segment`] file holding every shard
//!   structure in its exact in-memory layout, plus an append-only [`wal`]
//!   that logs `insert`/`delete` mutations and replays them on open. A
//!   store directory is
//!
//!   ```text
//!   index-dir/
//!     segment.pwseg            immutable checksummed segment (all shards)
//!     wal.pwal                 append-only mutation log
//!   ```
//!
//! - The **legacy directory format** (v1, [`legacy`]): one file per
//!   structure per shard (`vectors.fvecs`, `graph.pwgr`, ...), deserialized
//!   record by record. Kept behind a format probe so old stores keep
//!   loading; `pwctl compact` migrates them.
//!
//! [`load_index`] probes the directory and dispatches; [`save_index`]
//! always writes the segment format. Mutating under durability guarantees
//! goes through [`crate::dynamic::DurableIndex`], which appends to the WAL
//! before acknowledging each mutation and folds the log back into a fresh
//! segment on `compact`.

pub mod legacy;
pub mod segment;
pub mod wal;

use crate::config::PathWeaverConfig;
use crate::index::PathWeaverIndex;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// File name of the segment inside a store directory.
pub const SEGMENT_FILE: &str = "segment.pwseg";
/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.pwal";

/// Errors raised while saving or loading an index.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// Structurally invalid index directory (legacy format).
    Malformed(String),
    /// A segment or WAL failed its checksum / framing / structural
    /// validation. `offset` is the byte offset of the rejected region in
    /// the file named by `detail`.
    Corrupt {
        /// Byte offset of the first rejected byte range.
        offset: u64,
        /// What failed and where.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Malformed(m) => write!(f, "malformed index directory: {m}"),
            Self::Corrupt { offset, detail } => {
                write!(f, "corrupt store at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

pub(crate) fn malformed(e: impl std::fmt::Display) -> StoreError {
    StoreError::Malformed(e.to_string())
}

pub(crate) fn corrupt(offset: u64, detail: impl std::fmt::Display) -> StoreError {
    StoreError::Corrupt { offset, detail: detail.to_string() }
}

/// The JSON-serializable subset of the configuration; device and topology
/// models are reconstructed from presets on load. Shared by both formats.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct Meta {
    pub version: u32,
    pub num_devices: usize,
    pub dim: usize,
    pub num_vectors: usize,
    pub graph: pathweaver_graph::CagraBuildParams,
    pub intershard: pathweaver_graph::InterShardParams,
    pub build_dir_table: bool,
    // Option so metas written before the quantized tier existed still parse
    // (the vendored serde maps a missing field to None, never a default
    // bool); absent means the tier is off.
    pub build_quantized: Option<bool>,
    pub ghost: Option<pathweaver_graph::GhostParams>,
    pub forward_width: usize,
    pub ghost_iterations: usize,
    pub ghost_entries: usize,
    pub ghost_beam: usize,
    pub ghost_seeds: usize,
    pub seed_extra_random: usize,
    pub seed: u64,
}

impl Meta {
    pub(crate) fn from_index(version: u32, index: &PathWeaverIndex) -> Self {
        Self {
            version,
            num_devices: index.num_devices(),
            dim: index.dim(),
            num_vectors: index.num_vectors,
            graph: index.config.graph,
            intershard: index.config.intershard,
            build_dir_table: index.config.build_dir_table,
            build_quantized: Some(index.config.build_quantized),
            ghost: index.config.ghost,
            forward_width: index.config.forward_width,
            ghost_iterations: index.config.ghost_iterations,
            ghost_entries: index.config.ghost_entries,
            ghost_beam: index.config.ghost_beam,
            ghost_seeds: index.config.ghost_seeds,
            seed_extra_random: index.config.seed_extra_random,
            seed: index.config.seed,
        }
    }

    pub(crate) fn to_config(&self) -> PathWeaverConfig {
        let mut config = PathWeaverConfig::full(self.num_devices);
        config.graph = self.graph;
        config.intershard = self.intershard;
        config.build_dir_table = self.build_dir_table;
        config.build_quantized = self.build_quantized.unwrap_or(false);
        config.ghost = self.ghost;
        config.forward_width = self.forward_width;
        config.ghost_iterations = self.ghost_iterations;
        config.ghost_entries = self.ghost_entries;
        config.ghost_beam = self.ghost_beam;
        config.ghost_seeds = self.ghost_seeds;
        config.seed_extra_random = self.seed_extra_random;
        config.seed = self.seed;
        config
    }
}

/// Saves `index` under `dir` (created if missing) in the segment format,
/// with a fresh (empty) WAL beside it.
///
/// # Errors
///
/// IO failures. The segment is written to a temporary file and renamed into
/// place, so an existing store is never left half-overwritten.
pub fn save_index(index: &PathWeaverIndex, dir: impl AsRef<Path>) -> Result<(), StoreError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    segment::write_segment(index, dir.join(SEGMENT_FILE))?;
    wal::WalWriter::create(dir.join(WAL_FILE), index.dim())?;
    Ok(())
}

/// Loads an index saved by [`save_index`] (or the legacy
/// [`legacy::save_index_legacy`]), probing the directory for its format.
///
/// Segment stores replay any WAL records onto the loaded index; this is a
/// read-only open (the WAL file itself is not truncated — open the store
/// through [`crate::dynamic::DurableIndex::open`] to also repair torn
/// tails on disk).
///
/// # Errors
///
/// IO failures, [`StoreError::Corrupt`] on checksum/framing violations in
/// a segment store, or [`StoreError::Malformed`] on structural problems in
/// a legacy directory.
pub fn load_index(dir: impl AsRef<Path>) -> Result<PathWeaverIndex, StoreError> {
    let dir = dir.as_ref();
    if dir.join(SEGMENT_FILE).exists() {
        let mut index = segment::read_segment(dir.join(SEGMENT_FILE))?;
        let wal_path = dir.join(WAL_FILE);
        if wal_path.exists() {
            let replay = wal::read_wal(&wal_path)?;
            wal::apply_records(&mut index, &replay.records)?;
        }
        Ok(index)
    } else {
        legacy::load_index_legacy(dir)
    }
}

/// Whether `dir` holds a segment-format store (vs legacy or nothing).
pub fn is_segment_store(dir: impl AsRef<Path>) -> bool {
    dir.as_ref().join(SEGMENT_FILE).exists()
}

/// A checksum audit of one store directory (see [`verify_store`]).
#[derive(Debug)]
pub struct StoreReport {
    /// `true` for segment stores, `false` for legacy directories.
    pub segment_format: bool,
    /// Number of checksummed segment sections verified.
    pub sections: usize,
    /// Total segment bytes verified.
    pub segment_bytes: u64,
    /// Valid WAL records found.
    pub wal_records: usize,
    /// Bytes of torn / unreplayable WAL tail (0 for a clean log).
    pub wal_torn_bytes: u64,
}

/// Checksum-audits a store without materializing the index: verifies the
/// segment header, table of contents and every section CRC, then scans the
/// WAL and reports any torn tail. Legacy directories are audited by a full
/// load (they have no checksums to verify in place).
///
/// # Errors
///
/// [`StoreError::Corrupt`] (segment or WAL header damage), or the legacy
/// loader's errors for legacy directories.
pub fn verify_store(dir: impl AsRef<Path>) -> Result<StoreReport, StoreError> {
    let dir = dir.as_ref();
    if is_segment_store(dir) {
        let audit = segment::verify_segment(dir.join(SEGMENT_FILE))?;
        let wal_path = dir.join(WAL_FILE);
        let (wal_records, wal_torn_bytes) = if wal_path.exists() {
            let replay = wal::read_wal(&wal_path)?;
            (replay.records.len(), replay.torn_bytes)
        } else {
            (0, 0)
        };
        Ok(StoreReport {
            segment_format: true,
            sections: audit.sections,
            segment_bytes: audit.bytes,
            wal_records,
            wal_torn_bytes,
        })
    } else {
        let _ = legacy::load_index_legacy(dir)?;
        Ok(StoreReport {
            segment_format: false,
            sections: 0,
            segment_bytes: 0,
            wal_records: 0,
            wal_torn_bytes: 0,
        })
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    /// RAII temp directory for store tests: removed on drop, including on
    /// assertion failure (panics unwind through the guard).
    pub struct TempDir(pub std::path::PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> Self {
            let d = std::env::temp_dir().join(format!(
                "pw-store-{tag}-{}-{:x}",
                std::process::id(),
                pathweaver_util::seed_from_parts(0xD1F, tag, 0)
            ));
            // A stale run's leftovers must not leak into this one.
            let _ = std::fs::remove_dir_all(&d);
            std::fs::create_dir_all(&d).unwrap();
            Self(d)
        }

        pub fn path(&self) -> &std::path::Path {
            &self.0
        }

        pub fn join(&self, name: &str) -> std::path::PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::TempDir;
    use super::*;
    use crate::index::PathWeaverIndex;
    use pathweaver_datasets::{recall_batch, DatasetProfile, Scale};
    use pathweaver_search::SearchParams;

    #[test]
    fn roundtrip_preserves_search_results() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 71);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let dir = TempDir::new("roundtrip");
        save_index(&idx, dir.path()).unwrap();
        assert!(is_segment_store(dir.path()), "save_index writes the segment format");
        let loaded = load_index(dir.path()).unwrap();
        assert_eq!(loaded.num_devices(), 2);
        assert_eq!(loaded.dim(), idx.dim());
        assert_eq!(loaded.num_vectors, idx.num_vectors);
        let params = SearchParams::default();
        let a = idx.search_pipelined(&w.queries, &params);
        let b = loaded.search_pipelined(&w.queries, &params);
        assert_eq!(a.results, b.results, "loaded index must search identically");
        let recall = recall_batch(&w.ground_truth, &b.results, 10);
        assert!(recall > 0.8);
    }

    #[test]
    fn quantized_tier_survives_roundtrip_bitwise() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 8, 10, 77);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let dir = TempDir::new("roundtrip-quantized");
        save_index(&idx, dir.path()).unwrap();
        let loaded = load_index(dir.path()).unwrap();
        assert!(loaded.config.build_quantized, "meta round-trips the tier toggle");
        for (a, b) in idx.shards.iter().zip(&loaded.shards) {
            assert_eq!(a.quantized, b.quantized, "codes and grid must reopen bitwise");
        }
        let params = SearchParams { quantized: true, ..SearchParams::default() };
        let before = idx.search_pipelined(&w.queries, &params);
        let after = loaded.search_pipelined(&w.queries, &params);
        assert_eq!(before.results, after.results, "quantized search must reopen identically");
    }

    #[test]
    fn tombstones_survive_roundtrip() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, 72);
        let mut idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let victim = idx.shards[0].global_ids[3];
        assert!(idx.delete(victim));
        let dir = TempDir::new("tombstone");
        save_index(&idx, dir.path()).unwrap();
        let mut loaded = load_index(dir.path()).unwrap();
        assert_eq!(loaded.live_vectors(), idx.live_vectors());
        assert!(!loaded.delete(victim), "already tombstoned");
    }

    #[test]
    fn missing_store_is_clean_error() {
        let dir = TempDir::new("missing");
        assert!(matches!(load_index(dir.path()), Err(StoreError::Io(_))));
    }

    #[test]
    fn verify_reports_clean_store() {
        let w = DatasetProfile::deep10m_like().workload(Scale::Test, 4, 5, 74);
        let idx = PathWeaverIndex::build(&w.base, &PathWeaverConfig::test_scale(2)).unwrap();
        let dir = TempDir::new("verify");
        save_index(&idx, dir.path()).unwrap();
        let report = verify_store(dir.path()).unwrap();
        assert!(report.segment_format);
        assert!(report.sections > 0);
        assert!(report.segment_bytes > 0);
        assert_eq!(report.wal_records, 0);
        assert_eq!(report.wal_torn_bytes, 0);
    }
}
