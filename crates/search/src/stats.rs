//! Search statistics (Table 1, Fig 3, Fig 13).

use serde::{Deserialize, Serialize};

/// Statistics of one query's search on one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Iterations executed before convergence or the cap.
    pub iterations: u64,
    /// Nodes whose exact distance was computed ("#Total Visits").
    pub visits: u64,
    /// Visited nodes absent from the final priority buffer ("#Discarded
    /// Visits", Table 1).
    pub discarded: u64,
    /// Whether the search converged before hitting the iteration cap.
    pub converged: bool,
    /// Neighbors skipped by direction-guided selection.
    pub filtered_neighbors: u64,
    /// Candidates re-scored with exact distances after a quantized
    /// traversal (0 when the quantized tier is off).
    pub rerank_width: u64,
}

impl SearchStats {
    /// Fraction of visits that were discarded (Table 1's "Ratio").
    pub fn discard_ratio(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.discarded as f64 / self.visits as f64
        }
    }
}

/// Aggregated statistics over a query batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Queries aggregated.
    pub queries: u64,
    /// Total iterations.
    pub iterations: u64,
    /// Total visits.
    pub visits: u64,
    /// Total discarded visits.
    pub discarded: u64,
    /// Queries that converged before the cap.
    pub converged: u64,
    /// Total filtered (skipped) neighbors.
    pub filtered_neighbors: u64,
    /// Total exact re-rank distance computations (quantized tier).
    pub reranked: u64,
}

impl BatchStats {
    /// Adds one query's statistics.
    pub fn absorb(&mut self, s: &SearchStats) {
        self.queries += 1;
        self.iterations += s.iterations;
        self.visits += s.visits;
        self.discarded += s.discarded;
        self.converged += u64::from(s.converged);
        self.filtered_neighbors += s.filtered_neighbors;
        self.reranked += s.rerank_width;
    }

    /// Merges another batch.
    pub fn merge(&mut self, other: &BatchStats) {
        self.queries += other.queries;
        self.iterations += other.iterations;
        self.visits += other.visits;
        self.discarded += other.discarded;
        self.converged += other.converged;
        self.filtered_neighbors += other.filtered_neighbors;
        self.reranked += other.reranked;
    }

    /// Mean iterations per query.
    pub fn mean_iterations(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.iterations as f64 / self.queries as f64
        }
    }

    /// Overall discarded-visit ratio (Table 1).
    pub fn discard_ratio(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.discarded as f64 / self.visits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut b = BatchStats::default();
        b.absorb(&SearchStats {
            iterations: 10,
            visits: 100,
            discarded: 90,
            converged: true,
            filtered_neighbors: 5,
            rerank_width: 4,
        });
        b.absorb(&SearchStats {
            iterations: 20,
            visits: 200,
            discarded: 150,
            converged: false,
            filtered_neighbors: 0,
            rerank_width: 0,
        });
        assert_eq!(b.queries, 2);
        assert_eq!(b.mean_iterations(), 15.0);
        assert_eq!(b.visits, 300);
        assert_eq!(b.converged, 1);
        assert_eq!(b.reranked, 4);
        assert!((b.discard_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_ratios_are_zero() {
        assert_eq!(BatchStats::default().discard_ratio(), 0.0);
        assert_eq!(BatchStats::default().mean_iterations(), 0.0);
        assert_eq!(SearchStats::default().discard_ratio(), 0.0);
    }

    #[test]
    fn merge_combines_batches() {
        let mut a = BatchStats {
            queries: 1,
            iterations: 5,
            visits: 10,
            discarded: 8,
            converged: 1,
            filtered_neighbors: 2,
            reranked: 6,
        };
        let b = BatchStats {
            queries: 2,
            iterations: 10,
            visits: 30,
            discarded: 20,
            converged: 1,
            filtered_neighbors: 3,
            reranked: 1,
        };
        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.visits, 40);
        assert_eq!(a.filtered_neighbors, 5);
        assert_eq!(a.reranked, 7);
    }
}
