//! The forgettable visited-hash table (CAGRA §4, adopted by the paper).
//!
//! A small open-addressing table of node ids that answers "have I already
//! computed this node's distance?". It is *forgettable*: when a probe window
//! is full, the oldest-looking slot is overwritten. Forgetting can cause a
//! node to be re-processed (costing a redundant distance computation, never
//! a wrong result) — precisely the trade the GPU kernel makes to keep the
//! table in shared memory.

/// Sentinel for an empty slot (node ids are < 2^32 − 1 in practice).
const EMPTY: u32 = u32::MAX;

/// A fixed-capacity forgettable visited set of `u32` ids.
#[derive(Debug, Clone)]
pub struct VisitedHash {
    slots: Vec<u32>,
    mask: usize,
    probes: u64,
    /// Linear-probe window before forgetting.
    window: usize,
}

impl VisitedHash {
    /// Creates a table with `2^bits` slots.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `4..=28`.
    pub fn new(bits: u32) -> Self {
        assert!((4..=28).contains(&bits), "hash bits out of range");
        let n = 1usize << bits;
        Self { slots: vec![EMPTY; n], mask: n - 1, probes: 0, window: 8 }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Simulated probe count charged so far (drained by the kernel).
    pub fn take_probes(&mut self) -> u64 {
        std::mem::take(&mut self.probes)
    }

    /// Multiplicative hash of an id onto the table.
    #[inline]
    fn slot_of(&self, id: u32) -> usize {
        (id.wrapping_mul(0x9E37_79B1) as usize) & self.mask
    }

    /// Marks `id` visited. Returns `true` when the id was *not* already
    /// present (i.e. the caller should process it now).
    pub fn insert(&mut self, id: u32) -> bool {
        debug_assert_ne!(id, EMPTY, "sentinel id");
        let start = self.slot_of(id);
        for i in 0..self.window {
            self.probes += 1;
            let s = (start + i) & self.mask;
            if self.slots[s] == id {
                return false;
            }
            if self.slots[s] == EMPTY {
                self.slots[s] = id;
                return true;
            }
        }
        // Window full: forget the slot at the window start.
        self.slots[start] = id;
        true
    }

    /// Returns `true` if `id` is currently remembered as visited.
    pub fn contains(&mut self, id: u32) -> bool {
        let start = self.slot_of(id);
        for i in 0..self.window {
            self.probes += 1;
            let s = (start + i) & self.mask;
            if self.slots[s] == id {
                return true;
            }
            if self.slots[s] == EMPTY {
                return false;
            }
        }
        false
    }

    /// Clears the table (reused between queries).
    pub fn clear(&mut self) {
        self.slots.fill(EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut h = VisitedHash::new(8);
        assert!(h.insert(42));
        assert!(!h.insert(42));
        assert!(h.contains(42));
        assert!(!h.contains(43));
    }

    #[test]
    fn clear_forgets_everything() {
        let mut h = VisitedHash::new(6);
        h.insert(1);
        h.insert(2);
        h.clear();
        assert!(!h.contains(1));
        assert!(h.insert(1));
    }

    #[test]
    fn never_false_positive() {
        // Forgetting may cause false *negatives* (re-processing) but an id
        // never reported visited unless it was actually inserted.
        let mut h = VisitedHash::new(4); // 16 slots: heavy pressure.
        let mut inserted = std::collections::HashSet::new();
        for id in 0..1000u32 {
            if h.contains(id * 7 + 1) {
                assert!(inserted.contains(&(id * 7 + 1)), "false positive for {}", id * 7 + 1);
            }
            h.insert(id);
            inserted.insert(id);
        }
    }

    #[test]
    fn forgetting_under_pressure_still_inserts() {
        let mut h = VisitedHash::new(4);
        for id in 0..10_000u32 {
            h.insert(id);
        }
        // The most recent id must still be present.
        assert!(h.contains(9_999));
    }

    #[test]
    fn probes_are_counted() {
        let mut h = VisitedHash::new(8);
        h.insert(1);
        h.contains(1);
        assert!(h.take_probes() >= 2);
        assert_eq!(h.take_probes(), 0);
    }

    #[test]
    #[should_panic(expected = "hash bits out of range")]
    fn tiny_table_rejected() {
        let _ = VisitedHash::new(2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn agrees_with_exact_set_when_roomy(ids in proptest::collection::vec(0u32..200, 0..100)) {
            // With a table far larger than the id universe, the forgettable
            // hash must behave exactly like a set.
            let mut h = VisitedHash::new(12);
            let mut set = std::collections::HashSet::new();
            for &id in &ids {
                prop_assert_eq!(h.insert(id), set.insert(id), "id {}", id);
            }
            for id in 0u32..200 {
                prop_assert_eq!(h.contains(id), set.contains(&id), "contains {}", id);
            }
        }
    }
}
