//! Direction-guided selection (paper §3.3) and its random-discard control.
//!
//! Given a visited node `u`, its adjacency row, and the query, DGS:
//!
//! 1. encodes the sign bits of `q − u` (one code per visited node),
//! 2. looks up the precomputed edge codes of `u`'s neighbors,
//! 3. counts matching bits per neighbor (XOR + popcount), and
//! 4. keeps the `n` neighbors with the most matching bits; only those get a
//!    full distance computation.
//!
//! `Random` keeps a uniformly random subset of the same size — the control
//! experiment in Fig 15/16 that shows the *direction* information, not the
//! mere discarding, preserves recall.

use pathweaver_graph::DirectionTable;
use pathweaver_vector::SignCodeBuf;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// How the kernel selects which neighbors get an exact distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborFilter {
    /// All neighbors (exact CAGRA behaviour).
    All,
    /// Direction-guided: keep the `keep` most query-aligned neighbors.
    Direction {
        /// Neighbors kept per row.
        keep: usize,
    },
    /// Random control: keep `keep` uniformly random neighbors.
    Random {
        /// Neighbors kept per row.
        keep: usize,
    },
    /// Similarity-threshold pruning (paper §6.3's suggested variant): keep
    /// every neighbor whose direction code matches the query direction on at
    /// least `min_matches` bits, regardless of how many qualify. Preserves
    /// good candidates at the cost of a variable (warp-imbalancing) keep
    /// count; at least one neighbor is always kept.
    Threshold {
        /// Minimum matching bits required.
        min_matches: u32,
    },
}

/// Selects the positions (indices into the adjacency row) whose distances
/// will be computed.
///
/// `node_vec` is the visited node's vector, `query` the query vector,
/// `row_codes` the node's direction-table row (`degree × words` packed u32).
/// `scratch` is the reusable query-code buffer. Returns indices in ranking
/// order (most aligned first for [`NeighborFilter::Direction`]).
pub fn select_neighbors(
    filter: NeighborFilter,
    degree: usize,
    node_vec: &[f32],
    query: &[f32],
    dir_table: Option<(&DirectionTable, u32)>,
    scratch: &mut SignCodeBuf,
    rng: &mut SmallRng,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(degree);
    let mut ranks = Vec::new();
    select_neighbors_into(
        filter, degree, node_vec, query, dir_table, scratch, rng, &mut ranks, &mut out,
    );
    out
}

/// [`select_neighbors`] writing into caller-owned buffers.
///
/// `ranks` is the DGS rank scratch (match count, row position) used by the
/// [`NeighborFilter::Direction`] sort; `out` receives the selected row
/// positions. Both are cleared first — the search kernel reuses them across
/// all beam iterations so the selection path stays allocation-free.
#[allow(clippy::too_many_arguments)]
pub fn select_neighbors_into(
    filter: NeighborFilter,
    degree: usize,
    node_vec: &[f32],
    query: &[f32],
    dir_table: Option<(&DirectionTable, u32)>,
    scratch: &mut SignCodeBuf,
    rng: &mut SmallRng,
    ranks: &mut Vec<(u32, usize)>,
    out: &mut Vec<usize>,
) {
    out.clear();
    match filter {
        NeighborFilter::All => out.extend(0..degree),
        NeighborFilter::Random { keep } => {
            out.extend(0..degree);
            out.shuffle(rng);
            out.truncate(keep.clamp(1, degree));
        }
        NeighborFilter::Direction { keep } => {
            // lint: allow(hot-panic) — caller contract: search_query only
            // selects this filter after checking ctx.dir_table is Some.
            let (table, u) = dir_table.expect("direction filter requires a direction table");
            scratch.encode(node_vec, query);
            let words = table.words_per_code();
            let row = table.node_codes(u);
            ranks.clear();
            ranks.extend(
                (0..degree).map(|j| (scratch.matches(&row[j * words..(j + 1) * words]), j)),
            );
            // Most matching bits first; stable index tie-break for
            // determinism.
            ranks.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            ranks.truncate(keep.clamp(1, degree));
            out.extend(ranks.iter().map(|&(_, j)| j));
        }
        NeighborFilter::Threshold { min_matches } => {
            // lint: allow(hot-panic) — caller contract: search_query only
            // selects this filter after checking ctx.dir_table is Some.
            let (table, u) = dir_table.expect("threshold filter requires a direction table");
            scratch.encode(node_vec, query);
            let words = table.words_per_code();
            let row = table.node_codes(u);
            let mut best = (0u32, 0usize);
            for j in 0..degree {
                let m = scratch.matches(&row[j * words..(j + 1) * words]);
                if m >= min_matches {
                    out.push(j);
                }
                if m > best.0 {
                    best = (m, j);
                }
            }
            if out.is_empty() {
                out.push(best.1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathweaver_graph::FixedDegreeGraph;
    use pathweaver_vector::VectorSet;

    /// A node at the origin with 4 neighbors along ±x / ±y; the query sits
    /// along +x, so the +x neighbor must rank first.
    fn axis_world() -> (VectorSet, FixedDegreeGraph, DirectionTable) {
        let dim = 16;
        let mut set = VectorSet::empty(dim);
        set.push(&vec![0.0; dim]); // node 0: origin
        let mut px = vec![0.0; dim];
        px[0] = 1.0;
        let mut nx = vec![0.0; dim];
        nx[0] = -1.0;
        let mut py = vec![0.0; dim];
        py[1] = 1.0;
        let mut ny = vec![0.0; dim];
        ny[1] = -1.0;
        set.push(&px); // 1
        set.push(&nx); // 2
        set.push(&py); // 3
        set.push(&ny); // 4
        let lists = vec![
            vec![1, 2, 3, 4],
            vec![0, 2, 3, 4],
            vec![0, 1, 3, 4],
            vec![0, 1, 2, 4],
            vec![0, 1, 2, 3],
        ];
        let g = FixedDegreeGraph::from_lists(4, &lists);
        let t = DirectionTable::build(&set, &g);
        (set, g, t)
    }

    #[test]
    fn all_keeps_everything() {
        let mut rng = pathweaver_util::small_rng(1);
        let mut buf = SignCodeBuf::new(16);
        let got = select_neighbors(
            NeighborFilter::All,
            4,
            &[0.0; 16],
            &[1.0; 16],
            None,
            &mut buf,
            &mut rng,
        );
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn direction_ranks_aligned_neighbor_first() {
        let (set, _g, t) = axis_world();
        let mut query = vec![0.0f32; 16];
        query[0] = 2.0; // Along +x: neighbor 1 (row position 0) is aligned.
        let mut rng = pathweaver_util::small_rng(2);
        let mut buf = SignCodeBuf::new(16);
        let got = select_neighbors(
            NeighborFilter::Direction { keep: 1 },
            4,
            set.row(0),
            &query,
            Some((&t, 0)),
            &mut buf,
            &mut rng,
        );
        assert_eq!(got, vec![0], "expected the +x edge (row position 0)");
    }

    #[test]
    fn direction_keep_two_excludes_opposite() {
        let (set, _g, t) = axis_world();
        // Query increases along every coordinate, so the +x and +y edges
        // (row positions 0 and 2) must outrank the −x and −y edges, whose
        // sign codes share no raised bit with the query direction.
        let query = vec![2.0f32; 16];
        let mut rng = pathweaver_util::small_rng(3);
        let mut buf = SignCodeBuf::new(16);
        let got = select_neighbors(
            NeighborFilter::Direction { keep: 2 },
            4,
            set.row(0),
            &query,
            Some((&t, 0)),
            &mut buf,
            &mut rng,
        );
        assert_eq!(got.len(), 2);
        assert!(got.contains(&0), "+x edge must be kept: {got:?}");
        assert!(got.contains(&2), "+y edge must be kept: {got:?}");
    }

    #[test]
    fn random_keeps_requested_count() {
        let mut rng = pathweaver_util::small_rng(4);
        let mut buf = SignCodeBuf::new(8);
        let got = select_neighbors(
            NeighborFilter::Random { keep: 3 },
            10,
            &[0.0; 8],
            &[1.0; 8],
            None,
            &mut buf,
            &mut rng,
        );
        assert_eq!(got.len(), 3);
        let uniq: std::collections::HashSet<usize> = got.iter().copied().collect();
        assert_eq!(uniq.len(), 3);
        assert!(got.iter().all(|&j| j < 10));
    }

    #[test]
    fn threshold_keeps_qualifying_neighbors() {
        let (set, _g, t) = axis_world();
        let query = vec![2.0f32; 16]; // All coordinates increase.
        let mut rng = pathweaver_util::small_rng(6);
        let mut buf = SignCodeBuf::new(16);
        // +x and +y edges match on 1 bit; −x/−y on 0 bits.
        let got = select_neighbors(
            NeighborFilter::Threshold { min_matches: 1 },
            4,
            set.row(0),
            &query,
            Some((&t, 0)),
            &mut buf,
            &mut rng,
        );
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn threshold_never_empty() {
        let (set, _g, t) = axis_world();
        let query = vec![2.0f32; 16];
        let mut rng = pathweaver_util::small_rng(7);
        let mut buf = SignCodeBuf::new(16);
        let got = select_neighbors(
            NeighborFilter::Threshold { min_matches: 1000 },
            4,
            set.row(0),
            &query,
            Some((&t, 0)),
            &mut buf,
            &mut rng,
        );
        assert_eq!(got.len(), 1, "best neighbor must survive an impossible threshold");
    }

    #[test]
    fn keep_clamped_to_degree() {
        let mut rng = pathweaver_util::small_rng(5);
        let mut buf = SignCodeBuf::new(8);
        let got = select_neighbors(
            NeighborFilter::Random { keep: 100 },
            4,
            &[0.0; 8],
            &[1.0; 8],
            None,
            &mut buf,
            &mut rng,
        );
        assert_eq!(got.len(), 4);
    }
}
