//! The bounded sorted priority buffer (the paper's queue `p`).
//!
//! CAGRA keeps the top-`l` intermediate results in registers, sorted by a
//! warp-wide bitonic network. The CPU mirror is a bounded sorted vector with
//! an `expanded` flag per entry; insertions charge `log2(l)` simulated sort
//! steps (one bitonic merge depth) to the cost counters.

/// One queue slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    /// Squared distance to the query.
    pub dist: f32,
    /// Node id.
    pub id: u32,
    /// Whether this node's adjacency has been expanded (step 4 of §2.2).
    pub expanded: bool,
}

/// A bounded ascending-sorted buffer of the best `capacity` nodes seen.
#[derive(Debug, Clone)]
pub struct PriorityBuffer {
    slots: Vec<Slot>,
    capacity: usize,
    /// Simulated bitonic sort steps charged so far.
    sort_steps: u64,
}

impl PriorityBuffer {
    /// Creates an empty buffer of the given capacity (`l`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self { slots: Vec::with_capacity(capacity + 1), capacity, sort_steps: 0 }
    }

    /// Capacity `l`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Simulated sort steps charged so far (drained into cost counters by
    /// the kernel).
    pub fn take_sort_steps(&mut self) -> u64 {
        std::mem::take(&mut self.sort_steps)
    }

    /// Worst distance still kept, or `f32::INFINITY` while not full.
    pub fn threshold(&self) -> f32 {
        if self.slots.len() < self.capacity {
            f32::INFINITY
        } else {
            self.slots[self.capacity - 1].dist
        }
    }

    /// Offers `(dist, id)`; returns `true` if the buffer changed.
    ///
    /// Duplicate ids are rejected (the visited hash makes them rare; this is
    /// the backstop that keeps results unique).
    pub fn push(&mut self, dist: f32, id: u32) -> bool {
        self.push_at(dist, id).is_some()
    }

    /// Offers `(dist, id)`; returns the insertion rank (0 = new best) when
    /// the buffer changed, `None` otherwise.
    ///
    /// The rank feeds the kernel's convergence check: the search has
    /// converged when the *result window* (top-k) stops receiving new
    /// entries, even while the beam tail keeps churning.
    pub fn push_at(&mut self, dist: f32, id: u32) -> Option<usize> {
        if self.slots.len() == self.capacity && dist >= self.slots[self.capacity - 1].dist {
            // Rejected by the threshold: a single register compare on the
            // GPU, no merge network — charge nothing.
            return None;
        }
        if self.slots.iter().any(|s| s.id == id) {
            return None;
        }
        // `ceil(log2(capacity))` of a queue capacity is tiny, so the
        // f64-to-u64 cast cannot truncate.
        #[allow(clippy::cast_possible_truncation)]
        let steps = (self.capacity.max(2) as f64).log2().ceil() as u64;
        self.sort_steps += steps;
        let pos = self.slots.partition_point(|s| s.dist <= dist);
        self.slots.insert(pos, Slot { dist, id, expanded: false });
        if self.slots.len() > self.capacity {
            self.slots.pop();
        }
        Some(pos)
    }

    /// Marks and returns the best `r` unexpanded slots' `(dist, id)`.
    pub fn pop_expansion_targets(&mut self, r: usize) -> Vec<(f32, u32)> {
        let mut out = Vec::with_capacity(r);
        self.pop_expansion_targets_into(r, &mut out);
        out
    }

    /// [`Self::pop_expansion_targets`] writing into a caller-owned buffer.
    ///
    /// `out` is cleared first; the search kernel reuses one buffer across all
    /// beam iterations to keep the hot loop allocation-free.
    pub fn pop_expansion_targets_into(&mut self, r: usize, out: &mut Vec<(f32, u32)>) {
        out.clear();
        for s in self.slots.iter_mut() {
            if out.len() == r {
                break;
            }
            if !s.expanded {
                s.expanded = true;
                out.push((s.dist, s.id));
            }
        }
    }

    /// The current best `k` results, ascending.
    pub fn top_k(&self, k: usize) -> Vec<(f32, u32)> {
        self.slots.iter().take(k).map(|s| (s.dist, s.id)).collect()
    }

    /// All ids currently held.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots.iter().map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_sorted() {
        let mut q = PriorityBuffer::new(3);
        assert!(q.push(5.0, 1));
        assert!(q.push(2.0, 2));
        assert!(q.push(8.0, 3));
        assert!(q.push(1.0, 4)); // Evicts id 3.
        assert!(!q.push(9.0, 5));
        let top = q.top_k(3);
        assert_eq!(top, vec![(1.0, 4), (2.0, 2), (5.0, 1)]);
    }

    #[test]
    fn duplicates_rejected() {
        let mut q = PriorityBuffer::new(4);
        assert!(q.push(1.0, 7));
        assert!(!q.push(2.0, 7));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn expansion_targets_marked_once() {
        let mut q = PriorityBuffer::new(4);
        q.push(1.0, 1);
        q.push(2.0, 2);
        q.push(3.0, 3);
        let first = q.pop_expansion_targets(2);
        assert_eq!(first, vec![(1.0, 1), (2.0, 2)]);
        let second = q.pop_expansion_targets(2);
        assert_eq!(second, vec![(3.0, 3)]);
        assert!(q.pop_expansion_targets(2).is_empty());
    }

    #[test]
    fn new_entries_are_unexpanded() {
        let mut q = PriorityBuffer::new(4);
        q.push(1.0, 1);
        let _ = q.pop_expansion_targets(1);
        q.push(0.5, 2); // Better node arrives after expansion.
        let next = q.pop_expansion_targets(1);
        assert_eq!(next, vec![(0.5, 2)]);
    }

    #[test]
    fn threshold_tracks_worst() {
        let mut q = PriorityBuffer::new(2);
        assert_eq!(q.threshold(), f32::INFINITY);
        q.push(3.0, 1);
        q.push(1.0, 2);
        assert_eq!(q.threshold(), 3.0);
    }

    #[test]
    fn sort_steps_accumulate_and_drain() {
        let mut q = PriorityBuffer::new(8);
        q.push(1.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.take_sort_steps(), 6); // 2 pushes × log2(8).
        assert_eq!(q.take_sort_steps(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn matches_sorted_truncation(entries in proptest::collection::vec((0.0f32..100.0, 0u32..1000), 0..200)) {
            let mut q = PriorityBuffer::new(8);
            for &(d, id) in &entries {
                q.push(d, id);
            }
            // Reference: sort by (dist, first-arrival), dedup ids keeping the
            // first accepted occurrence. The buffer processes sequentially, so
            // an id is kept with the distance of its first surviving arrival.
            let got = q.top_k(8);
            prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
            let ids: std::collections::HashSet<u32> = got.iter().map(|e| e.1).collect();
            prop_assert_eq!(ids.len(), got.len());
            // Every kept distance is at most the 8th-smallest overall dist.
            if entries.len() >= 8 {
                let mut dists: Vec<f32> = entries.iter().map(|e| e.0).collect();
                dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
                for e in &got {
                    prop_assert!(e.0 >= dists[0] - 1e-6);
                }
            }
        }
    }
}
