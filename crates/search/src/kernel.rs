//! The per-query search loop and the batch driver (paper §2.2, §4).
//!
//! The loop is CAGRA's: initialize the priority buffer from entry candidates,
//! then repeatedly expand the best `r` unexpanded nodes, filter their
//! neighbors (direction-guided selection, §3.3), compute exact distances for
//! the survivors, and merge them into the buffer. The search converges when
//! no unexpanded node remains in the buffer — the paper's "priority queue
//! receives no new entries" condition — or the iteration cap is hit.
//!
//! Every operation is tallied into [`CostCounters`]; the simulated GPU clock
//! is derived from those counters, never from wall time.

use crate::dgs::{select_neighbors_into, NeighborFilter};
use crate::hash::VisitedHash;
use crate::params::SearchParams;
use crate::queue::PriorityBuffer;
use crate::stats::{BatchStats, SearchStats};
use pathweaver_gpusim::CostCounters;
use pathweaver_graph::{DirectionTable, FixedDegreeGraph};
use pathweaver_vector::{batch_l2_squared, QuantizedSet, SignCodeBuf, VectorSet};
use rand::Rng;

/// Everything resident on one simulated device for one shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardContext<'a> {
    /// Shard vectors.
    pub vectors: &'a VectorSet,
    /// Shard proximity graph.
    pub graph: &'a FixedDegreeGraph,
    /// Optional direction-bit table (required when DGS is enabled).
    pub dir_table: Option<&'a DirectionTable>,
    /// Optional int8 quantized payload (required for quantized traversal;
    /// searches fall back to exact distances when absent).
    pub quantized: Option<&'a QuantizedSet>,
}

impl<'a> ShardContext<'a> {
    /// Creates a context, checking graph/vector consistency.
    ///
    /// # Panics
    ///
    /// Panics if the graph and vectors disagree on node count.
    pub fn new(
        vectors: &'a VectorSet,
        graph: &'a FixedDegreeGraph,
        dir_table: Option<&'a DirectionTable>,
    ) -> Self {
        assert_eq!(vectors.len(), graph.num_nodes(), "graph/vector size mismatch");
        Self { vectors, graph, dir_table, quantized: None }
    }

    /// Attaches the shard's quantized payload, checking shape consistency.
    ///
    /// # Panics
    ///
    /// Panics if the payload disagrees with the vectors on row count or
    /// dimensionality.
    pub fn with_quantized(mut self, quantized: Option<&'a QuantizedSet>) -> Self {
        if let Some(q) = quantized {
            assert_eq!(q.len(), self.vectors.len(), "quantized/vector size mismatch");
            assert_eq!(q.dim(), self.vectors.dim(), "quantized/vector dim mismatch");
        }
        self.quantized = quantized;
        self
    }
}

/// One batched distance pass over `ids`, on the quantized tier when query
/// codes are present and exact otherwise. Tallies one distance per id; the
/// tally order relative to queue pushes does not matter (counters are pure
/// sums), so batching the records here keeps both call sites identical.
fn batch_candidate_distances(
    ctx: &ShardContext<'_>,
    query: &[f32],
    qcodes: Option<&[i8]>,
    ids: &[u32],
    dists: &mut Vec<f32>,
    counters: &mut CostCounters,
) {
    let dim = ctx.vectors.dim();
    dists.resize(ids.len(), 0.0);
    match qcodes {
        Some(qc) => {
            // lint: allow(hot-panic) — caller contract: query codes are only
            // built when ctx.quantized is Some (search_batch gates on it).
            let qs = ctx.quantized.expect("query codes imply a quantized payload");
            qs.batch_code_l2_squared(ids, qc, dists);
            for _ in ids {
                counters.record_quantized_distance(dim);
            }
        }
        None => {
            batch_l2_squared(ctx.vectors, ids, query, dists);
            for _ in ids {
                counters.record_distance(dim);
            }
        }
    }
}

/// How a query's initial candidate buffer is filled (paper §2.2 step 2 or
/// the seeded variants of §3.1/§3.2).
#[derive(Debug, Clone)]
pub enum EntryPolicy {
    /// `count` uniformly random nodes (baseline CAGRA).
    Random {
        /// Number of random entries.
        count: usize,
    },
    /// Explicit seeds (forwarded results `I(z)` or ghost-stage hits), plus
    /// `extra_random` random nodes as a safety net.
    Seeded {
        /// Seed node ids in this shard.
        seeds: Vec<u32>,
        /// Additional random entries.
        extra_random: usize,
    },
}

/// Searches one query on one shard, tallying every simulated operation.
///
/// Returns `(top-k hits ascending by distance, per-query statistics)`.
///
/// # Panics
///
/// Panics if `params` are invalid (see [`SearchParams::validate`]), the
/// shard is empty, or DGS is enabled without a direction table.
pub fn search_query(
    ctx: &ShardContext<'_>,
    query: &[f32],
    params: &SearchParams,
    entry: &EntryPolicy,
    query_seed: u64,
    counters: &mut CostCounters,
) -> (Vec<(f32, u32)>, SearchStats) {
    params.validate();
    let n = ctx.vectors.len();
    assert!(n > 0, "empty shard");
    let dim = ctx.vectors.dim();
    let degree = ctx.graph.degree();
    if params.dgs.is_some() && !params.random_discard {
        assert!(ctx.dir_table.is_some(), "direction-guided selection needs a direction table");
    }

    let mut queue = PriorityBuffer::new(params.beam);
    let mut visited = VisitedHash::new(params.hash_bits);
    let mut scratch = SignCodeBuf::new(dim);
    let mut rng = pathweaver_util::small_rng(query_seed);
    let mut stats = SearchStats::default();

    // Quantized tier: encode the query once into code space (§ the int8
    // traversal tier); every beam distance then streams 1 byte/dim. Shards
    // without a payload (e.g. the ghost stage) silently run exact.
    let qcodes: Option<Vec<i8>> = if params.quantized {
        ctx.quantized.map(|qs| {
            counters.sign_encodes += 1; // one query encode, same cost class
            qs.encode(query)
        })
    } else {
        None
    };

    // Scratch reused across all beam iterations (and the init phase): the
    // expansion targets, the per-node selected row positions, the DGS rank
    // buffer, and the candidate id/distance lists fed to the batched
    // distance kernel. The hot loop performs no allocation after warm-up.
    let mut targets: Vec<(f32, u32)> = Vec::with_capacity(params.expand);
    let mut selected: Vec<usize> = Vec::with_capacity(degree);
    let mut ranks: Vec<(u32, usize)> = Vec::with_capacity(degree);
    let mut cand_ids: Vec<u32> = Vec::with_capacity(params.expand * degree);
    let mut cand_dists: Vec<f32> = Vec::with_capacity(params.expand * degree);

    // Step 2–3: fill the candidate buffer and sort it into the queue.
    let mut init_ids: Vec<u32> = Vec::with_capacity(params.candidates);
    match entry {
        EntryPolicy::Random { count } => {
            for _ in 0..(*count).max(1) {
                // lint: allow(hot-panic) — shard node counts stay far below
                // u32::MAX at build time; this keeps the rng domain bit-stable.
                init_ids.push(u32::try_from(rng.gen_range(0..n)).expect("node id fits u32"));
                counters.rng_ops += 1;
            }
        }
        EntryPolicy::Seeded { seeds, extra_random } => {
            init_ids.extend(seeds.iter().copied().filter(|&s| (s as usize) < n));
            for _ in 0..*extra_random {
                // lint: allow(hot-panic) — same bound and rng-determinism
                // argument as the Random entry arm above.
                init_ids.push(u32::try_from(rng.gen_range(0..n)).expect("node id fits u32"));
                counters.rng_ops += 1;
            }
            assert!(!init_ids.is_empty(), "seeded entry produced no valid candidates");
        }
    }
    cand_ids.clear();
    cand_ids.extend(init_ids.iter().copied().filter(|&id| visited.insert(id)));
    batch_candidate_distances(ctx, query, qcodes.as_deref(), &cand_ids, &mut cand_dists, counters);
    for (&id, &d) in cand_ids.iter().zip(&cand_dists) {
        stats.visits += 1;
        queue.push(d, id);
    }

    // Steps 3–4 iterated: expand, filter, compute, merge.
    let cooldown_start = params.cooldown_start();
    let keep = params.kept_neighbors(degree);
    let mut stalled = 0usize;
    for iter in 0..params.max_iterations {
        queue.pop_expansion_targets_into(params.expand, &mut targets);
        if targets.is_empty() {
            stats.converged = true;
            break;
        }
        stats.iterations += 1;
        // Paper §2.2: iterate "until the priority queue receives no new
        // entries". The signal watches the *result window* (the top-k
        // slots): a seeded search (path extension / ghost staging) starts at
        // the optimum's doorstep, so its window stabilizes within a couple
        // of iterations, while a random start keeps improving it during the
        // whole navigation phase — exactly where the pipelined stages get
        // their speedup. Beam-tail churn is ignored.
        let mut inserted_in_window = false;

        let filter = match params.dgs {
            // `keep < degree` only gates the top-n mode: in threshold mode
            // `keep_ratio` is a matching-bit fraction, not a neighbor count.
            Some(d) if iter < cooldown_start && (d.threshold_mode || keep < degree) => {
                if params.random_discard {
                    NeighborFilter::Random { keep }
                } else if d.threshold_mode {
                    // §6.3 variant: the keep_ratio doubles as the matching-
                    // bit fraction required of a surviving neighbor.
                    // `keep_ratio` is validated to [0, 1], so the product is
                    // bounded by `dim`, which fits u32.
                    #[allow(clippy::cast_possible_truncation)]
                    let min_matches = (d.keep_ratio * dim as f64).round() as u32;
                    NeighborFilter::Threshold { min_matches }
                } else {
                    NeighborFilter::Direction { keep }
                }
            }
            _ => NeighborFilter::All,
        };

        // Phase 1: select and dedup candidates for every target. Filtering
        // and visited-hash insertion run in the same order as the historical
        // per-neighbor loop, so RNG draws and hash probes are unchanged.
        cand_ids.clear();
        for &(_, u) in &targets {
            counters.record_adjacency_fetch(degree);
            match filter {
                NeighborFilter::All => select_neighbors_into(
                    NeighborFilter::All,
                    degree,
                    ctx.vectors.row(u as usize),
                    query,
                    None,
                    &mut scratch,
                    &mut rng,
                    &mut ranks,
                    &mut selected,
                ),
                NeighborFilter::Random { keep } => {
                    counters.rng_ops += degree as u64;
                    select_neighbors_into(
                        NeighborFilter::Random { keep },
                        degree,
                        ctx.vectors.row(u as usize),
                        query,
                        None,
                        &mut scratch,
                        &mut rng,
                        &mut ranks,
                        &mut selected,
                    );
                }
                NeighborFilter::Direction { .. } | NeighborFilter::Threshold { .. } => {
                    // lint: allow(hot-panic) — this arm is only reachable
                    // after the filter selection above saw a Some table.
                    let table = ctx.dir_table.expect("checked above");
                    counters.record_dir_selection(degree, table.words_per_code());
                    if matches!(filter, NeighborFilter::Direction { .. }) {
                        // Only the top-n mode pays a min-sort over the
                        // `degree` match counts; threshold mode is a linear
                        // scan already covered by the per-compare cost.
                        // `ceil(log2(degree))` of a graph degree is tiny, so
                        // the f64-to-u64 cast cannot truncate.
                        #[allow(clippy::cast_possible_truncation)]
                        let cmp_rounds = (degree as f64).log2().ceil() as u64;
                        counters.sort_ops += cmp_rounds * degree as u64;
                    }
                    select_neighbors_into(
                        filter,
                        degree,
                        ctx.vectors.row(u as usize),
                        query,
                        Some((table, u)),
                        &mut scratch,
                        &mut rng,
                        &mut ranks,
                        &mut selected,
                    );
                }
            }
            stats.filtered_neighbors += (degree - selected.len()) as u64;
            let row = ctx.graph.neighbors(u);
            cand_ids.extend(selected.iter().map(|&j| row[j]).filter(|&v| visited.insert(v)));
        }

        // Phase 2: one batched gather-distance call for the whole iteration
        // (bitwise identical to per-candidate `l2_squared`), then merge in
        // the historical order. Distances and pushes are sequenced exactly
        // as before, so the counters and the queue evolve identically.
        batch_candidate_distances(
            ctx,
            query,
            qcodes.as_deref(),
            &cand_ids,
            &mut cand_dists,
            counters,
        );
        for (&v, &d) in cand_ids.iter().zip(&cand_dists) {
            stats.visits += 1;
            if let Some(rank) = queue.push_at(d, v) {
                if rank < params.k {
                    inserted_in_window = true;
                }
            }
        }
        if inserted_in_window {
            stalled = 0;
        } else {
            stalled += 1;
            if stalled >= params.patience.max(1) {
                stats.converged = true;
                break;
            }
        }
    }
    if !stats.converged && queue.pop_expansion_targets(1).is_empty() {
        stats.converged = true;
    }

    counters.sort_ops += queue.take_sort_steps();
    counters.hash_probes += visited.take_probes();
    counters.iterations += stats.iterations;

    // Table 1 semantics: a visit is "kept" only if the node is still in the
    // priority buffer at the end; everything else was computed and dropped.
    let kept = queue.len() as u64;
    stats.discarded = stats.visits.saturating_sub(kept);

    // Quantized traversal ends with an exact re-rank of the final candidate
    // window only: code-space distances order the beam but are not L2 values
    // (each dimension is range-normalized by its scale), so the window is
    // re-scored against the full-precision vectors and the true top-k
    // returned. The window is wider than k so a near-neighbor demoted a few
    // ranks by quantization error still survives the cut.
    let hits = if qcodes.is_some() {
        let window = queue.top_k(params.candidates.max(params.k));
        let ids: Vec<u32> = window.iter().map(|&(_, id)| id).collect();
        let mut exact = vec![0.0f32; ids.len()];
        batch_l2_squared(ctx.vectors, &ids, query, &mut exact);
        for _ in &ids {
            counters.record_distance(dim);
        }
        stats.rerank_width = ids.len() as u64;
        let mut rescored: Vec<(f32, u32)> =
            exact.iter().copied().zip(ids.iter().copied()).collect();
        // Distance then id: a total order, so ties resolve deterministically.
        rescored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Same per-insert charge as the priority buffer's bitonic model.
        // `ceil(log2(window))` of a candidate window is tiny, so the
        // f64-to-u64 cast cannot truncate.
        #[allow(clippy::cast_possible_truncation)]
        let rounds = (rescored.len().max(2) as f64).log2().ceil() as u64;
        counters.sort_ops += rounds * rescored.len() as u64;
        rescored.truncate(params.k);
        rescored
    } else {
        queue.top_k(params.k)
    };

    (hits, stats)
}

/// Result of a batch search on one shard.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query top-k hits, ascending by distance.
    pub hits: Vec<Vec<(f32, u32)>>,
    /// Aggregated statistics.
    pub stats: BatchStats,
    /// Aggregated operation counters (including one kernel launch).
    pub counters: CostCounters,
}

/// Searches a batch of queries on one shard in parallel.
///
/// `entries[i]` configures query `i`'s entry candidates; pass a single-entry
/// slice to share one policy across the batch.
///
/// # Panics
///
/// Panics if `entries` is neither length 1 nor `queries.len()`.
pub fn search_batch(
    ctx: &ShardContext<'_>,
    queries: &VectorSet,
    params: &SearchParams,
    entries: &[EntryPolicy],
) -> BatchResult {
    assert!(
        entries.len() == 1 || entries.len() == queries.len(),
        "entries must be shared (len 1) or per-query (len {})",
        queries.len()
    );
    let per_query = pathweaver_util::parallel_map(queries.len(), |q| {
        let mut counters = CostCounters::new();
        let entry = if entries.len() == 1 { &entries[0] } else { &entries[q] };
        let seed = pathweaver_util::seed_from_parts(params.seed, "query", q as u64);
        let (hits, stats) = search_query(ctx, queries.row(q), params, entry, seed, &mut counters);
        (hits, stats, counters)
    });

    let mut result = BatchResult {
        hits: Vec::with_capacity(queries.len()),
        stats: BatchStats::default(),
        counters: CostCounters::new(),
    };
    let obs = pathweaver_obs::enabled();
    for (hits, stats, counters) in per_query {
        if obs {
            record_query_metrics(&stats, &counters);
        }
        result.hits.push(hits);
        result.stats.absorb(&stats);
        result.counters.merge(&counters);
    }
    result.counters.kernel_launches += 1;
    if obs {
        record_batch_metrics(ctx, params, &result);
    }
    result
}

/// Records one query's per-query distributions into the metrics registry.
///
/// Runs on the host aggregation loop, off the parallel per-query hot path;
/// histogram recording is order-independent, so the resulting summaries are
/// deterministic for a deterministic workload.
fn record_query_metrics(stats: &SearchStats, counters: &CostCounters) {
    let r = pathweaver_obs::registry();
    r.histogram("search.query.iterations").record(stats.iterations);
    r.histogram("search.query.visits").record(stats.visits);
    r.histogram("search.query.hash_probes").record(counters.hash_probes);
    if stats.rerank_width > 0 {
        r.histogram("qt.query.rerank_width").record(stats.rerank_width);
    }
}

/// Records batch-level aggregates: query/convergence counts, visited-hash
/// probe totals, and — when DGS is active — the neighbor skip rate that the
/// paper's distance-computation savings hinge on.
fn record_batch_metrics(ctx: &ShardContext<'_>, params: &SearchParams, batch: &BatchResult) {
    let r = pathweaver_obs::registry();
    r.counter("search.queries").add(batch.stats.queries);
    r.counter("search.converged").add(batch.stats.converged);
    r.counter("search.hash.probes").add(batch.counters.hash_probes);
    if params.quantized && batch.counters.quant_dist_calcs > 0 {
        // The compressed-tier ledger: code-space distances computed, exact
        // re-scores paid at the end, and the bytes the tier streamed. The 4×
        // traffic cut versus `record_distance` is visible here directly.
        r.counter("qt.queries").add(batch.stats.queries);
        r.counter("qt.dist_calcs").add(batch.counters.quant_dist_calcs);
        r.counter("qt.rerank.dist_calcs").add(batch.stats.reranked);
        r.counter("qt.vector_bytes")
            .add(batch.counters.quant_dist_calcs * ctx.vectors.dim() as u64);
    }
    if params.dgs.is_some() {
        let considered = batch.counters.nodes_visited * ctx.graph.degree() as u64;
        let skipped = r.counter("search.dgs.neighbors_skipped");
        let total = r.counter("search.dgs.neighbors_considered");
        skipped.add(batch.stats.filtered_neighbors);
        total.add(considered);
        if total.get() > 0 {
            // Cumulative skip rate across every DGS batch so far; derived
            // from the two counters, hence replay-deterministic.
            r.gauge("search.dgs.skip_rate").set(skipped.get() as f64 / total.get() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathweaver_graph::{cagra_build, CagraBuildParams};
    use pathweaver_vector::l2_squared;

    fn world(n: usize, dim: usize) -> (VectorSet, FixedDegreeGraph, DirectionTable) {
        let mut rng = pathweaver_util::small_rng(99);
        let set = VectorSet::from_fn(n, dim, |r, _| {
            (r % 25) as f32 * 0.8 + rand::Rng::gen_range(&mut rng, -0.3f32..0.3)
        });
        let g = cagra_build(&set, &CagraBuildParams::with_degree(16));
        let t = DirectionTable::build(&set, &g);
        (set, g, t)
    }

    fn exact_top1(set: &VectorSet, q: &[f32]) -> u32 {
        let mut best = (f32::INFINITY, 0u32);
        for i in 0..set.len() {
            let d = l2_squared(set.row(i), q);
            if d < best.0 {
                best = (d, u32::try_from(i).expect("test set fits u32"));
            }
        }
        best.1
    }

    #[test]
    fn finds_indexed_vector_exactly() {
        let (set, g, _) = world(600, 12);
        let ctx = ShardContext::new(&set, &g, None);
        let params = SearchParams::default();
        let mut c = CostCounters::new();
        let (hits, stats) = search_query(
            &ctx,
            set.row(321),
            &params,
            &EntryPolicy::Random { count: 32 },
            7,
            &mut c,
        );
        assert_eq!(hits[0].1, 321);
        assert_eq!(hits[0].0, 0.0);
        assert!(stats.visits > 0);
        assert!(c.dist_calcs == stats.visits);
    }

    #[test]
    fn seeded_entry_converges_faster_than_random() {
        let (set, g, _) = world(800, 12);
        let ctx = ShardContext::new(&set, &g, None);
        let params = SearchParams::default();
        let q = set.row(555).to_vec();
        let near = exact_top1(&set, &q);
        let mut c1 = CostCounters::new();
        let (_, s_rand) =
            search_query(&ctx, &q, &params, &EntryPolicy::Random { count: 64 }, 1, &mut c1);
        let mut c2 = CostCounters::new();
        let (_, s_seed) = search_query(
            &ctx,
            &q,
            &params,
            &EntryPolicy::Seeded { seeds: vec![near], extra_random: 0 },
            1,
            &mut c2,
        );
        assert!(
            s_seed.visits < s_rand.visits,
            "seeded {} should visit fewer than random {}",
            s_seed.visits,
            s_rand.visits
        );
    }

    #[test]
    fn dgs_reduces_distance_calcs() {
        // DGS trades per-iteration distance work for (slightly) more
        // iterations; its win shows at a matched iteration budget, which is
        // also how the paper's QPS–recall sweeps operate. A uniform world
        // keeps adjacency overlap (and hence visited-dedup) low, so the
        // distance count tracks the keep ratio.
        let mut rng = pathweaver_util::small_rng(4242);
        let set = VectorSet::from_fn(2000, 32, |_, _| rand::Rng::gen_range(&mut rng, -1.0f32..1.0));
        let g = cagra_build(&set, &CagraBuildParams::with_degree(16));
        let t = DirectionTable::build(&set, &g);
        let ctx = ShardContext::new(&set, &g, Some(&t));
        // A budget low enough that neither variant hits the no-new-entries
        // stop, so both run the same number of iterations.
        let base = SearchParams { max_iterations: 8, ..Default::default() };
        let dgs = SearchParams {
            dgs: Some(crate::params::DgsParams {
                keep_ratio: 0.5,
                cooldown_ratio: 0.3,
                threshold_mode: false,
            }),
            ..base
        };
        let q = set.row(100).to_vec();
        let mut c_base = CostCounters::new();
        let _ = search_query(&ctx, &q, &base, &EntryPolicy::Random { count: 64 }, 3, &mut c_base);
        let mut c_dgs = CostCounters::new();
        let (hits, stats) =
            search_query(&ctx, &q, &dgs, &EntryPolicy::Random { count: 64 }, 3, &mut c_dgs);
        assert!(
            c_dgs.dist_calcs < c_base.dist_calcs,
            "{} vs {}",
            c_dgs.dist_calcs,
            c_base.dist_calcs
        );
        assert!(stats.filtered_neighbors > 0);
        assert!(c_dgs.dir_table_bytes > 0);
        // Accuracy: DGS should still land on the exact vector.
        assert_eq!(hits[0].1, 100);
    }

    #[test]
    fn discarded_visits_dominate() {
        // Table 1: the overwhelming majority of visited nodes never survive
        // to the final buffer.
        let (set, g, _) = world(1000, 16);
        let ctx = ShardContext::new(&set, &g, None);
        // A narrow final buffer relative to the exploration volume, as in
        // real deployments (Table 1 measures >80 % discarded).
        let params = SearchParams { beam: 32, candidates: 64, ..Default::default() };
        let mut c = CostCounters::new();
        let (_, stats) = search_query(
            &ctx,
            set.row(42),
            &params,
            &EntryPolicy::Random { count: 64 },
            11,
            &mut c,
        );
        assert!(stats.discard_ratio() > 0.5, "ratio {}", stats.discard_ratio());
    }

    #[test]
    fn batch_driver_matches_single_queries() {
        let (set, g, _) = world(400, 8);
        let ctx = ShardContext::new(&set, &g, None);
        let params = SearchParams { k: 5, ..Default::default() };
        let queries = set.gather(&[10, 20, 30]);
        let batch = search_batch(&ctx, &queries, &params, &[EntryPolicy::Random { count: 32 }]);
        assert_eq!(batch.hits.len(), 3);
        assert_eq!(batch.stats.queries, 3);
        assert_eq!(batch.counters.kernel_launches, 1);
        for (i, &orig) in [10u32, 20, 30].iter().enumerate() {
            assert_eq!(batch.hits[i][0].1, orig, "query {i}");
        }
    }

    /// Serializes tests that toggle the process-global obs flag.
    fn obs_guard() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
        LOCK.lock()
    }

    #[test]
    fn dgs_metrics_recorded_when_enabled() {
        let _g = obs_guard();
        let mut rng = pathweaver_util::small_rng(777);
        let set = VectorSet::from_fn(1200, 24, |_, _| rand::Rng::gen_range(&mut rng, -1.0f32..1.0));
        let g = cagra_build(&set, &CagraBuildParams::with_degree(16));
        let t = DirectionTable::build(&set, &g);
        let ctx = ShardContext::new(&set, &g, Some(&t));
        let params =
            SearchParams { dgs: Some(crate::params::DgsParams::default()), ..Default::default() };
        let queries = set.gather(&[5, 50, 500]);
        pathweaver_obs::set_enabled(true);
        let _ = search_batch(&ctx, &queries, &params, &[EntryPolicy::Random { count: 32 }]);
        pathweaver_obs::set_enabled(false);
        let snap = pathweaver_obs::global_snapshot();
        assert!(snap.counters["search.queries"] >= 3);
        assert!(snap.counters["search.dgs.neighbors_skipped"] > 0);
        assert!(snap.counters["search.hash.probes"] > 0);
        let rate = snap.gauges["search.dgs.skip_rate"];
        assert!(rate > 0.0 && rate < 1.0, "skip rate {rate}");
        assert!(snap.histograms["search.query.iterations"].count >= 3);
        assert!(snap.histograms["search.query.visits"].p50 > 0);
    }

    #[test]
    fn metrics_do_not_perturb_search() {
        let _g = obs_guard();
        let (set, g, _) = world(500, 12);
        let ctx = ShardContext::new(&set, &g, None);
        let params = SearchParams::default();
        let queries = set.gather(&[7, 70, 170]);
        let entries = [EntryPolicy::Random { count: 32 }];
        let off = search_batch(&ctx, &queries, &params, &entries);
        pathweaver_obs::set_enabled(true);
        let on = search_batch(&ctx, &queries, &params, &entries);
        pathweaver_obs::set_enabled(false);
        assert_eq!(off.hits, on.hits, "hits changed with metrics enabled");
        assert_eq!(off.counters, on.counters, "simulated counters changed with metrics enabled");
    }

    #[test]
    fn max_iterations_caps_work() {
        let (set, g, _) = world(800, 8);
        let ctx = ShardContext::new(&set, &g, None);
        let capped = SearchParams { max_iterations: 2, ..Default::default() };
        let mut c = CostCounters::new();
        let (_, stats) =
            search_query(&ctx, set.row(0), &capped, &EntryPolicy::Random { count: 16 }, 5, &mut c);
        assert!(stats.iterations <= 2);
    }

    #[test]
    fn per_query_entries_respected() {
        let (set, g, _) = world(300, 8);
        let ctx = ShardContext::new(&set, &g, None);
        let params = SearchParams { k: 1, ..Default::default() };
        let queries = set.gather(&[5, 250]);
        let entries = vec![
            EntryPolicy::Seeded { seeds: vec![5], extra_random: 0 },
            EntryPolicy::Seeded { seeds: vec![250], extra_random: 0 },
        ];
        let batch = search_batch(&ctx, &queries, &params, &entries);
        assert_eq!(batch.hits[0][0].1, 5);
        assert_eq!(batch.hits[1][0].1, 250);
    }

    #[test]
    #[should_panic(expected = "direction-guided selection needs a direction table")]
    fn dgs_without_table_panics() {
        let (set, g, _) = world(100, 8);
        let ctx = ShardContext::new(&set, &g, None);
        let params =
            SearchParams { dgs: Some(crate::params::DgsParams::default()), ..Default::default() };
        let mut c = CostCounters::new();
        let _ =
            search_query(&ctx, set.row(0), &params, &EntryPolicy::Random { count: 8 }, 1, &mut c);
    }

    #[test]
    fn quantized_traversal_finds_indexed_vector_with_exact_distances() {
        let (set, g, _) = world(600, 12);
        let qs = QuantizedSet::quantize(&set);
        let ctx = ShardContext::new(&set, &g, None).with_quantized(Some(&qs));
        let params = SearchParams { quantized: true, ..Default::default() };
        let mut c = CostCounters::new();
        let (hits, stats) = search_query(
            &ctx,
            set.row(321),
            &params,
            &EntryPolicy::Random { count: 32 },
            7,
            &mut c,
        );
        assert_eq!(hits[0].1, 321);
        assert_eq!(hits[0].0, 0.0);
        // Traversal ran on codes; only the re-rank window paid exact work.
        assert!(c.quant_dist_calcs >= stats.visits);
        assert_eq!(c.dist_calcs, stats.rerank_width);
        assert!(stats.rerank_width >= params.k as u64);
        // Every returned distance is the true L2, not a code-space value.
        let q = set.row(321);
        for &(d, id) in &hits {
            assert_eq!(d, l2_squared(set.row(id as usize), q), "hit {id}");
        }
        // Returned ascending.
        for w in hits.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn quantized_without_payload_falls_back_to_exact() {
        let (set, g, _) = world(400, 8);
        let ctx = ShardContext::new(&set, &g, None);
        let exact = SearchParams::default();
        let quant = SearchParams { quantized: true, ..exact };
        let mut c1 = CostCounters::new();
        let (h1, _) =
            search_query(&ctx, set.row(9), &exact, &EntryPolicy::Random { count: 32 }, 3, &mut c1);
        let mut c2 = CostCounters::new();
        let (h2, _) =
            search_query(&ctx, set.row(9), &quant, &EntryPolicy::Random { count: 32 }, 3, &mut c2);
        assert_eq!(h1, h2, "fallback must be bitwise-identical to exact");
        assert_eq!(c1, c2);
        assert_eq!(c2.quant_dist_calcs, 0);
    }

    #[test]
    fn quantized_traversal_streams_fewer_vector_bytes() {
        // A long enough traversal that the fixed-size exact re-rank window
        // stops dominating the byte tally (in real profiles the traversal is
        // thousands of visits; here patience keeps the beam exploring).
        let (set, g, _) = world(4000, 64);
        let qs = QuantizedSet::quantize(&set);
        let ctx = ShardContext::new(&set, &g, None).with_quantized(Some(&qs));
        let exact = SearchParams { patience: 8, ..Default::default() };
        let quant = SearchParams { quantized: true, ..exact };
        let q = set.row(70).to_vec();
        let mut ce = CostCounters::new();
        let _ = search_query(&ctx, &q, &exact, &EntryPolicy::Random { count: 64 }, 5, &mut ce);
        let mut cq = CostCounters::new();
        let _ = search_query(&ctx, &q, &quant, &EntryPolicy::Random { count: 64 }, 5, &mut cq);
        assert!(
            cq.vector_bytes < ce.vector_bytes / 2,
            "quantized {} vs exact {}",
            cq.vector_bytes,
            ce.vector_bytes
        );
    }

    #[test]
    fn qt_metrics_recorded_when_enabled() {
        let _g = obs_guard();
        let (set, g, _) = world(500, 12);
        let qs = QuantizedSet::quantize(&set);
        let ctx = ShardContext::new(&set, &g, None).with_quantized(Some(&qs));
        let params = SearchParams { quantized: true, ..Default::default() };
        let queries = set.gather(&[7, 70, 170]);
        pathweaver_obs::set_enabled(true);
        let _ = search_batch(&ctx, &queries, &params, &[EntryPolicy::Random { count: 32 }]);
        pathweaver_obs::set_enabled(false);
        let snap = pathweaver_obs::global_snapshot();
        assert!(snap.counters["qt.queries"] >= 3);
        assert!(snap.counters["qt.dist_calcs"] > 0);
        assert!(snap.counters["qt.rerank.dist_calcs"] > 0);
        assert!(snap.counters["qt.vector_bytes"] > 0);
        assert!(snap.histograms["qt.query.rerank_width"].count >= 3);
    }

    #[test]
    #[should_panic(expected = "quantized/vector size mismatch")]
    fn mismatched_quantized_payload_rejected() {
        let (set, g, _) = world(100, 8);
        let small = set.gather(&[0, 1, 2]);
        let qs = QuantizedSet::quantize(&small);
        let _ = ShardContext::new(&set, &g, None).with_quantized(Some(&qs));
    }
}
