//! Search parameters.

use serde::{Deserialize, Serialize};

/// Configuration of direction-guided selection (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DgsParams {
    /// Fraction of each adjacency row whose exact distance is still
    /// computed; the paper's "discarded neighbor ratio" is `1 − keep_ratio`.
    pub keep_ratio: f64,
    /// Fraction of `max_iterations` at the *end* of the search during which
    /// filtering is disabled (the cool-down phase; paper default 0.3).
    pub cooldown_ratio: f64,
    /// Use similarity-threshold pruning (paper §6.3's discussed variant)
    /// instead of fixed top-n: keep every neighbor matching at least
    /// `keep_ratio × dim` direction bits. Variable keep count per node.
    pub threshold_mode: bool,
}

impl Default for DgsParams {
    fn default() -> Self {
        Self { keep_ratio: 0.5, cooldown_ratio: 0.3, threshold_mode: false }
    }
}

/// Parameters of one graph search (paper §2.2 notation in brackets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Number of results returned (`k`).
    pub k: usize,
    /// Priority-queue width (`l`, `k ≤ l`); CAGRA calls this `itopk`.
    pub beam: usize,
    /// Number of initial candidates (`m`); random entries or forwarded
    /// seeds fill this buffer.
    pub candidates: usize,
    /// Nodes expanded per iteration (`r`, `r ≤ l`).
    pub expand: usize,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// log2 of the visited-hash capacity.
    pub hash_bits: u32,
    /// Optional neighbor filtering (None = exact CAGRA behaviour).
    pub dgs: Option<DgsParams>,
    /// Use random instead of direction-guided discarding (the Fig 15/16
    /// control); only meaningful when `dgs` is set.
    pub random_discard: bool,
    /// Consecutive insertion-free iterations tolerated before declaring
    /// convergence ("the priority queue receives no new entries", §2.2).
    /// Small values terminate seeded searches quickly; larger values let a
    /// temporarily stalled frontier recover.
    pub patience: usize,
    /// Traverse on the int8 quantized tier: beam navigation computes
    /// code-space distances (1 byte/dim streamed instead of 4), then the
    /// final candidate window is re-scored with exact L2 before returning.
    /// Ignored (exact traversal) on shards without a quantized payload.
    pub quantized: bool,
    /// RNG seed for entry sampling.
    pub seed: u64,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            k: 10,
            beam: 64,
            candidates: 64,
            expand: 4,
            max_iterations: 48,
            hash_bits: 13,
            dgs: None,
            random_discard: false,
            patience: 2,
            quantized: false,
            seed: 0x5ea7c4,
        }
    }
}

impl SearchParams {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when `k > beam`, `expand == 0`, `expand > beam`, `beam == 0`,
    /// or a DGS keep/cool-down ratio is outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(self.beam > 0, "beam must be positive");
        assert!(self.k > 0 && self.k <= self.beam, "need 0 < k <= beam");
        assert!(self.expand > 0 && self.expand <= self.beam, "need 0 < expand <= beam");
        assert!(self.max_iterations > 0, "need at least one iteration");
        assert!(self.hash_bits >= 4 && self.hash_bits <= 28, "hash_bits out of range");
        if let Some(d) = self.dgs {
            assert!(d.keep_ratio > 0.0 && d.keep_ratio <= 1.0, "keep_ratio out of (0,1]");
            assert!((0.0..=1.0).contains(&d.cooldown_ratio), "cooldown_ratio out of [0,1]");
        }
    }

    /// First iteration index (0-based) at which the DGS cool-down starts;
    /// `max_iterations` when DGS is disabled (never cools down because it
    /// never filters).
    // `cooldown_ratio` is validated to [0, 1], so the product is bounded by
    // `max_iterations` and the cast back to usize cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    pub fn cooldown_start(&self) -> usize {
        match self.dgs {
            None => self.max_iterations,
            Some(d) => ((self.max_iterations as f64) * (1.0 - d.cooldown_ratio)).round() as usize,
        }
    }

    /// Number of neighbors kept per adjacency row of `degree` under DGS; at
    /// least 1.
    // `keep_ratio` is validated to [0, 1], so the product is bounded by
    // `degree` and the cast back to usize cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    pub fn kept_neighbors(&self, degree: usize) -> usize {
        match self.dgs {
            None => degree,
            Some(d) => ((degree as f64 * d.keep_ratio).round() as usize).clamp(1, degree),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SearchParams::default().validate();
    }

    #[test]
    fn cooldown_boundaries() {
        let mut p = SearchParams { max_iterations: 20, ..Default::default() };
        assert_eq!(p.cooldown_start(), 20); // No DGS: never filters.
        p.dgs = Some(DgsParams { keep_ratio: 0.5, cooldown_ratio: 0.3, threshold_mode: false });
        assert_eq!(p.cooldown_start(), 14);
        p.dgs = Some(DgsParams { keep_ratio: 0.5, cooldown_ratio: 1.0, threshold_mode: false });
        assert_eq!(p.cooldown_start(), 0); // Always cool: filter never active.
        p.dgs = Some(DgsParams { keep_ratio: 0.5, cooldown_ratio: 0.0, threshold_mode: false });
        assert_eq!(p.cooldown_start(), 20);
    }

    #[test]
    fn kept_neighbors_rounding() {
        let p = SearchParams {
            dgs: Some(DgsParams { keep_ratio: 0.5, cooldown_ratio: 0.3, threshold_mode: false }),
            ..Default::default()
        };
        assert_eq!(p.kept_neighbors(32), 16);
        assert_eq!(p.kept_neighbors(1), 1);
        let tiny = SearchParams {
            dgs: Some(DgsParams { keep_ratio: 0.01, cooldown_ratio: 0.3, threshold_mode: false }),
            ..Default::default()
        };
        assert_eq!(tiny.kept_neighbors(32), 1);
        let none = SearchParams::default();
        assert_eq!(none.kept_neighbors(32), 32);
    }

    #[test]
    #[should_panic(expected = "k <= beam")]
    fn k_over_beam_rejected() {
        SearchParams { k: 100, beam: 10, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "keep_ratio")]
    fn zero_keep_ratio_rejected() {
        SearchParams {
            dgs: Some(DgsParams { keep_ratio: 0.0, cooldown_ratio: 0.3, threshold_mode: false }),
            ..Default::default()
        }
        .validate();
    }
}
