//! The PathWeaver search kernel.
//!
//! This crate reproduces the CAGRA-style GPU search kernel (paper §2.2, §4)
//! as instrumented CPU code: the algorithm is identical — a fixed-size sorted
//! priority queue, a candidate buffer, a forgettable visited-hash, and
//! iterative top-`r` expansion — and every operation the CUDA kernel would
//! perform is tallied into [`pathweaver_gpusim::CostCounters`] for the
//! simulated-time model.
//!
//! Modules:
//!
//! - [`params`]: search parameters (`k`, beam width `l`, expansion width `r`,
//!   iteration caps, entry policies) and the neighbor-filter configuration.
//! - [`queue`]: the bounded sorted priority buffer (the paper's `p`).
//! - [`hash`]: the forgettable visited-hash table (CAGRA §4).
//! - [`dgs`]: direction-guided selection — ranking neighbors by sign-bit
//!   match and keeping the top-n (paper §3.3) — plus the random-discard
//!   control used in Fig 15/16.
//! - [`kernel`]: the per-query search loop and the batch driver.
//! - [`stats`]: per-query and batch statistics (iterations, visits,
//!   discarded visits — Table 1, Fig 3, Fig 13).

#![forbid(unsafe_code)]
#![deny(clippy::cast_possible_truncation)]

pub mod dgs;
pub mod hash;
pub mod kernel;
pub mod params;
pub mod queue;
pub mod stats;

pub use dgs::NeighborFilter;
pub use hash::VisitedHash;
pub use kernel::{search_batch, search_query, BatchResult, EntryPolicy, ShardContext};
pub use params::{DgsParams, SearchParams};
pub use queue::PriorityBuffer;
pub use stats::{BatchStats, SearchStats};
