//! Simulated device specifications.

use serde::Serialize;

/// Performance envelope of one simulated GPU.
///
/// Only the quantities the roofline cost model consumes are modeled; SM
/// counts and warp scheduling are deliberately abstracted away because the
/// kernel under study is memory-bound (paper Fig 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Device memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Peak f32 throughput in FLOP/second.
    pub flops: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Fixed kernel launch overhead in seconds.
    pub kernel_launch_s: f64,
    /// Throughput-amortized cost of one hash-table probe in seconds. These
    /// per-op costs are tiny because tens of thousands of threads execute
    /// them concurrently; the values are calibrated so the baseline kernel's
    /// L2 share lands at the ~95 % the paper measures (Fig 2).
    pub hash_probe_s: f64,
    /// Throughput-amortized cost of one sort network step in seconds.
    pub sort_step_s: f64,
    /// Throughput-amortized cost of one random-number generation in seconds.
    pub rng_s: f64,
    /// Effective fraction of peak bandwidth a gather-style access pattern
    /// achieves (graph ANNS reads are semi-random rows).
    pub gather_efficiency: f64,
}

impl DeviceSpec {
    /// NVIDIA RTX A6000: 768 GB/s GDDR6, ~38.7 TFLOP/s fp32, 48 GiB.
    pub const fn rtx_a6000() -> Self {
        Self {
            name: "rtx-a6000",
            mem_bandwidth: 768.0e9,
            flops: 38.7e12,
            mem_capacity: 48 * 1024 * 1024 * 1024,
            kernel_launch_s: 5.0e-6,
            hash_probe_s: 5.0e-12,
            sort_step_s: 5.0e-12,
            rng_s: 5.0e-12,
            gather_efficiency: 0.55,
        }
    }

    /// A smaller PCIe-class device, for capacity-pressure experiments.
    pub const fn rtx_3080() -> Self {
        Self {
            name: "rtx-3080",
            mem_bandwidth: 760.0e9,
            flops: 29.8e12,
            mem_capacity: 10 * 1024 * 1024 * 1024,
            kernel_launch_s: 5.0e-6,
            hash_probe_s: 6.0e-12,
            sort_step_s: 6.0e-12,
            rng_s: 6.0e-12,
            gather_efficiency: 0.55,
        }
    }

    /// Time to stream `bytes` through device memory with gather efficiency.
    pub fn stream_time(&self, bytes: f64) -> f64 {
        bytes / (self.mem_bandwidth * self.gather_efficiency)
    }

    /// Time to execute `flops` floating-point operations at peak.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6000_is_memory_rich() {
        let d = DeviceSpec::rtx_a6000();
        assert_eq!(d.mem_capacity, 48 * 1024 * 1024 * 1024);
        assert!(d.mem_bandwidth > 7e11);
    }

    #[test]
    fn stream_time_scales_linearly() {
        let d = DeviceSpec::rtx_a6000();
        let t1 = d.stream_time(1e9);
        let t2 = d.stream_time(2e9);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // 1 GB at 768 GB/s × 0.55 efficiency ≈ 2.37 ms.
        assert!((t1 - 1e9 / (768.0e9 * 0.55)).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_regime_for_ann_kernels() {
        // For a 96-d f32 distance: 384 bytes read vs ~288 FLOPs. The stream
        // time must dominate compute time — the regime the paper reports.
        let d = DeviceSpec::rtx_a6000();
        let stream = d.stream_time(384.0);
        let compute = d.compute_time(288.0);
        assert!(stream > compute * 10.0, "model not memory-bound: {stream} vs {compute}");
    }
}
