//! Pipelined ring executor.
//!
//! One OS thread per simulated device, connected in a ring — the concurrency
//! skeleton of pipelining-based path extension (paper §3.1). Each device owns
//! a work queue; a chunk enters the ring on its origin device and, after
//! every stage, hops to the ring successor's queue. The *simulated* time of
//! each stage comes from the [`StageRecord`]s the caller's stage function
//! produces; the OS-level parallelism only provides real concurrency for the
//! computation itself.
//!
//! Two frontends share the same device-worker loop:
//!
//! - [`run_ring_stream`] spawns scoped workers for one batch and joins them
//!   before returning — the one-shot mode `search_pipelined` uses, able to
//!   borrow non-`'static` state.
//! - [`RingExecutor`] keeps the device threads alive across submissions and
//!   accepts new batches while earlier ones are still circulating, so stage
//!   `s` of batch `b` on device `d` overlaps with stage `s` of batch `b + 1`
//!   on device `d - 1` — the paper's inter-batch pipelining, and the engine
//!   under the serving layer.
//!
//! Device queues are unbounded: admission control (and therefore
//! backpressure) belongs to the serving layer above, and a bounded ring edge
//! could deadlock once batches stop moving in lock-step. In-flight work is
//! tracked by a counter so [`RingExecutor`]'s drop can drain before stopping
//! the threads.

use crate::timeline::{PipelineTimeline, StageRecord};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A payload circulating the ring: the chunk's origin device plus the
/// caller-defined state (queries + current best hits).
#[derive(Debug, Clone, PartialEq)]
pub struct RingMessage<T> {
    /// Device on which this chunk entered the pipeline.
    pub origin_chunk: usize,
    /// Caller-defined state.
    pub payload: T,
}

/// One unit of device work: a chunk at a specific stage of a specific batch,
/// plus the channels its records and final state report back on.
struct Task<T> {
    batch: u64,
    stage: usize,
    msg: RingMessage<T>,
    rec_tx: Sender<StageRecord>,
    fin_tx: Sender<RingMessage<T>>,
}

/// What a device queue carries.
enum DeviceMsg<T> {
    Task(Task<T>),
    Stop,
}

/// Count of chunks somewhere between submission and final delivery; drop
/// drains on it before stopping the device threads, so a `Stop` can never
/// overtake a chunk that is still hopping the ring.
#[derive(Default)]
struct Inflight {
    count: Mutex<usize>,
    zero: Condvar,
}

impl Inflight {
    fn add(&self, n: usize) {
        *self.count.lock() += n;
    }

    fn finish_one(&self) {
        let mut c = self.count.lock();
        *c -= 1;
        if *c == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut c = self.count.lock();
        while *c > 0 {
            self.zero.wait(&mut c);
        }
    }
}

/// The device loop both frontends run: take a task, execute its stage, stamp
/// and emit the record, then forward to the ring successor or deliver.
///
/// Sends to `rec_tx`/`fin_tx` ignore disconnects (a caller may drop its
/// [`BatchHandle`] without waiting); the inflight counter is decremented
/// exactly once per chunk, at final delivery.
fn device_worker<T, F>(
    device: usize,
    num_stages: usize,
    rx: &Receiver<DeviceMsg<T>>,
    next_tx: &Sender<DeviceMsg<T>>,
    inflight: &Inflight,
    stage_fn: &F,
) where
    F: Fn(usize, usize, &mut RingMessage<T>) -> Option<StageRecord>,
{
    while let Ok(msg) = rx.recv() {
        let mut task = match msg {
            DeviceMsg::Stop => break,
            DeviceMsg::Task(t) => t,
        };
        if let Some(mut record) = stage_fn(device, task.stage, &mut task.msg) {
            record.batch = task.batch;
            let _ = task.rec_tx.send(record);
        }
        task.stage += 1;
        if task.stage < num_stages {
            next_tx.send(DeviceMsg::Task(task)).expect("ring successor alive");
        } else {
            let _ = task.fin_tx.send(task.msg);
            inflight.finish_one();
        }
    }
}

/// Collects `expected` finished chunks (sorted by origin) and the batch's
/// records (sorted by `(stage, origin_chunk)`) into a timeline.
///
/// Every record of a chunk is sent before that chunk's final delivery on the
/// same worker chain (each hop is a channel send/recv pair, which orders the
/// sends), so once all finals have arrived the record drain is complete.
fn collect_batch<T>(
    expected: usize,
    fin_rx: &Receiver<RingMessage<T>>,
    rec_rx: &Receiver<StageRecord>,
) -> (Vec<RingMessage<T>>, PipelineTimeline) {
    let mut out = Vec::with_capacity(expected);
    for _ in 0..expected {
        out.push(fin_rx.recv().expect("executor delivers every chunk"));
    }
    out.sort_by_key(|m| m.origin_chunk);
    let mut records = Vec::new();
    while let Some(r) = rec_rx.try_recv() {
        records.push(r);
    }
    records.sort_by_key(|r| (r.batch, r.stage, r.origin_chunk, r.device));
    let mut timeline = PipelineTimeline::new();
    for r in records {
        timeline.push(r);
    }
    (out, timeline)
}

/// Runs one batch of `chunks` through an `num_stages`-stage ring of
/// `num_devices` scoped device workers and joins them before returning.
///
/// `chunks` pairs each chunk's origin index with its payload; the chunk
/// enters the ring on device `origin % num_devices` and hops to the ring
/// successor after every stage. Origins need not cover every device — empty
/// chunks are simply not submitted. `stage_fn(device, stage, msg)` returns
/// `Some(record)` for work performed or `None` for a stage that should leave
/// no trace in the timeline; records are stamped with `batch`.
///
/// Returns the final messages (sorted by origin chunk) and the timeline
/// (records sorted by `(stage, origin_chunk)`).
///
/// # Panics
///
/// Panics if `num_devices == 0`, `num_stages == 0`, or `chunks` is empty.
/// Panics raised inside `stage_fn` propagate.
pub fn run_ring_stream<T, F>(
    num_devices: usize,
    num_stages: usize,
    batch: u64,
    chunks: Vec<(usize, T)>,
    stage_fn: F,
) -> (Vec<RingMessage<T>>, PipelineTimeline)
where
    T: Send,
    F: Fn(usize, usize, &mut RingMessage<T>) -> Option<StageRecord> + Sync,
{
    assert!(num_devices > 0, "need at least one device");
    assert!(num_stages > 0, "need at least one stage");
    assert!(!chunks.is_empty(), "need at least one chunk");

    let (txs, rxs): (Vec<_>, Vec<_>) =
        (0..num_devices).map(|_| channel::unbounded::<DeviceMsg<T>>()).unzip();
    let (rec_tx, rec_rx) = channel::unbounded::<StageRecord>();
    let (fin_tx, fin_rx) = channel::unbounded::<RingMessage<T>>();
    let inflight = Inflight::default();
    let expected = chunks.len();
    inflight.add(expected);

    std::thread::scope(|scope| {
        let stage_fn = &stage_fn;
        let inflight = &inflight;
        let mut rxs = rxs.into_iter().map(Some).collect::<Vec<_>>();
        for (d, rx_slot) in rxs.iter_mut().enumerate() {
            let rx = rx_slot.take().expect("rx taken once");
            let next_tx = txs[(d + 1) % num_devices].clone();
            scope.spawn(move || device_worker(d, num_stages, &rx, &next_tx, inflight, stage_fn));
        }
        for (origin, payload) in chunks {
            let entry = origin % num_devices;
            txs[entry]
                .send(DeviceMsg::Task(Task {
                    batch,
                    stage: 0,
                    msg: RingMessage { origin_chunk: origin, payload },
                    rec_tx: rec_tx.clone(),
                    fin_tx: fin_tx.clone(),
                }))
                .expect("device thread alive");
        }
        inflight.wait_zero();
        for tx in &txs {
            tx.send(DeviceMsg::Stop).expect("device thread alive");
        }
    });
    collect_batch(expected, &fin_rx, &rec_rx)
}

/// Runs an `num_stages`-stage ring pipeline over `num_devices` devices, one
/// chunk starting on each device — the one-shot compatibility wrapper over
/// [`run_ring_stream`].
///
/// # Panics
///
/// Panics if `initial.len() != num_devices`, if `num_devices == 0`, or if
/// `num_stages == 0`. Panics raised inside `stage_fn` propagate.
pub fn run_ring_pipeline<T, F>(
    num_devices: usize,
    num_stages: usize,
    initial: Vec<T>,
    stage_fn: F,
) -> (Vec<RingMessage<T>>, PipelineTimeline)
where
    T: Send,
    F: Fn(usize, usize, &mut RingMessage<T>) -> StageRecord + Sync,
{
    assert_eq!(initial.len(), num_devices, "one initial chunk per device");
    let chunks: Vec<(usize, T)> = initial.into_iter().enumerate().collect();
    run_ring_stream(num_devices, num_stages, 0, chunks, |d, s, m| Some(stage_fn(d, s, m)))
}

/// Shared state between a [`RingExecutor`] and its device threads.
struct RingShared<T> {
    txs: Vec<Sender<DeviceMsg<T>>>,
    inflight: Arc<Inflight>,
    num_devices: usize,
}

/// A persistent ring of device threads that keeps multiple batches in
/// flight.
///
/// Unlike [`run_ring_stream`], the device threads outlive any single batch:
/// [`submit`](Self::submit) enqueues a batch's chunks and returns a
/// [`BatchHandle`] immediately, so while batch `b`'s chunks are on devices
/// `d, d+1, …`, batch `b+1`'s chunks already occupy the devices behind them.
/// Dropping the executor drains every in-flight chunk, then stops and joins
/// the threads.
pub struct RingExecutor<T: Send + 'static> {
    shared: RingShared<T>,
    threads: Vec<std::thread::JoinHandle<()>>,
    batch_seq: AtomicU64,
}

impl<T: Send + 'static> RingExecutor<T> {
    /// Spawns `num_devices` device threads running `stage_fn` over
    /// `num_stages`-stage batches.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0` or `num_stages == 0`.
    pub fn new<F>(num_devices: usize, num_stages: usize, stage_fn: F) -> Self
    where
        F: Fn(usize, usize, &mut RingMessage<T>) -> Option<StageRecord> + Send + Sync + 'static,
    {
        assert!(num_devices > 0, "need at least one device");
        assert!(num_stages > 0, "need at least one stage");
        let (txs, rxs): (Vec<_>, Vec<_>) =
            (0..num_devices).map(|_| channel::unbounded::<DeviceMsg<T>>()).unzip();
        let inflight = Arc::new(Inflight::default());
        let stage_fn = Arc::new(stage_fn);
        let threads = rxs
            .into_iter()
            .enumerate()
            .map(|(d, rx)| {
                let next_tx = txs[(d + 1) % num_devices].clone();
                let inflight = Arc::clone(&inflight);
                let stage_fn = Arc::clone(&stage_fn);
                std::thread::Builder::new()
                    .name(format!("pathweaver-device-{d}"))
                    .spawn(move || {
                        device_worker(d, num_stages, &rx, &next_tx, &inflight, &*stage_fn);
                    })
                    .expect("spawn device thread")
            })
            .collect();
        Self {
            shared: RingShared { txs, inflight, num_devices },
            threads,
            batch_seq: AtomicU64::new(0),
        }
    }

    /// Number of device threads.
    pub fn num_devices(&self) -> usize {
        self.shared.num_devices
    }

    /// Submits one batch of `chunks` and returns without waiting; each chunk
    /// enters the ring on device `origin % num_devices`.
    ///
    /// The returned handle collects the batch's outputs; its records carry
    /// this submission's sequence number in [`StageRecord::batch`].
    ///
    /// # Panics
    ///
    /// Panics if `chunks` is empty.
    pub fn submit(&self, chunks: Vec<(usize, T)>) -> BatchHandle<T> {
        assert!(!chunks.is_empty(), "need at least one chunk");
        // Relaxed: the sequence only needs per-submission uniqueness; all
        // data the batch touches flows through the channels, which order it.
        let batch = self.batch_seq.fetch_add(1, Ordering::Relaxed);
        let (rec_tx, rec_rx) = channel::unbounded::<StageRecord>();
        let (fin_tx, fin_rx) = channel::unbounded::<RingMessage<T>>();
        let expected = chunks.len();
        self.shared.inflight.add(expected);
        for (origin, payload) in chunks {
            let entry = origin % self.shared.num_devices;
            self.shared.txs[entry]
                .send(DeviceMsg::Task(Task {
                    batch,
                    stage: 0,
                    msg: RingMessage { origin_chunk: origin, payload },
                    rec_tx: rec_tx.clone(),
                    fin_tx: fin_tx.clone(),
                }))
                .expect("device thread alive");
        }
        BatchHandle { batch, expected, fin_rx, rec_rx }
    }
}

impl<T: Send + 'static> Drop for RingExecutor<T> {
    fn drop(&mut self) {
        // Drain first: a Stop enqueued while chunks still hop the ring could
        // arrive at a device before a chunk forwarded to it later.
        self.shared.inflight.wait_zero();
        for tx in &self.shared.txs {
            let _ = tx.send(DeviceMsg::Stop);
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Pending results of one submitted batch.
pub struct BatchHandle<T> {
    batch: u64,
    expected: usize,
    fin_rx: Receiver<RingMessage<T>>,
    rec_rx: Receiver<StageRecord>,
}

impl<T> BatchHandle<T> {
    /// The batch's submission sequence number (stamped into its records).
    pub fn batch_id(&self) -> u64 {
        self.batch
    }

    /// Blocks until every chunk of the batch has completed all stages;
    /// returns the final messages (sorted by origin chunk) and the batch's
    /// timeline (records sorted by `(stage, origin_chunk)`).
    pub fn wait(self) -> (Vec<RingMessage<T>>, PipelineTimeline) {
        collect_batch(self.expected, &self.fin_rx, &self.rec_rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TimeBreakdown;
    use crate::counters::CostCounters;

    fn record(device: usize, stage: usize, origin: usize) -> StageRecord {
        StageRecord {
            device,
            stage,
            origin_chunk: origin,
            batch: 0,
            breakdown: TimeBreakdown { dist_s: 1.0, other_s: 0.0, comm_s: 0.0 },
            counters: CostCounters::new(),
        }
    }

    #[test]
    fn every_chunk_visits_every_device() {
        let n = 4;
        let (out, timeline) =
            run_ring_pipeline(n, n, vec![Vec::<usize>::new(); n], |device, stage, msg| {
                msg.payload.push(device);
                record(device, stage, msg.origin_chunk)
            });
        assert_eq!(out.len(), n);
        for m in &out {
            // Chunk originating at d visits d, d+1, ..., d+3 (mod 4).
            let want: Vec<usize> = (0..n).map(|s| (m.origin_chunk + s) % n).collect();
            assert_eq!(m.payload, want, "origin {}", m.origin_chunk);
        }
        assert_eq!(timeline.records().len(), n * n);
        assert_eq!(timeline.num_stages(), n);
    }

    #[test]
    fn single_device_runs_all_stages_locally() {
        let (out, timeline) = run_ring_pipeline(1, 3, vec![0u32], |device, stage, msg| {
            msg.payload += 1;
            record(device, stage, msg.origin_chunk)
        });
        assert_eq!(out[0].payload, 3);
        assert_eq!(timeline.records().len(), 3);
    }

    #[test]
    fn makespan_counts_lockstep_stages() {
        let n = 3;
        let (_, timeline) = run_ring_pipeline(n, n, vec![(); n], |device, stage, msg| {
            record(device, stage, msg.origin_chunk)
        });
        // Each stage's worst device takes 1.0s; 3 stages → 3.0s.
        assert!((timeline.makespan_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn payloads_are_not_lost_or_duplicated() {
        let n = 5;
        let initial: Vec<u64> = (0..n as u64).map(|d| d * 100).collect();
        let (out, _) = run_ring_pipeline(n, 2, initial, |device, stage, msg| {
            record(device, stage, msg.origin_chunk)
        });
        let payloads: Vec<u64> = out.iter().map(|m| m.payload).collect();
        assert_eq!(payloads, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    #[should_panic(expected = "one initial chunk per device")]
    fn wrong_chunk_count_panics() {
        let _ = run_ring_pipeline(2, 1, vec![()], |d, s, m: &mut RingMessage<()>| {
            record(d, s, m.origin_chunk)
        });
    }

    #[test]
    fn stream_accepts_sparse_chunks() {
        // One chunk (origin 3) on a 4-device ring still visits all four
        // devices, and the other devices produce no records.
        let (out, timeline) =
            run_ring_stream(4, 4, 7, vec![(3usize, Vec::<usize>::new())], |device, stage, msg| {
                msg.payload.push(device);
                Some(record(device, stage, msg.origin_chunk))
            });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].origin_chunk, 3);
        assert_eq!(out[0].payload, vec![3, 0, 1, 2]);
        assert_eq!(timeline.records().len(), 4);
        assert!(timeline.records().iter().all(|r| r.batch == 7));
    }

    #[test]
    fn none_stages_leave_no_records() {
        let (out, timeline) = run_ring_stream(2, 2, 0, vec![(0, ()), (1, ())], |_, stage, msg| {
            (stage == 0 && msg.origin_chunk == 0).then(|| record(0, 0, 0))
        });
        assert_eq!(out.len(), 2);
        assert_eq!(timeline.records().len(), 1);
    }

    #[test]
    fn persistent_executor_matches_scoped_run() {
        let n = 4;
        let exec = RingExecutor::new(
            n,
            n,
            move |device: usize, stage, msg: &mut RingMessage<Vec<usize>>| {
                msg.payload.push(device);
                Some(record(device, stage, msg.origin_chunk))
            },
        );
        let chunks: Vec<(usize, Vec<usize>)> = (0..n).map(|d| (d, Vec::new())).collect();
        let (out, timeline) = exec.submit(chunks).wait();
        assert_eq!(out.len(), n);
        for m in &out {
            let want: Vec<usize> = (0..n).map(|s| (m.origin_chunk + s) % n).collect();
            assert_eq!(m.payload, want, "origin {}", m.origin_chunk);
        }
        assert_eq!(timeline.records().len(), n * n);
    }

    #[test]
    fn batches_overlap_in_flight() {
        let n = 4;
        let exec = RingExecutor::new(n, n, |device: usize, stage, msg: &mut RingMessage<u64>| {
            msg.payload += 1;
            Some(record(device, stage, msg.origin_chunk))
        });
        // Submit several batches before waiting on any of them.
        let handles: Vec<BatchHandle<u64>> =
            (0..6).map(|b| exec.submit(vec![(3usize, b * 1000)])).collect();
        for (b, h) in handles.into_iter().enumerate() {
            assert_eq!(h.batch_id(), b as u64);
            let (out, timeline) = h.wait();
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].payload, b as u64 * 1000 + n as u64);
            assert_eq!(timeline.records().len(), n);
            assert!(timeline.records().iter().all(|r| r.batch == b as u64));
        }
    }

    #[test]
    fn drop_drains_inflight_batches() {
        let exec = RingExecutor::new(2, 2, |device: usize, stage, msg: &mut RingMessage<u32>| {
            msg.payload += 1;
            Some(record(device, stage, msg.origin_chunk))
        });
        let h1 = exec.submit(vec![(0, 0u32), (1, 10)]);
        let h2 = exec.submit(vec![(0, 100)]);
        drop(exec); // Must drain, not strand, the two batches.
        let (out1, _) = h1.wait();
        assert_eq!(out1.iter().map(|m| m.payload).collect::<Vec<_>>(), vec![2, 12]);
        let (out2, _) = h2.wait();
        assert_eq!(out2[0].payload, 102);
    }

    #[test]
    fn dropped_handle_does_not_wedge_executor() {
        let exec = RingExecutor::new(2, 2, |device: usize, stage, msg: &mut RingMessage<u32>| {
            msg.payload += 1;
            Some(record(device, stage, msg.origin_chunk))
        });
        drop(exec.submit(vec![(0, 0u32)])); // Receiver gone; sends are ignored.
        let (out, _) = exec.submit(vec![(1, 5u32)]).wait();
        assert_eq!(out[0].payload, 7);
    }
}
