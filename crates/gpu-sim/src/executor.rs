//! Pipelined ring executor.
//!
//! One OS thread per simulated device, connected in a ring with bounded
//! crossbeam channels — the concurrency skeleton of pipelining-based path
//! extension. Each device starts with its own query chunk; at every stage
//! boundary, all devices forward their in-flight payload to their ring
//! successor and receive from their predecessor, exactly as the paper's §3.1
//! describes. The *simulated* time of each stage comes from the
//! [`StageRecord`]s the caller's stage function produces; the OS-level
//! parallelism only provides real concurrency for the computation itself.

use crate::timeline::{PipelineTimeline, StageRecord};
use crossbeam::channel;

/// A payload circulating the ring: the chunk's origin device plus the
/// caller-defined state (queries + current best hits).
#[derive(Debug, Clone, PartialEq)]
pub struct RingMessage<T> {
    /// Device on which this chunk entered the pipeline.
    pub origin_chunk: usize,
    /// Caller-defined state.
    pub payload: T,
}

/// Runs an `num_stages`-stage ring pipeline over `num_devices` devices.
///
/// `initial[d]` is the chunk that starts on device `d`. At each stage `s`,
/// device `d` calls `stage_fn(d, s, msg)` on its current message, records the
/// returned [`StageRecord`], then (unless it was the final stage) forwards
/// the message to device `(d + 1) % N` and receives from `(d + N - 1) % N`.
///
/// Returns the final messages (sorted by origin chunk) and the merged
/// timeline.
///
/// # Panics
///
/// Panics if `initial.len() != num_devices`, if `num_devices == 0`, or if
/// `num_stages == 0`. Panics raised inside `stage_fn` propagate.
pub fn run_ring_pipeline<T, F>(
    num_devices: usize,
    num_stages: usize,
    initial: Vec<T>,
    stage_fn: F,
) -> (Vec<RingMessage<T>>, PipelineTimeline)
where
    T: Send,
    F: Fn(usize, usize, &mut RingMessage<T>) -> StageRecord + Sync,
{
    assert!(num_devices > 0, "need at least one device");
    assert!(num_stages > 0, "need at least one stage");
    assert_eq!(initial.len(), num_devices, "one initial chunk per device");

    // forward[d] is the channel from device d to device (d+1)%N.
    let (txs, rxs): (Vec<_>, Vec<_>) =
        (0..num_devices).map(|_| channel::bounded::<RingMessage<T>>(1)).unzip();
    let (rec_tx, rec_rx) = channel::unbounded::<StageRecord>();
    let (out_tx, out_rx) = channel::unbounded::<RingMessage<T>>();

    std::thread::scope(|scope| {
        let stage_fn = &stage_fn;
        let mut txs = txs.into_iter().map(Some).collect::<Vec<_>>();
        let mut rxs = rxs.into_iter().map(Some).collect::<Vec<_>>();
        let mut initial = initial.into_iter().map(Some).collect::<Vec<_>>();
        for d in 0..num_devices {
            let tx = txs[d].take().expect("tx taken once");
            // Device d receives from its predecessor's forward channel.
            let prev = (d + num_devices - 1) % num_devices;
            let rx = rxs[prev].take().expect("rx taken once");
            let payload = initial[d].take().expect("initial taken once");
            let rec_tx = rec_tx.clone();
            let out_tx = out_tx.clone();
            scope.spawn(move || {
                let mut msg = RingMessage { origin_chunk: d, payload };
                for s in 0..num_stages {
                    let record = stage_fn(d, s, &mut msg);
                    rec_tx.send(record).expect("collector alive");
                    if s + 1 < num_stages && num_devices > 1 {
                        tx.send(msg).expect("successor alive");
                        msg = rx.recv().expect("predecessor alive");
                    }
                }
                out_tx.send(msg).expect("collector alive");
            });
        }
        drop(rec_tx);
        drop(out_tx);
    });

    let mut timeline = PipelineTimeline::new();
    for r in rec_rx.iter() {
        timeline.push(r);
    }
    let mut out: Vec<RingMessage<T>> = out_rx.iter().collect();
    out.sort_by_key(|m| m.origin_chunk);
    (out, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TimeBreakdown;
    use crate::counters::CostCounters;

    fn record(device: usize, stage: usize, origin: usize) -> StageRecord {
        StageRecord {
            device,
            stage,
            origin_chunk: origin,
            breakdown: TimeBreakdown { dist_s: 1.0, other_s: 0.0, comm_s: 0.0 },
            counters: CostCounters::new(),
        }
    }

    #[test]
    fn every_chunk_visits_every_device() {
        let n = 4;
        let (out, timeline) =
            run_ring_pipeline(n, n, vec![Vec::<usize>::new(); n], |device, stage, msg| {
                msg.payload.push(device);
                record(device, stage, msg.origin_chunk)
            });
        assert_eq!(out.len(), n);
        for m in &out {
            // Chunk originating at d visits d, d+1, ..., d+3 (mod 4).
            let want: Vec<usize> = (0..n).map(|s| (m.origin_chunk + s) % n).collect();
            assert_eq!(m.payload, want, "origin {}", m.origin_chunk);
        }
        assert_eq!(timeline.records().len(), n * n);
        assert_eq!(timeline.num_stages(), n);
    }

    #[test]
    fn single_device_runs_all_stages_locally() {
        let (out, timeline) = run_ring_pipeline(1, 3, vec![0u32], |device, stage, msg| {
            msg.payload += 1;
            record(device, stage, msg.origin_chunk)
        });
        assert_eq!(out[0].payload, 3);
        assert_eq!(timeline.records().len(), 3);
    }

    #[test]
    fn makespan_counts_lockstep_stages() {
        let n = 3;
        let (_, timeline) = run_ring_pipeline(n, n, vec![(); n], |device, stage, msg| {
            record(device, stage, msg.origin_chunk)
        });
        // Each stage's worst device takes 1.0s; 3 stages → 3.0s.
        assert!((timeline.makespan_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn payloads_are_not_lost_or_duplicated() {
        let n = 5;
        let initial: Vec<u64> = (0..n as u64).map(|d| d * 100).collect();
        let (out, _) = run_ring_pipeline(n, 2, initial, |device, stage, msg| {
            record(device, stage, msg.origin_chunk)
        });
        let payloads: Vec<u64> = out.iter().map(|m| m.payload).collect();
        assert_eq!(payloads, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    #[should_panic(expected = "one initial chunk per device")]
    fn wrong_chunk_count_panics() {
        let _ = run_ring_pipeline(2, 1, vec![()], |d, s, m: &mut RingMessage<()>| {
            record(d, s, m.origin_chunk)
        });
    }
}
