//! Inter-device link specifications.

use serde::Serialize;

/// One directed inter-device channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LinkSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-transfer latency in seconds (launch + hop).
    pub latency_s: f64,
}

impl LinkSpec {
    /// NVLink bridge (3rd gen, A6000 pairing): ~56 GB/s per direction.
    pub const fn nvlink_bridge() -> Self {
        Self { name: "nvlink-bridge", bandwidth: 56.0e9, latency_s: 5.0e-6 }
    }

    /// PCIe 4.0 ×16 through a host switch: ~24 GB/s effective.
    pub const fn pcie4_x16() -> Self {
        Self { name: "pcie4-x16", bandwidth: 24.0e9, latency_s: 10.0e-6 }
    }

    /// Transfer time for `bytes` over this link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_faster_than_pcie() {
        let n = LinkSpec::nvlink_bridge();
        let p = LinkSpec::pcie4_x16();
        assert!(n.transfer_time(1 << 30) < p.transfer_time(1 << 30));
    }

    #[test]
    fn latency_floor_for_tiny_messages() {
        let n = LinkSpec::nvlink_bridge();
        let t = n.transfer_time(4);
        assert!((5.0e-6..6.0e-6).contains(&t));
    }

    #[test]
    fn comm_is_negligible_versus_memory_term() {
        // Paper §6.4: per-query comm is Q × b_idx; per-query memory traffic
        // is I × J × v × b_elem. Even over PCIe the comm term must be tiny.
        let link = LinkSpec::pcie4_x16();
        let comm = link.transfer_time(8); // One index + distance per query.
        let dev = crate::device::DeviceSpec::rtx_a6000();
        let mem = dev.stream_time((20 * 32 * 96 * 4) as f64); // I×J×v×4 bytes.
                                                              // Amortized over a 10k batch the comm latency vanishes; compare
                                                              // steady-state per-byte costs instead.
        let comm_per_byte = 1.0 / link.bandwidth;
        let mem_bytes = 20.0 * 32.0 * 96.0 * 4.0;
        assert!(8.0 * comm_per_byte < mem / 10.0, "comm {comm} mem {mem} bytes {mem_bytes}");
    }
}
