//! Operation counters filled in by the search kernel.

use serde::{Deserialize, Serialize};

/// A tally of the operations a simulated kernel performed.
///
/// The search kernel in `pathweaver-search` increments these as it runs; the
/// [`crate::cost::CostModel`] then converts them to simulated seconds. All
/// counts are exact — they are produced by executing the real algorithm, not
/// by estimation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostCounters {
    /// Full-precision distance computations (the paper's dominant term).
    pub dist_calcs: u64,
    /// Quantized (int8 code-space) distance computations — the compressed
    /// traversal tier. Streams ~¼ of the bytes of a full-precision distance.
    pub quant_dist_calcs: u64,
    /// Bytes of vector data streamed for those distances.
    pub vector_bytes: u64,
    /// Bytes of adjacency rows fetched.
    pub graph_bytes: u64,
    /// Bytes of direction-table codes fetched (direction-guided selection).
    pub dir_table_bytes: u64,
    /// Sign-bit code computations (query direction per visited node).
    pub sign_encodes: u64,
    /// XOR+popcount similarity evaluations against the direction table.
    pub dir_compares: u64,
    /// Visited-hash probes (insert + lookup).
    pub hash_probes: u64,
    /// Priority-queue / candidate sort steps (element moves).
    pub sort_ops: u64,
    /// Random numbers generated (entry sampling).
    pub rng_ops: u64,
    /// Kernel launches (one per search batch per iteration group).
    pub kernel_launches: u64,
    /// Search iterations executed (for Fig 3/13 analyses).
    pub iterations: u64,
    /// Nodes visited (adjacency rows expanded).
    pub nodes_visited: u64,
    /// Bytes sent to the next device (pipelining-based path extension).
    pub comm_bytes: u64,
}

impl CostCounters {
    /// Creates a zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every field of `other` into `self`.
    pub fn merge(&mut self, other: &CostCounters) {
        self.dist_calcs += other.dist_calcs;
        self.quant_dist_calcs += other.quant_dist_calcs;
        self.vector_bytes += other.vector_bytes;
        self.graph_bytes += other.graph_bytes;
        self.dir_table_bytes += other.dir_table_bytes;
        self.sign_encodes += other.sign_encodes;
        self.dir_compares += other.dir_compares;
        self.hash_probes += other.hash_probes;
        self.sort_ops += other.sort_ops;
        self.rng_ops += other.rng_ops;
        self.kernel_launches += other.kernel_launches;
        self.iterations += other.iterations;
        self.nodes_visited += other.nodes_visited;
        self.comm_bytes += other.comm_bytes;
    }

    /// Records one full-precision distance over a `dim`-dimensional vector
    /// (one candidate vector streamed).
    #[inline]
    pub fn record_distance(&mut self, dim: usize) {
        self.dist_calcs += 1;
        self.vector_bytes += (dim * std::mem::size_of::<f32>()) as u64;
    }

    /// Records one quantized (int8) distance over a `dim`-dimensional
    /// vector: one code row streamed at 1 byte per dimension — the 4× traffic
    /// reduction of the compression tier is exactly this bookkeeping
    /// difference from [`CostCounters::record_distance`].
    #[inline]
    pub fn record_quantized_distance(&mut self, dim: usize) {
        self.quant_dist_calcs += 1;
        self.vector_bytes += dim as u64;
    }

    /// Records fetching one adjacency row of `degree` neighbors.
    #[inline]
    pub fn record_adjacency_fetch(&mut self, degree: usize) {
        self.nodes_visited += 1;
        self.graph_bytes += (degree * std::mem::size_of::<u32>()) as u64;
    }

    /// Total bytes streamed from simulated device memory (vectors,
    /// adjacency rows, and direction-table codes).
    pub fn bytes_read(&self) -> u64 {
        self.vector_bytes + self.graph_bytes + self.dir_table_bytes
    }

    /// Records one direction-table row fetch plus the per-neighbor compares.
    #[inline]
    pub fn record_dir_selection(&mut self, degree: usize, words_per_code: usize) {
        self.dir_table_bytes += (degree * words_per_code * std::mem::size_of::<u32>()) as u64;
        self.dir_compares += degree as u64;
        self.sign_encodes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_all_fields() {
        let mut a = CostCounters { dist_calcs: 1, comm_bytes: 10, ..Default::default() };
        let b = CostCounters { dist_calcs: 2, iterations: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.dist_calcs, 3);
        assert_eq!(a.iterations, 5);
        assert_eq!(a.comm_bytes, 10);
    }

    #[test]
    fn record_distance_tracks_bytes() {
        let mut c = CostCounters::new();
        c.record_distance(96);
        c.record_distance(96);
        assert_eq!(c.dist_calcs, 2);
        assert_eq!(c.vector_bytes, 2 * 96 * 4);
    }

    #[test]
    fn record_quantized_distance_charges_quarter_bytes() {
        let mut c = CostCounters::new();
        c.record_quantized_distance(96);
        c.record_quantized_distance(96);
        assert_eq!(c.quant_dist_calcs, 2);
        assert_eq!(c.dist_calcs, 0);
        assert_eq!(c.vector_bytes, 2 * 96);
        let mut exact = CostCounters::new();
        exact.record_distance(96);
        exact.record_distance(96);
        assert_eq!(exact.vector_bytes, 4 * c.vector_bytes);
    }

    #[test]
    fn merge_includes_quantized_field() {
        let mut a = CostCounters { quant_dist_calcs: 3, ..Default::default() };
        a.merge(&CostCounters { quant_dist_calcs: 4, ..Default::default() });
        assert_eq!(a.quant_dist_calcs, 7);
    }

    #[test]
    fn record_adjacency_counts_row_bytes() {
        let mut c = CostCounters::new();
        c.record_adjacency_fetch(32);
        assert_eq!(c.nodes_visited, 1);
        assert_eq!(c.graph_bytes, 128);
    }

    #[test]
    fn record_dir_selection_counts_table_bytes() {
        let mut c = CostCounters::new();
        c.record_dir_selection(32, 3);
        assert_eq!(c.dir_table_bytes, 32 * 3 * 4);
        assert_eq!(c.dir_compares, 32);
        assert_eq!(c.sign_encodes, 1);
    }
}
