//! Execution-time breakdown reports (Figs 2, 5 and 12).

use crate::cost::TimeBreakdown;
use crate::timeline::PipelineTimeline;
use serde::{Deserialize, Serialize};

/// Normalized execution-time fractions in the paper's three categories.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakdownReport {
    /// Fraction of time in L2 distance computation.
    pub l2_fraction: f64,
    /// Fraction in the rest of the kernel (RNG, fetch, sort, hash, direction
    /// lookups).
    pub rest_fraction: f64,
    /// Fraction in inter-GPU communication.
    pub comm_fraction: f64,
    /// Absolute total device-seconds the fractions normalize.
    pub total_s: f64,
}

impl BreakdownReport {
    /// Builds the report from an absolute breakdown.
    pub fn from_breakdown(b: &TimeBreakdown) -> Self {
        let total = b.total_s();
        if total <= 0.0 {
            return Self { l2_fraction: 0.0, rest_fraction: 0.0, comm_fraction: 0.0, total_s: 0.0 };
        }
        Self {
            l2_fraction: b.dist_s / total,
            rest_fraction: b.other_s / total,
            comm_fraction: b.comm_s / total,
            total_s: total,
        }
    }

    /// Builds the report from a whole pipeline timeline.
    pub fn from_timeline(t: &PipelineTimeline) -> Self {
        Self::from_breakdown(&t.aggregate())
    }
}

/// Per-stage share of total pipeline time (Fig 5): `stage_fractions[s]` is
/// stage `s`'s share of the lock-step makespan.
pub fn stage_fractions(t: &PipelineTimeline) -> Vec<f64> {
    let times = t.stage_times_s();
    let total: f64 = times.iter().sum();
    if total <= 0.0 {
        return vec![0.0; times.len()];
    }
    times.iter().map(|x| x / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CostCounters;
    use crate::timeline::StageRecord;

    #[test]
    fn fractions_sum_to_one() {
        let b = TimeBreakdown { dist_s: 8.0, other_s: 1.5, comm_s: 0.5 };
        let r = BreakdownReport::from_breakdown(&b);
        assert!((r.l2_fraction + r.rest_fraction + r.comm_fraction - 1.0).abs() < 1e-12);
        assert!((r.l2_fraction - 0.8).abs() < 1e-12);
        assert_eq!(r.total_s, 10.0);
    }

    #[test]
    fn zero_time_is_all_zero() {
        let r = BreakdownReport::from_breakdown(&TimeBreakdown::default());
        assert_eq!(r.l2_fraction, 0.0);
        assert_eq!(r.total_s, 0.0);
    }

    #[test]
    fn stage_fractions_normalize() {
        let mut t = PipelineTimeline::new();
        for (s, dist) in [(0usize, 3.0f64), (1, 1.0)] {
            t.push(StageRecord {
                device: 0,
                stage: s,
                origin_chunk: 0,
                batch: 0,
                breakdown: TimeBreakdown { dist_s: dist, other_s: 0.0, comm_s: 0.0 },
                counters: CostCounters::new(),
            });
        }
        let f = stage_fractions(&t);
        assert!((f[0] - 0.75).abs() < 1e-12);
        assert!((f[1] - 0.25).abs() < 1e-12);
    }
}
