//! Per-device memory accounting.
//!
//! Sharding exists because one GPU cannot hold the whole corpus; the ledger
//! makes that constraint explicit. Index builders register every resident
//! structure (shard vectors, graph, inter-shard table, ghost shard, direction
//! table) and allocation fails when a shard would not fit — the condition
//! that forces multi-GPU execution in the first place.

use serde::{Deserialize, Serialize};

/// An allocation failure: the device is out of simulated memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutOfMemory {
    /// Label of the allocation that failed.
    pub label: String,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still free.
    pub available: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated device OOM: '{}' needs {} bytes, {} free",
            self.label, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Tracks labelled allocations against a device's capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryLedger {
    capacity: u64,
    allocations: Vec<(String, u64)>,
}

impl MemoryLedger {
    /// Creates a ledger with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        Self { capacity, allocations: Vec::new() }
    }

    /// Registers an allocation; fails when it would exceed capacity.
    pub fn allocate(&mut self, label: impl Into<String>, bytes: u64) -> Result<(), OutOfMemory> {
        let label = label.into();
        let available = self.available();
        if bytes > available {
            return Err(OutOfMemory { label, requested: bytes, available });
        }
        self.allocations.push((label, bytes));
        Ok(())
    }

    /// Releases the most recent allocation with `label`; returns its size.
    pub fn free(&mut self, label: &str) -> Option<u64> {
        let idx = self.allocations.iter().rposition(|(l, _)| l == label)?;
        Some(self.allocations.remove(idx).1)
    }

    /// Total bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.allocations.iter().map(|(_, b)| b).sum()
    }

    /// Bytes still free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Iterates over `(label, bytes)` allocations in registration order.
    pub fn allocations(&self) -> impl Iterator<Item = (&str, u64)> {
        self.allocations.iter().map(|(l, b)| (l.as_str(), *b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free() {
        let mut m = MemoryLedger::new(1000);
        m.allocate("shard", 600).unwrap();
        m.allocate("graph", 300).unwrap();
        assert_eq!(m.used(), 900);
        assert_eq!(m.available(), 100);
        assert_eq!(m.free("shard"), Some(600));
        assert_eq!(m.used(), 300);
        assert_eq!(m.free("shard"), None);
    }

    #[test]
    fn over_allocation_fails_with_context() {
        let mut m = MemoryLedger::new(100);
        m.allocate("a", 80).unwrap();
        let err = m.allocate("b", 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        assert_eq!(err.label, "b");
        // Failed allocation must not corrupt the ledger.
        assert_eq!(m.used(), 80);
    }

    #[test]
    fn exact_fit_succeeds() {
        let mut m = MemoryLedger::new(64);
        m.allocate("x", 64).unwrap();
        assert_eq!(m.available(), 0);
    }

    #[test]
    fn duplicate_labels_freed_lifo() {
        let mut m = MemoryLedger::new(100);
        m.allocate("t", 10).unwrap();
        m.allocate("t", 20).unwrap();
        assert_eq!(m.free("t"), Some(20));
        assert_eq!(m.free("t"), Some(10));
    }
}
