//! Roofline conversion from operation counters to simulated time.

use crate::counters::CostCounters;
use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Simulated kernel time split into the paper's breakdown categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// L2 distance computation time (vector streaming + FMA), seconds.
    pub dist_s: f64,
    /// Rest of the kernel: adjacency fetches, hashing, sorting, RNG,
    /// direction-table work, launch overhead.
    pub other_s: f64,
    /// Inter-GPU communication time, seconds.
    pub comm_s: f64,
}

impl TimeBreakdown {
    /// Total simulated seconds.
    pub fn total_s(&self) -> f64 {
        self.dist_s + self.other_s + self.comm_s
    }

    /// Fraction of time spent on L2 distance work (the paper reports >0.8 —
    /// 0.95 for the baselines in Fig 2).
    pub fn dist_fraction(&self) -> f64 {
        let t = self.total_s();
        if t <= 0.0 {
            0.0
        } else {
            self.dist_s / t
        }
    }

    /// Adds another breakdown (e.g. across pipeline stages).
    pub fn merge(&mut self, other: &TimeBreakdown) {
        self.dist_s += other.dist_s;
        self.other_s += other.other_s;
        self.comm_s += other.comm_s;
    }
}

/// Converts [`CostCounters`] into [`TimeBreakdown`] for a given device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CostModel {
    /// The device this model simulates.
    pub device: DeviceSpec,
    /// FLOPs charged per vector dimension per distance (sub + mul + add).
    pub flops_per_dim: f64,
}

impl CostModel {
    /// Builds the model for `device` with the default 3 FLOPs/dimension.
    pub fn new(device: DeviceSpec) -> Self {
        Self { device, flops_per_dim: 3.0 }
    }

    /// Simulated kernel time for a tally produced while searching vectors of
    /// dimensionality `dim`. Communication is *not* included (it depends on
    /// the link, see [`crate::link::LinkSpec`]); `comm_s` is left 0.
    pub fn kernel_time(&self, c: &CostCounters, dim: usize) -> TimeBreakdown {
        let d = &self.device;
        // Distance term: roofline of streaming the candidate vectors versus
        // executing the FMAs; graph ANNS sits firmly on the bandwidth side.
        // Quantized (int8) distances stream 1 byte/dim (already reflected in
        // `vector_bytes`) and execute at 4× the f32 rate (dp4a-style packed
        // integer lanes), so their compute charge is a quarter per op — the
        // roofline keeps its shape and the 4× byte cut shows up as sim-QPS
        // only where the kernel really is bandwidth-bound.
        let stream = d.stream_time(c.vector_bytes as f64);
        let dist_ops = c.dist_calcs as f64 + c.quant_dist_calcs as f64 * 0.25;
        let compute = d.compute_time(dist_ops * dim as f64 * self.flops_per_dim);
        let dist_s = stream.max(compute);

        // Rest-of-kernel term: adjacency + direction-table streaming, plus
        // per-op fixed costs, plus launch overhead.
        let other_s = d.stream_time((c.graph_bytes + c.dir_table_bytes) as f64)
            + c.hash_probes as f64 * d.hash_probe_s
            + c.sort_ops as f64 * d.sort_step_s
            + c.rng_ops as f64 * d.rng_s
            + c.sign_encodes as f64 * d.compute_time(dim as f64)
            + c.dir_compares as f64 * d.sort_step_s
            + c.kernel_launches as f64 * d.kernel_launch_s;

        TimeBreakdown { dist_s, other_s, comm_s: 0.0 }
    }

    /// Queries/second implied by a breakdown covering `num_queries` queries.
    pub fn qps(breakdown: &TimeBreakdown, num_queries: usize) -> f64 {
        let t = breakdown.total_s();
        if t <= 0.0 {
            0.0
        } else {
            num_queries as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a6000() -> CostModel {
        CostModel::new(DeviceSpec::rtx_a6000())
    }

    #[test]
    fn distance_dominates_for_typical_search() {
        // A typical converged batch: 1000 queries × 20 iterations × 32
        // neighbors of 96-d vectors sharing one kernel launch, with modest
        // bookkeeping — L2 share must exceed 80 % as in Fig 2.
        let mut c = CostCounters::new();
        for _ in 0..1000 {
            for _ in 0..20 {
                c.record_adjacency_fetch(32);
                for _ in 0..32 {
                    c.record_distance(96);
                }
                c.hash_probes += 64;
                c.sort_ops += 32 * 6;
            }
        }
        c.kernel_launches = 1;
        let t = a6000().kernel_time(&c, 96);
        assert!(t.dist_fraction() > 0.8, "dist fraction {}", t.dist_fraction());
    }

    #[test]
    fn wider_vectors_cost_proportionally_more() {
        let mut narrow = CostCounters::new();
        let mut wide = CostCounters::new();
        for _ in 0..1000 {
            narrow.record_distance(96);
            wide.record_distance(960);
        }
        let m = a6000();
        let tn = m.kernel_time(&narrow, 96).dist_s;
        let tw = m.kernel_time(&wide, 960).dist_s;
        assert!((tw / tn - 10.0).abs() < 0.5, "ratio {}", tw / tn);
    }

    #[test]
    fn quantized_distances_cost_a_quarter() {
        // Same op count, quantized vs exact: in the bandwidth-bound regime
        // the quantized tally must cost exactly a quarter in the distance
        // term (1 byte/dim vs 4, compute scaled alike).
        let mut exact = CostCounters::new();
        let mut quant = CostCounters::new();
        for _ in 0..10_000 {
            exact.record_distance(96);
            quant.record_quantized_distance(96);
        }
        let m = a6000();
        let te = m.kernel_time(&exact, 96).dist_s;
        let tq = m.kernel_time(&quant, 96).dist_s;
        assert!(te > 0.0);
        assert!((te / tq - 4.0).abs() < 1e-9, "ratio {}", te / tq);
    }

    #[test]
    fn qps_inverse_of_time() {
        let b = TimeBreakdown { dist_s: 0.5, other_s: 0.25, comm_s: 0.25 };
        assert_eq!(CostModel::qps(&b, 1000), 1000.0);
        assert_eq!(CostModel::qps(&TimeBreakdown::default(), 10), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TimeBreakdown { dist_s: 1.0, other_s: 0.5, comm_s: 0.1 };
        a.merge(&TimeBreakdown { dist_s: 1.0, other_s: 0.5, comm_s: 0.2 });
        assert!((a.total_s() - 3.3).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_cost_nothing_but_launch() {
        let mut c = CostCounters::new();
        c.kernel_launches = 2;
        let t = a6000().kernel_time(&c, 128);
        assert_eq!(t.dist_s, 0.0);
        assert!((t.other_s - 1.0e-5).abs() < 1e-12);
    }
}
