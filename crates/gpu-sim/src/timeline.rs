//! Pipeline stage records and makespan computation.
//!
//! Pipelining-based path extension executes in lock-step stages (paper
//! §3.1.2): every device searches its current chunk, all devices forward
//! their results, and the next stage begins. The simulated makespan is
//! therefore the sum over stages of the slowest device's kernel time plus
//! the slowest forward, which is exactly how the real system synchronizes at
//! stage boundaries.
//!
//! The streaming serve layer keeps several batches in flight at once, so the
//! lock-step sum no longer describes its wall time: device `d` can run stage
//! `s` of batch `b+1` while device `d+1` runs stage `s+1` of batch `b`. For
//! that mode [`PipelineTimeline::overlapped_makespan_s`] replays the records
//! as a deterministic greedy schedule over per-device busy intervals.

use crate::cost::TimeBreakdown;
use crate::counters::CostCounters;
use serde::{Deserialize, Serialize};

/// The simulated record of one device executing one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Device that executed the stage.
    pub device: usize,
    /// Pipeline stage index (0 = first search from scratch / ghost stage).
    pub stage: usize,
    /// Index of the query chunk being processed (the chunk's origin device).
    pub origin_chunk: usize,
    /// Batch the chunk belongs to. One-shot searches leave this at 0; the
    /// streaming executor stamps every record with the submission sequence
    /// number so overlapped replay can separate concurrent batches.
    pub batch: u64,
    /// Simulated kernel + communication time of this stage on this device.
    pub breakdown: TimeBreakdown,
    /// Raw operation counters of this stage.
    pub counters: CostCounters,
}

/// All stage records of one pipelined batch execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineTimeline {
    records: Vec<StageRecord>,
}

impl PipelineTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage record.
    pub fn push(&mut self, record: StageRecord) {
        self.records.push(record);
    }

    /// Appends every record of `other` (used by the serve layer to merge
    /// per-batch timelines into one stream-wide account).
    pub fn extend(&mut self, other: &PipelineTimeline) {
        self.records.extend_from_slice(&other.records);
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Number of distinct stages recorded.
    pub fn num_stages(&self) -> usize {
        self.records.iter().map(|r| r.stage + 1).max().unwrap_or(0)
    }

    /// Lock-step makespan: `Σ_s max_d (kernel + comm)` over devices `d`
    /// active in stage `s`.
    pub fn makespan_s(&self) -> f64 {
        let mut total = 0.0;
        for s in 0..self.num_stages() {
            let worst = self
                .records
                .iter()
                .filter(|r| r.stage == s)
                .map(|r| r.breakdown.total_s())
                .fold(0.0f64, f64::max);
            total += worst;
        }
        total
    }

    /// Overlap-aware makespan of a multi-batch stream.
    ///
    /// Replays every record as a deterministic greedy list schedule: records
    /// are ordered by `(batch, stage, origin_chunk, device)` and each one
    /// starts at the later of (a) the moment its device finished its
    /// previous record and (b) the moment its chunk finished its previous
    /// stage on the ring predecessor. The ordering is a topological order of
    /// the dependency DAG — both dependency kinds point from a strictly
    /// smaller `(batch, stage)` pair to a larger one — so every predecessor
    /// is scheduled before its dependents and the result is independent of
    /// the thread interleaving that produced the records.
    ///
    /// For a single batch this is at most [`makespan_s`](Self::makespan_s)
    /// (the lock-step barrier can only add idle time); for overlapped
    /// batches it is the quantity the serve layer's throughput claim is
    /// measured against.
    pub fn overlapped_makespan_s(&self) -> f64 {
        let mut order: Vec<&StageRecord> = self.records.iter().collect();
        order.sort_by_key(|r| (r.batch, r.stage, r.origin_chunk, r.device));
        let num_devices = self.records.iter().map(|r| r.device + 1).max().unwrap_or(0);
        let mut device_free = vec![0.0f64; num_devices];
        // Chunk identity is (batch, origin_chunk); BTreeMap keeps the replay
        // allocation-order independent.
        let mut chunk_ready: std::collections::BTreeMap<(u64, usize), f64> =
            std::collections::BTreeMap::new();
        let mut makespan = 0.0f64;
        for r in order {
            let ready = chunk_ready.get(&(r.batch, r.origin_chunk)).copied().unwrap_or(0.0);
            let start = device_free[r.device].max(ready);
            let end = start + r.breakdown.total_s();
            device_free[r.device] = end;
            chunk_ready.insert((r.batch, r.origin_chunk), end);
            makespan = makespan.max(end);
        }
        makespan
    }

    /// Sum of all per-record breakdowns (total device-seconds, not wall
    /// time): the quantity behind the Fig 2/12 category fractions.
    pub fn aggregate(&self) -> TimeBreakdown {
        let mut out = TimeBreakdown::default();
        for r in &self.records {
            out.merge(&r.breakdown);
        }
        out
    }

    /// Aggregate counters across all records.
    pub fn aggregate_counters(&self) -> CostCounters {
        let mut out = CostCounters::new();
        for r in &self.records {
            out.merge(&r.counters);
        }
        out
    }

    /// Per-stage worst-device time — the Fig 5 series ("stage 1 dominates").
    pub fn stage_times_s(&self) -> Vec<f64> {
        (0..self.num_stages())
            .map(|s| {
                self.records
                    .iter()
                    .filter(|r| r.stage == s)
                    .map(|r| r.breakdown.total_s())
                    .fold(0.0f64, f64::max)
            })
            .collect()
    }

    /// Aggregate breakdown of one device across stages.
    pub fn device_breakdown(&self, device: usize) -> TimeBreakdown {
        let mut out = TimeBreakdown::default();
        for r in self.records.iter().filter(|r| r.device == device) {
            out.merge(&r.breakdown);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(device: usize, stage: usize, dist: f64, comm: f64) -> StageRecord {
        StageRecord {
            device,
            stage,
            origin_chunk: (device + stage) % 4,
            batch: 0,
            breakdown: TimeBreakdown { dist_s: dist, other_s: 0.0, comm_s: comm },
            counters: CostCounters::new(),
        }
    }

    fn brec(batch: u64, device: usize, stage: usize, chunk: usize, cost: f64) -> StageRecord {
        StageRecord {
            device,
            stage,
            origin_chunk: chunk,
            batch,
            breakdown: TimeBreakdown { dist_s: cost, other_s: 0.0, comm_s: 0.0 },
            counters: CostCounters::new(),
        }
    }

    #[test]
    fn makespan_is_sum_of_stage_maxima() {
        let mut t = PipelineTimeline::new();
        t.push(rec(0, 0, 3.0, 0.1));
        t.push(rec(1, 0, 2.0, 0.1));
        t.push(rec(0, 1, 1.0, 0.1));
        t.push(rec(1, 1, 1.5, 0.1));
        // Stage 0 worst: 3.1; stage 1 worst: 1.6.
        assert!((t.makespan_s() - 4.7).abs() < 1e-12);
    }

    #[test]
    fn stage_times_reflect_first_stage_dominance() {
        let mut t = PipelineTimeline::new();
        for d in 0..4 {
            t.push(rec(d, 0, 5.0, 0.0)); // Unseeded first stage: long.
            for s in 1..4 {
                t.push(rec(d, s, 1.0, 0.0)); // Seeded stages: short.
            }
        }
        let times = t.stage_times_s();
        assert_eq!(times.len(), 4);
        assert!(times[0] > times[1] * 3.0);
    }

    #[test]
    fn aggregate_sums_device_seconds() {
        let mut t = PipelineTimeline::new();
        t.push(rec(0, 0, 1.0, 0.5));
        t.push(rec(1, 0, 2.0, 0.5));
        let agg = t.aggregate();
        assert_eq!(agg.dist_s, 3.0);
        assert_eq!(agg.comm_s, 1.0);
    }

    #[test]
    fn device_breakdown_filters() {
        let mut t = PipelineTimeline::new();
        t.push(rec(0, 0, 1.0, 0.0));
        t.push(rec(1, 0, 2.0, 0.0));
        t.push(rec(0, 1, 4.0, 0.0));
        assert_eq!(t.device_breakdown(0).dist_s, 5.0);
        assert_eq!(t.device_breakdown(1).dist_s, 2.0);
    }

    #[test]
    fn empty_timeline_is_zero() {
        let t = PipelineTimeline::new();
        assert_eq!(t.makespan_s(), 0.0);
        assert_eq!(t.overlapped_makespan_s(), 0.0);
        assert_eq!(t.num_stages(), 0);
    }

    #[test]
    fn extend_merges_all_records() {
        let mut a = PipelineTimeline::new();
        a.push(rec(0, 0, 1.0, 0.0));
        let mut b = PipelineTimeline::new();
        b.push(rec(1, 0, 2.0, 0.0));
        a.extend(&b);
        assert_eq!(a.records().len(), 2);
        assert_eq!(a.aggregate().dist_s, 3.0);
    }

    #[test]
    fn overlapped_equals_lockstep_for_one_balanced_batch() {
        // A fully balanced single batch keeps every device busy the whole
        // time; the barrier costs nothing and the two accountings agree.
        let mut t = PipelineTimeline::new();
        for s in 0..2 {
            for d in 0..2 {
                t.push(brec(0, d, s, (d + 2 - s) % 2, 1.0));
            }
        }
        assert!((t.makespan_s() - 2.0).abs() < 1e-12);
        assert!((t.overlapped_makespan_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overlapped_is_below_lockstep_for_skewed_batch() {
        // Two slow records on disjoint critical paths: chunk 0 is slow in
        // stage 0 (device 0) and chunk 1 in stage 1 (device 2). Lock-step
        // charges both stage maxima (5 + 5 + 1 = 11); the overlapped replay
        // runs them concurrently and finishes at 7.
        let mut t = PipelineTimeline::new();
        t.push(brec(0, 0, 0, 0, 5.0));
        t.push(brec(0, 1, 0, 1, 1.0));
        t.push(brec(0, 2, 0, 2, 1.0));
        t.push(brec(0, 1, 1, 0, 1.0));
        t.push(brec(0, 2, 1, 1, 5.0));
        t.push(brec(0, 0, 1, 2, 1.0));
        t.push(brec(0, 2, 2, 0, 1.0));
        t.push(brec(0, 0, 2, 1, 1.0));
        t.push(brec(0, 1, 2, 2, 1.0));
        assert!((t.makespan_s() - 11.0).abs() < 1e-12);
        assert!((t.overlapped_makespan_s() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn overlapped_pipelines_consecutive_batches() {
        // Two single-chunk batches walking devices 0 then 1, unit cost:
        // serialized lock-step would take 4.0; overlap fills device 0 while
        // device 1 finishes batch 0 — makespan 3.0.
        let mut t = PipelineTimeline::new();
        t.push(brec(0, 0, 0, 0, 1.0));
        t.push(brec(0, 1, 1, 0, 1.0));
        t.push(brec(1, 0, 0, 0, 1.0));
        t.push(brec(1, 1, 1, 0, 1.0));
        assert!((t.overlapped_makespan_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlapped_replay_is_insertion_order_independent() {
        let mut a = PipelineTimeline::new();
        let mut recs = vec![brec(0, 0, 0, 0, 1.5), brec(0, 1, 1, 0, 2.0), brec(1, 0, 0, 0, 0.5)];
        for r in &recs {
            a.push(*r);
        }
        recs.reverse();
        let mut b = PipelineTimeline::new();
        for r in &recs {
            b.push(*r);
        }
        assert_eq!(a.overlapped_makespan_s(), b.overlapped_makespan_s());
    }
}
