//! Pipeline stage records and makespan computation.
//!
//! Pipelining-based path extension executes in lock-step stages (paper
//! §3.1.2): every device searches its current chunk, all devices forward
//! their results, and the next stage begins. The simulated makespan is
//! therefore the sum over stages of the slowest device's kernel time plus
//! the slowest forward, which is exactly how the real system synchronizes at
//! stage boundaries.

use crate::cost::TimeBreakdown;
use crate::counters::CostCounters;
use serde::{Deserialize, Serialize};

/// The simulated record of one device executing one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageRecord {
    /// Device that executed the stage.
    pub device: usize,
    /// Pipeline stage index (0 = first search from scratch / ghost stage).
    pub stage: usize,
    /// Index of the query chunk being processed (the chunk's origin device).
    pub origin_chunk: usize,
    /// Simulated kernel + communication time of this stage on this device.
    pub breakdown: TimeBreakdown,
    /// Raw operation counters of this stage.
    pub counters: CostCounters,
}

/// All stage records of one pipelined batch execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineTimeline {
    records: Vec<StageRecord>,
}

impl PipelineTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage record.
    pub fn push(&mut self, record: StageRecord) {
        self.records.push(record);
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// Number of distinct stages recorded.
    pub fn num_stages(&self) -> usize {
        self.records.iter().map(|r| r.stage + 1).max().unwrap_or(0)
    }

    /// Lock-step makespan: `Σ_s max_d (kernel + comm)` over devices `d`
    /// active in stage `s`.
    pub fn makespan_s(&self) -> f64 {
        let mut total = 0.0;
        for s in 0..self.num_stages() {
            let worst = self
                .records
                .iter()
                .filter(|r| r.stage == s)
                .map(|r| r.breakdown.total_s())
                .fold(0.0f64, f64::max);
            total += worst;
        }
        total
    }

    /// Sum of all per-record breakdowns (total device-seconds, not wall
    /// time): the quantity behind the Fig 2/12 category fractions.
    pub fn aggregate(&self) -> TimeBreakdown {
        let mut out = TimeBreakdown::default();
        for r in &self.records {
            out.merge(&r.breakdown);
        }
        out
    }

    /// Aggregate counters across all records.
    pub fn aggregate_counters(&self) -> CostCounters {
        let mut out = CostCounters::new();
        for r in &self.records {
            out.merge(&r.counters);
        }
        out
    }

    /// Per-stage worst-device time — the Fig 5 series ("stage 1 dominates").
    pub fn stage_times_s(&self) -> Vec<f64> {
        (0..self.num_stages())
            .map(|s| {
                self.records
                    .iter()
                    .filter(|r| r.stage == s)
                    .map(|r| r.breakdown.total_s())
                    .fold(0.0f64, f64::max)
            })
            .collect()
    }

    /// Aggregate breakdown of one device across stages.
    pub fn device_breakdown(&self, device: usize) -> TimeBreakdown {
        let mut out = TimeBreakdown::default();
        for r in self.records.iter().filter(|r| r.device == device) {
            out.merge(&r.breakdown);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(device: usize, stage: usize, dist: f64, comm: f64) -> StageRecord {
        StageRecord {
            device,
            stage,
            origin_chunk: (device + stage) % 4,
            breakdown: TimeBreakdown { dist_s: dist, other_s: 0.0, comm_s: comm },
            counters: CostCounters::new(),
        }
    }

    #[test]
    fn makespan_is_sum_of_stage_maxima() {
        let mut t = PipelineTimeline::new();
        t.push(rec(0, 0, 3.0, 0.1));
        t.push(rec(1, 0, 2.0, 0.1));
        t.push(rec(0, 1, 1.0, 0.1));
        t.push(rec(1, 1, 1.5, 0.1));
        // Stage 0 worst: 3.1; stage 1 worst: 1.6.
        assert!((t.makespan_s() - 4.7).abs() < 1e-12);
    }

    #[test]
    fn stage_times_reflect_first_stage_dominance() {
        let mut t = PipelineTimeline::new();
        for d in 0..4 {
            t.push(rec(d, 0, 5.0, 0.0)); // Unseeded first stage: long.
            for s in 1..4 {
                t.push(rec(d, s, 1.0, 0.0)); // Seeded stages: short.
            }
        }
        let times = t.stage_times_s();
        assert_eq!(times.len(), 4);
        assert!(times[0] > times[1] * 3.0);
    }

    #[test]
    fn aggregate_sums_device_seconds() {
        let mut t = PipelineTimeline::new();
        t.push(rec(0, 0, 1.0, 0.5));
        t.push(rec(1, 0, 2.0, 0.5));
        let agg = t.aggregate();
        assert_eq!(agg.dist_s, 3.0);
        assert_eq!(agg.comm_s, 1.0);
    }

    #[test]
    fn device_breakdown_filters() {
        let mut t = PipelineTimeline::new();
        t.push(rec(0, 0, 1.0, 0.0));
        t.push(rec(1, 0, 2.0, 0.0));
        t.push(rec(0, 1, 4.0, 0.0));
        assert_eq!(t.device_breakdown(0).dist_s, 5.0);
        assert_eq!(t.device_breakdown(1).dist_s, 2.0);
    }

    #[test]
    fn empty_timeline_is_zero() {
        let t = PipelineTimeline::new();
        assert_eq!(t.makespan_s(), 0.0);
        assert_eq!(t.num_stages(), 0);
    }
}
