//! Bridge from the simulated-clock [`CostCounters`] into the observability
//! registry.
//!
//! The simulator's counters are the source of truth for *what work
//! happened*; this module snapshots them into `pathweaver-obs` counters so
//! per-stage accounting, gpu-sim aggregates, and wall-clock spans all land
//! in one exportable registry. The bridge only reads the counters — it can
//! never perturb the deterministic simulated clock.

use crate::counters::CostCounters;

/// Adds every field of `c` to the global registry under
/// `"<prefix>.<field>"` (e.g. `pipeline.dist_calcs`).
///
/// No-op while observability is disabled.
pub fn record_counters(prefix: &str, c: &CostCounters) {
    if !pathweaver_obs::enabled() {
        return;
    }
    let r = pathweaver_obs::registry();
    for (field, value) in [
        ("dist_calcs", c.dist_calcs),
        ("quant_dist_calcs", c.quant_dist_calcs),
        ("vector_bytes", c.vector_bytes),
        ("graph_bytes", c.graph_bytes),
        ("dir_table_bytes", c.dir_table_bytes),
        ("sign_encodes", c.sign_encodes),
        ("dir_compares", c.dir_compares),
        ("hash_probes", c.hash_probes),
        ("sort_ops", c.sort_ops),
        ("rng_ops", c.rng_ops),
        ("kernel_launches", c.kernel_launches),
        ("iterations", c.iterations),
        ("nodes_visited", c.nodes_visited),
        ("comm_bytes", c.comm_bytes),
    ] {
        if value > 0 {
            r.counter(&format!("{prefix}.{field}")).add(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the process-global obs flag.
    fn flag_guard() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
        LOCK.lock()
    }

    #[test]
    fn bridge_mirrors_counters_when_enabled() {
        let _g = flag_guard();
        pathweaver_obs::set_enabled(true);
        let c = CostCounters {
            dist_calcs: 10,
            vector_bytes: 4096,
            iterations: 3,
            ..Default::default()
        };
        record_counters("bridge_test", &c);
        let snap = pathweaver_obs::global_snapshot();
        assert_eq!(snap.counters["bridge_test.dist_calcs"], 10);
        assert_eq!(snap.counters["bridge_test.vector_bytes"], 4096);
        assert_eq!(snap.counters["bridge_test.iterations"], 3);
        // Zero-valued fields are not registered at all.
        assert!(!snap.counters.contains_key("bridge_test.comm_bytes"));
        pathweaver_obs::set_enabled(false);
    }

    #[test]
    fn bridge_is_inert_when_disabled() {
        let _g = flag_guard();
        pathweaver_obs::set_enabled(false);
        let c = CostCounters { dist_calcs: 5, ..Default::default() };
        record_counters("bridge_off_test", &c);
        let snap = pathweaver_obs::global_snapshot();
        assert!(!snap.counters.contains_key("bridge_off_test.dist_calcs"));
    }
}
