//! Multi-device topology.
//!
//! Pipelining-based path extension arranges devices in a ring (paper §3.1.2):
//! device `i` forwards to `(i + 1) % N`. The paper's testbed links each GPU
//! pair with an NVLink bridge and crosses pairs over the host PCIe switch;
//! [`RingTopology::paper_testbed`] mirrors that asymmetry.

use crate::link::LinkSpec;
use serde::Serialize;

/// A unidirectional ring of `N` devices with per-edge link specs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RingTopology {
    links: Vec<LinkSpec>,
}

impl RingTopology {
    /// A homogeneous ring of `n` devices all joined by `link`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize, link: LinkSpec) -> Self {
        assert!(n > 0, "ring needs at least one device");
        Self { links: vec![link; n] }
    }

    /// The paper's 4-GPU testbed: GPUs (0,1) and (2,3) NVLink-bridged, the
    /// 1→2 and 3→0 ring edges crossing the host PCIe switch.
    pub fn paper_testbed() -> Self {
        Self {
            links: vec![
                LinkSpec::nvlink_bridge(),
                LinkSpec::pcie4_x16(),
                LinkSpec::nvlink_bridge(),
                LinkSpec::pcie4_x16(),
            ],
        }
    }

    /// Number of devices in the ring.
    pub fn num_devices(&self) -> usize {
        self.links.len()
    }

    /// The ring successor of device `i`.
    pub fn next(&self, i: usize) -> usize {
        (i + 1) % self.links.len()
    }

    /// The link from device `i` to its ring successor.
    pub fn link(&self, i: usize) -> &LinkSpec {
        &self.links[i]
    }

    /// Time for device `i` to forward `bytes` to its successor.
    pub fn forward_time(&self, i: usize, bytes: u64) -> f64 {
        if self.links.len() == 1 {
            return 0.0; // Single device: no transfer happens.
        }
        self.links[i].transfer_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps() {
        let t = RingTopology::uniform(4, LinkSpec::nvlink_bridge());
        assert_eq!(t.next(0), 1);
        assert_eq!(t.next(3), 0);
        assert_eq!(t.num_devices(), 4);
    }

    #[test]
    fn paper_testbed_shape() {
        let t = RingTopology::paper_testbed();
        assert_eq!(t.num_devices(), 4);
        assert_eq!(t.link(0).name, "nvlink-bridge");
        assert_eq!(t.link(1).name, "pcie4-x16");
    }

    #[test]
    fn single_device_forwards_free() {
        let t = RingTopology::uniform(1, LinkSpec::pcie4_x16());
        assert_eq!(t.forward_time(0, 1 << 20), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_ring_rejected() {
        let _ = RingTopology::uniform(0, LinkSpec::nvlink_bridge());
    }
}
