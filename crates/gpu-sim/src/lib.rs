//! Simulated multi-GPU substrate.
//!
//! The paper evaluates on four NVIDIA RTX A6000s (NVLink-bridged pairs over a
//! PCIe switch). This environment has no GPU, so the reproduction runs the
//! *exact search algorithm* on CPU threads while accounting every operation
//! the CUDA kernel would perform — distance computations, vector/adjacency
//! bytes streamed from device memory, hash probes, sort steps, inter-GPU
//! transfer bytes — and converts those counts into simulated kernel time with
//! a roofline cost model. The paper's own breakdown (Fig 2: >80–95 % of time
//! is L2 distance work, i.e. memory-bound vector streaming) is what makes
//! this substitution faithful: simulated time is dominated by exactly the
//! term the counters measure directly.
//!
//! Modules:
//!
//! - [`device`]: [`DeviceSpec`] — bandwidth/FLOPs of one simulated GPU, with
//!   an RTX A6000 preset.
//! - [`counters`]: [`CostCounters`] — the operation tally a kernel fills in.
//! - [`cost`]: [`CostModel`] — roofline conversion of counters to seconds,
//!   split into the paper's breakdown categories (L2 / rest-of-kernel).
//! - [`link`] and [`topology`]: NVLink/PCIe link specs and the ring topology
//!   of pipelining-based path extension.
//! - [`memory`]: per-device capacity ledger (shards must fit).
//! - [`timeline`]: per-stage records and pipeline makespan computation.
//! - [`executor`]: one OS thread per simulated device with ring work queues
//!   — the real concurrency skeleton the framework drives, in a scoped
//!   one-shot form ([`run_ring_stream`]) and a persistent multi-batch form
//!   ([`RingExecutor`]) that keeps batches overlapped in flight.
//! - [`trace`]: execution-time breakdown reports (Figs 2, 5, 12).
//! - [`obs_bridge`]: snapshots [`CostCounters`] into the `pathweaver-obs`
//!   metrics registry so simulated-clock accounting and wall-clock spans
//!   share one exportable namespace.

#![forbid(unsafe_code)]

pub mod cost;
pub mod counters;
pub mod device;
pub mod executor;
pub mod link;
pub mod memory;
pub mod obs_bridge;
pub mod timeline;
pub mod topology;
pub mod trace;

pub use cost::{CostModel, TimeBreakdown};
pub use counters::CostCounters;
pub use device::DeviceSpec;
pub use executor::{run_ring_pipeline, run_ring_stream, BatchHandle, RingExecutor, RingMessage};
pub use link::LinkSpec;
pub use memory::MemoryLedger;
pub use timeline::{PipelineTimeline, StageRecord};
pub use topology::RingTopology;
