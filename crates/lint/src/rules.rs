//! The rule catalogue and the token-pattern checkers.
//!
//! Rules are grouped by contract:
//!
//! - **D (determinism)** — the PathWeaver counters and search results must be
//!   bitwise identical across thread counts, SIMD levels, and runs; anything
//!   that injects wall-clock time, unordered iteration, or thread identity
//!   into a counted path breaks that.
//! - **U (unsafe hygiene)** — every `unsafe` surface carries a written
//!   argument, and raw-pointer tricks stay confined to audited files.
//! - **A (atomics)** — `Ordering::Relaxed` is only sound with a reason, and
//!   pointer publication must explain its synchronization.
//! - **O (observability)** — metric names follow the documented grammar so
//!   reports diff cleanly across versions.

use crate::config::Config;
use crate::context::{matching_paren, DeclKind, FileContext};
use crate::diagnostics::Finding;
use crate::lexer::{LiteralKind, Spanned, Token};
use std::path::Path;

/// Static description of one rule, used by `--explain` and the docs.
pub struct RuleInfo {
    /// Stable id (`D001`…).
    pub id: &'static str,
    /// Waiver slug (`wallclock-time`…).
    pub slug: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the rule exists — the contract it protects.
    pub rationale: &'static str,
}

/// The full rule catalogue, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        slug: "wallclock-time",
        summary: "no std::time::Instant / SystemTime outside crates/obs and crates/bench",
        rationale: "Counted paths must be replayable: the paper's PPE/GS/DGS operation \
                    counts are the experimental result, and wall-clock reads make a run's \
                    control flow depend on machine speed. Timing belongs in pathweaver-obs \
                    (Stopwatch, SpanTimer) or pathweaver-bench, where it is measured but \
                    never fed back into decisions.",
    },
    RuleInfo {
        id: "D002",
        slug: "unordered-iter",
        summary: "no HashMap/HashSet iteration feeding counters, results, or serialized output",
        rationale: "std's hash collections use a randomized hasher; iterating one and \
                    folding the items into a counter, result list, or JSON report makes \
                    output order differ run-to-run. Use BTreeMap/BTreeSet, or sort first \
                    and waive the site with `// lint: allow(unordered-iter)`.",
    },
    RuleInfo {
        id: "D003",
        slug: "thread-id",
        summary: "no thread::current().id()-dependent logic outside the pool internals",
        rationale: "Thread ids are assigned by the OS in scheduling order; branching on \
                    them (or keying data by them) couples results to the thread count and \
                    launch timing. Only the worker pool's own internals may inspect \
                    thread identity, to index its per-worker slots.",
    },
    RuleInfo {
        id: "D004",
        slug: "parallel-float-accum",
        summary: "no float accumulation across parallel_for iterations in counted paths",
        rationale: "Float addition is not associative: accumulating partial sums in an \
                    order set by how work was split across threads yields different bits \
                    at different thread counts. Counted paths must reduce floats in a \
                    fixed sequential order (or use integer/bit-exact accumulators).",
    },
    RuleInfo {
        id: "U001",
        slug: "safety-comment",
        summary: "every unsafe block/fn/impl carries a substantive // SAFETY: comment",
        rationale: "An unsafe block is a proof obligation discharged by the author; the \
                    proof must be written down next to the code, or the next refactor \
                    invalidates it silently. Boilerplate does not count: the comment must \
                    state which invariant holds and why.",
    },
    RuleInfo {
        id: "U002",
        slug: "unsafe-config",
        summary: "unsafe_op_in_unsafe_fn denied workspace-wide via [workspace.lints]",
        rationale: "Inside an `unsafe fn`, each individual unsafe operation still needs \
                    its own scoped block and argument. The workspace manifest must deny \
                    unsafe_op_in_unsafe_fn and every crate must inherit workspace lints, \
                    so the guarantee survives new crates.",
    },
    RuleInfo {
        id: "U003",
        slug: "raw-pointer",
        summary: "no transmute / raw-pointer types or casts outside allowlisted files",
        rationale: "Raw pointers and transmute erase the borrow checker's guarantees. \
                    The repo confines them to three audited files (the worker pool's job \
                    slots, the SIMD kernels, the aligned matrix storage); anywhere else \
                    they signal a design that should use safe abstractions.",
    },
    RuleInfo {
        id: "A001",
        slug: "relaxed-comment",
        summary: "every Ordering::Relaxed on a non-obs atomic needs a justification comment",
        rationale: "Relaxed gives no happens-before edges. That is fine for obs counters \
                    (monotonic, read after join) but anywhere else it must be argued: \
                    what makes the unordered access sound? The comment forces the \
                    argument to exist and survive review.",
    },
    RuleInfo {
        id: "A002",
        slug: "relaxed-publish",
        summary: "fence-free Relaxed publication through pointer atomics is flagged",
        rationale: "Storing a pointer with Relaxed publishes the pointee without a \
                    release edge; readers may observe the pointer before the pointee's \
                    initialization. Sound only when the pointee is immutable 'static data \
                    — which the adjacent comment must say.",
    },
    RuleInfo {
        id: "O001",
        slug: "metric-name",
        summary: "metric names match the documented prefix.segment grammar",
        rationale: "Reports are diffed and gated across versions; free-form metric names \
                    fracture that history. Names must be lowercase dotted paths whose \
                    first segment is a documented namespace ([metric-names] prefixes in \
                    lint.toml: pipeline, ghost, search, serve, store, qt, cluster).",
    },
    RuleInfo {
        id: "P001",
        slug: "hot-panic",
        summary: "no unwrap/expect/panic!-family macros in hot-path code",
        rationale: "Hot paths (serve, cluster RPC, durable store, search kernels) see \
                    corrupt bytes, torn frames, and crashed peers as normal operating \
                    conditions; a panic there takes down a node instead of triggering \
                    failover or a typed error (ClusterError/StoreError). assert!-family \
                    macros are exempt: they state documented caller contracts. Waive an \
                    invariant that genuinely cannot fail with `// lint: allow(hot-panic)` \
                    plus a written justification at the site.",
    },
    RuleInfo {
        id: "P002",
        slug: "hot-panic-taint",
        summary: "no panicking helper reachable from a hot-path fn (call-graph walk)",
        rationale: "A helper that panics taints every hot-path caller: moving the unwrap \
                    one function down changes nothing about the node that dies. The \
                    analysis walks an intra-crate call-graph approximation and reports \
                    the hot call site with the full chain to the panic. Fix the panic at \
                    its source, or waive it *there* — the justification then covers every \
                    path that reaches it.",
    },
    RuleInfo {
        id: "P003",
        slug: "hot-cast-index",
        summary: "no `expr[x as usize]` indexing of wire/file values on hot paths",
        rationale: "An id read off the wire or out of a segment is attacker-controlled \
                    until validated; casting it to usize and indexing panics on the first \
                    corrupt frame. Bounds-check with `.get()` and surface a typed error, \
                    or leave a comment proving the value was validated upstream.",
    },
    RuleInfo {
        id: "L001",
        slug: "lock-order-cycle",
        summary: "no cycles in the lock-acquisition graph",
        rationale: "Two threads taking the same pair of locks in opposite orders is the \
                    classic deadlock. The analysis records every lock nesting (including \
                    through intra-crate calls made while a guard is live) and reports any \
                    cycle in the resulting identity graph. Impose a single global \
                    acquisition order; the graph ships as a DOT artifact from CI.",
    },
    RuleInfo {
        id: "L002",
        slug: "lock-across-blocking",
        summary: "no lock held across channel sends, RPC, joins, or fsync",
        rationale: "A guard held across a blocking call turns one slow or dead peer into \
                    a pile-up: every thread contending for that lock stalls behind the \
                    block, and with a Condvar in the mix it becomes deadlock. Clone what \
                    the blocking call needs, drop the guard, then block. (Condvar::wait \
                    is exempt — it releases the mutex while parked.)",
    },
    RuleInfo {
        id: "W001",
        slug: "format-const-dup",
        summary: "wire/segment format constants defined exactly once",
        rationale: "Frame header lengths, section kinds, and TOC geometry are the \
                    contract between writer and reader; a second definition of the same \
                    constant is a fork of that contract waiting to drift. Each constant \
                    in a [format.*] group must have exactly one definition (optionally \
                    pinned to a canonical file), imported everywhere else.",
    },
    RuleInfo {
        id: "W002",
        slug: "format-coverage",
        summary: "every format constant handled by writer, reader, and corruption matrix",
        rationale: "A section kind added to the writer but missing from the reader \
                    dispatch or the check_store corruption matrix is a silent format \
                    fork: old readers misparse new files and the CI gate never exercises \
                    the new kind's failure modes. Every `require` constant of a \
                    [format.*] group must be referenced in every `handled_in` file.",
    },
    RuleInfo {
        id: "M001",
        slug: "metric-dead-prefix",
        summary: "every [metric-names] prefix has at least one registered metric",
        rationale: "A dead prefix in lint.toml is documentation drift: readers assume a \
                    namespace exists, dashboards query it, and nothing ever reports \
                    under it. Prefixes with zero non-test registration sites must be \
                    pruned (or the missing metric registered).",
    },
    RuleInfo {
        id: "M002",
        slug: "metric-kind-conflict",
        summary: "one metric name maps to one instrument kind",
        rationale: "Registering `x.y` as a counter in one file and a histogram in \
                    another makes the merged report ambiguous and breaks cross-version \
                    diffs. The first registration fixes the kind; later sites must \
                    agree.",
    },
];

/// Whether `slug` names a rule (used to validate `lint.toml` entries).
pub fn is_known_slug(slug: &str) -> bool {
    RULES.iter().any(|r| r.slug == slug)
}

/// Looks a rule up by id or slug for `--explain`.
pub fn find_rule(query: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id.eq_ignore_ascii_case(query) || r.slug == query)
}

/// Runs every file-level rule over one analyzed file.
pub fn check_file(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    d001_wallclock(ctx, &mut out);
    d002_unordered_iter(ctx, &mut out);
    d003_thread_id(ctx, &mut out);
    d004_parallel_float(ctx, &mut out);
    u001_safety_comment(ctx, &mut out);
    u003_raw_pointer(ctx, &mut out);
    a001_relaxed_comment(ctx, &mut out);
    a002_relaxed_publish(ctx, &mut out);
    o001_metric_name(ctx, &mut out);
    out
}

/// Pushes a finding unless the rule is disabled, allowlisted for this file,
/// or waived inline at this line.
fn emit(
    ctx: &FileContext<'_>,
    out: &mut Vec<Finding>,
    id: &'static str,
    slug: &'static str,
    line: usize,
    message: String,
) {
    if ctx.config.is_disabled(id, slug)
        || ctx.config.is_allowed(slug, &ctx.rel)
        || ctx.has_waiver(line, slug)
    {
        return;
    }
    out.push(Finding { rule: id, slug, file: ctx.rel.clone(), line, message });
}

fn ident_at(tokens: &[Spanned], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Token::Ident(n)) => Some(n.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Spanned], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Token::Punct(p)) if *p == c)
}

/// D001: wall-clock types outside the observability/bench crates.
fn d001_wallclock(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for t in ctx.tokens() {
        if let Token::Ident(n) = &t.tok {
            if (n == "Instant" || n == "SystemTime") && !ctx.in_test(t.line) {
                emit(
                    ctx,
                    out,
                    "D001",
                    "wallclock-time",
                    t.line,
                    format!(
                        "`{n}` makes control flow machine-speed dependent; use \
                         pathweaver_obs::Stopwatch (or move timing into crates/obs / \
                         crates/bench)"
                    ),
                );
            }
        }
    }
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
];

/// D002: iteration over identifiers declared as HashMap/HashSet.
fn d002_unordered_iter(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        // `name.iter()` / `name.keys()` / … where `name: HashMap<..>`.
        if let Some(name) = ident_at(tokens, i) {
            if ctx.decls.get(name) == Some(&DeclKind::HashCollection)
                && punct_at(tokens, i + 1, '.')
                && ident_at(tokens, i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
                && punct_at(tokens, i + 3, '(')
                && !ctx.in_test(tokens[i].line)
            {
                emit(
                    ctx,
                    out,
                    "D002",
                    "unordered-iter",
                    tokens[i].line,
                    format!(
                        "iteration over hash collection `{name}` has unspecified order; \
                         use BTreeMap/BTreeSet or sort and waive with \
                         `// lint: allow(unordered-iter)`"
                    ),
                );
            }
            // `for pat in [&][mut] name {` over a hash collection.
            if name == "for" {
                let mut j = i + 1;
                let mut found_in = None;
                while j < tokens.len() && j < i + 16 {
                    match &tokens[j].tok {
                        Token::Ident(n) if n == "in" => {
                            found_in = Some(j);
                            break;
                        }
                        Token::Punct('{') | Token::Punct(';') => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(in_idx) = found_in {
                    let mut k = in_idx + 1;
                    if punct_at(tokens, k, '&') {
                        k += 1;
                    }
                    if ident_at(tokens, k) == Some("mut") {
                        k += 1;
                    }
                    if let Some(iterable) = ident_at(tokens, k) {
                        if ctx.decls.get(iterable) == Some(&DeclKind::HashCollection)
                            && punct_at(tokens, k + 1, '{')
                            && !ctx.in_test(tokens[k].line)
                        {
                            emit(
                                ctx,
                                out,
                                "D002",
                                "unordered-iter",
                                tokens[k].line,
                                format!(
                                    "for-loop over hash collection `{iterable}` has \
                                     unspecified order; use BTreeMap/BTreeSet or sort and \
                                     waive with `// lint: allow(unordered-iter)`"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// D003: `thread::current().id()` outside the pool internals.
fn d003_thread_id(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("current")
            && punct_at(tokens, i + 1, '(')
            && punct_at(tokens, i + 2, ')')
            && punct_at(tokens, i + 3, '.')
            && ident_at(tokens, i + 4) == Some("id")
        {
            let preceded_by_thread = (i >= 1 && ident_at(tokens, i - 1) == Some("thread"))
                || (i >= 3
                    && ident_at(tokens, i - 3).is_some_and(|n| n.eq_ignore_ascii_case("thread")));
            if preceded_by_thread && !ctx.in_test(tokens[i].line) {
                emit(
                    ctx,
                    out,
                    "D003",
                    "thread-id",
                    tokens[i].line,
                    "thread::current().id() couples behavior to OS scheduling; only the \
                     worker pool internals may inspect thread identity"
                        .to_string(),
                );
            }
        }
    }
}

/// D004: float accumulation inside `parallel_for` bodies on counted paths.
fn d004_parallel_float(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.config.is_counted_path(&ctx.rel) {
        return;
    }
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        let is_par = matches!(ident_at(tokens, i), Some("parallel_for" | "parallel_for_spawning"));
        if !is_par || !punct_at(tokens, i + 1, '(') {
            continue;
        }
        let Some(close) = matching_paren(tokens, i + 1) else { continue };
        for j in (i + 2)..close {
            if ctx.in_test(tokens[j].line) {
                continue;
            }
            // `name += …` where `name` is float-typed.
            if let Some(name) = ident_at(tokens, j) {
                if ctx.decls.get(name) == Some(&DeclKind::Float)
                    && punct_at(tokens, j + 1, '+')
                    && punct_at(tokens, j + 2, '=')
                {
                    emit(
                        ctx,
                        out,
                        "D004",
                        "parallel-float-accum",
                        tokens[j].line,
                        format!(
                            "float accumulator `{name}` updated inside a parallel_for \
                             body; reduction order depends on the thread count — reduce \
                             sequentially or use a bit-exact accumulator"
                        ),
                    );
                }
                // `.sum::<f32>()` inside the parallel body.
                if name == "sum"
                    && punct_at(tokens, j + 1, ':')
                    && punct_at(tokens, j + 2, ':')
                    && punct_at(tokens, j + 3, '<')
                    && matches!(ident_at(tokens, j + 4), Some("f32" | "f64"))
                {
                    emit(
                        ctx,
                        out,
                        "D004",
                        "parallel-float-accum",
                        tokens[j].line,
                        "float .sum() inside a parallel_for body; reduction order must \
                         not depend on work splitting"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// U001: SAFETY comments on unsafe blocks/fns/impls.
fn u001_safety_comment(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        if ident_at(tokens, i) != Some("unsafe") {
            continue;
        }
        let construct = match tokens.get(i + 1).map(|t| &t.tok) {
            Some(Token::Punct('{')) => "unsafe block",
            Some(Token::Ident(n)) if n == "fn" => "unsafe fn",
            Some(Token::Ident(n)) if n == "impl" => "unsafe impl",
            Some(Token::Ident(n)) if n == "trait" => "unsafe trait",
            Some(Token::Ident(n)) if n == "extern" => "unsafe extern block",
            _ => continue,
        };
        let line = tokens[i].line;
        match ctx.safety_comment(line) {
            None => emit(
                ctx,
                out,
                "U001",
                "safety-comment",
                line,
                format!(
                    "{construct} without a `// SAFETY:` comment; write the argument for \
                     why the invariants hold at this site"
                ),
            ),
            Some(text) => {
                let substance = text.chars().filter(|c| c.is_alphabetic()).count();
                if substance < 10 {
                    emit(
                        ctx,
                        out,
                        "U001",
                        "safety-comment",
                        line,
                        format!(
                            "{construct} has a SAFETY comment with no argument; state \
                             which invariant holds and why"
                        ),
                    );
                }
            }
        }
    }
}

/// U003: transmute / raw-pointer types and casts outside allowlisted files.
fn u003_raw_pointer(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        if let Some(name) = ident_at(tokens, i) {
            if matches!(name, "transmute" | "from_raw_parts" | "from_raw_parts_mut")
                && punct_at(tokens, i + 1, '(')
            {
                emit(
                    ctx,
                    out,
                    "U003",
                    "raw-pointer",
                    tokens[i].line,
                    format!(
                        "`{name}` outside the allowlisted unsafe files; keep raw-pointer \
                         constructions confined to audited modules"
                    ),
                );
            }
        }
        // `*const T` / `*mut T` pointer types and casts.
        if punct_at(tokens, i, '*') && matches!(ident_at(tokens, i + 1), Some("const" | "mut")) {
            emit(
                ctx,
                out,
                "U003",
                "raw-pointer",
                tokens[i].line,
                "raw pointer type outside the allowlisted unsafe files; use references \
                 or the audited wrappers in pathweaver-util/pathweaver-vector"
                    .to_string(),
            );
        }
    }
}

/// A001: `Ordering::Relaxed` without a nearby justification comment.
fn a001_relaxed_comment(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for t in ctx.tokens() {
        if let Token::Ident(n) = &t.tok {
            if n == "Relaxed" && !ctx.in_test(t.line) && !ctx.has_comment_near(t.line, 3) {
                emit(
                    ctx,
                    out,
                    "A001",
                    "relaxed-comment",
                    t.line,
                    "Ordering::Relaxed without a justification comment; state why the \
                     access needs no happens-before edge"
                        .to_string(),
                );
            }
        }
    }
}

/// A002: Relaxed stores through `AtomicPtr` (fence-free publication).
fn a002_relaxed_publish(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        let Some(name) = ident_at(tokens, i) else { continue };
        if ctx.decls.get(name) != Some(&DeclKind::AtomicPtr)
            || !punct_at(tokens, i + 1, '.')
            || ident_at(tokens, i + 2) != Some("store")
            || !punct_at(tokens, i + 3, '(')
        {
            continue;
        }
        let Some(close) = matching_paren(tokens, i + 3) else { continue };
        let relaxed = (i + 4..close).any(|j| ident_at(tokens, j) == Some("Relaxed"));
        if relaxed && !ctx.in_test(tokens[i].line) && !ctx.has_comment_near(tokens[i].line, 4) {
            emit(
                ctx,
                out,
                "A002",
                "relaxed-publish",
                tokens[i].line,
                format!(
                    "Relaxed store through AtomicPtr `{name}` publishes a pointee with \
                     no release edge; justify (immutable 'static pointee) or use \
                     Release/Acquire"
                ),
            );
        }
    }
}

/// O001: metric-name grammar at registration call sites.
fn o001_metric_name(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens();
    for i in 0..tokens.len() {
        let Some(fn_name) = ident_at(tokens, i) else { continue };
        if !matches!(fn_name, "counter" | "gauge" | "histogram") || !punct_at(tokens, i + 1, '(') {
            continue;
        }
        // Skip definitions (`fn counter(...)`) — only call sites carry names.
        if i >= 1 && ident_at(tokens, i - 1) == Some("fn") {
            continue;
        }
        let Some(Token::Literal(LiteralKind::Str(name))) = tokens.get(i + 2).map(|t| &t.tok) else {
            continue; // dynamic names (format!) are checked at review time
        };
        if ctx.in_test(tokens[i].line) {
            continue;
        }
        if !metric_name_ok(name, &ctx.config.metric_prefixes) {
            let prefixes = ctx.config.metric_prefixes.join(", ");
            emit(
                ctx,
                out,
                "O001",
                "metric-name",
                tokens[i].line,
                format!(
                    "metric name {name:?} violates the naming grammar: expected \
                     `<prefix>.<segment>[.<segment>…]` with lowercase [a-z0-9_] segments \
                     and prefix one of [{prefixes}]"
                ),
            );
        }
    }
}

/// Validates `prefix.segment[.segment…]` with lowercase segments.
fn metric_name_ok(name: &str, prefixes: &[String]) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    if segments.len() < 2 {
        return false;
    }
    if !prefixes.iter().any(|p| p == segments[0]) {
        return false;
    }
    segments.iter().all(|seg| {
        !seg.is_empty()
            && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// U002: manifest-level checks — the workspace must deny
/// `unsafe_op_in_unsafe_fn` and every crate must inherit workspace lints.
pub fn check_manifests(root: &Path, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if config.is_disabled("U002", "unsafe-config") {
        return out;
    }
    let ws_manifest = root.join("Cargo.toml");
    match std::fs::read_to_string(&ws_manifest) {
        Ok(text) => {
            let denies = text.lines().any(|l| {
                let l = l.trim();
                l.starts_with("unsafe_op_in_unsafe_fn") && l.contains("deny")
            });
            if !denies {
                out.push(Finding {
                    rule: "U002",
                    slug: "unsafe-config",
                    file: "Cargo.toml".into(),
                    line: 1,
                    message: "workspace manifest must deny unsafe_op_in_unsafe_fn under \
                              [workspace.lints.rust]"
                        .to_string(),
                });
            }
        }
        Err(e) => out.push(Finding {
            rule: "U002",
            slug: "unsafe-config",
            file: "Cargo.toml".into(),
            line: 0,
            message: format!("cannot read workspace manifest: {e}"),
        }),
    }
    // Every crate manifest must opt into the workspace lint table.
    let crates_dir = root.join("crates");
    let mut members: Vec<std::path::PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect(),
        Err(_) => Vec::new(),
    };
    members.sort();
    for member in members {
        let manifest = member.join("Cargo.toml");
        let rel = format!(
            "crates/{}/Cargo.toml",
            member.file_name().and_then(|n| n.to_str()).unwrap_or("?")
        );
        if config.is_excluded(&rel) {
            continue;
        }
        match std::fs::read_to_string(&manifest) {
            Ok(text) => {
                let mut in_lints = false;
                let mut inherits = false;
                for line in text.lines() {
                    let line = line.trim();
                    if line.starts_with('[') {
                        in_lints = line == "[lints]";
                    } else if in_lints && line.replace(' ', "") == "workspace=true" {
                        inherits = true;
                    }
                }
                if !inherits {
                    out.push(Finding {
                        rule: "U002",
                        slug: "unsafe-config",
                        file: rel,
                        line: 1,
                        message: "crate manifest must contain `[lints] workspace = true` \
                                  to inherit the workspace lint table"
                            .to_string(),
                    });
                }
            }
            Err(e) => out.push(Finding {
                rule: "U002",
                slug: "unsafe-config",
                file: rel,
                line: 0,
                message: format!("cannot read crate manifest: {e}"),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Finding> {
        let config = Config::default();
        let ctx = FileContext::new("crates/search/src/x.rs", src, &config);
        check_file(&ctx)
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        findings(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn catalogue_is_consistent() {
        assert_eq!(RULES.len(), 19);
        assert!(is_known_slug("unordered-iter"));
        assert!(is_known_slug("hot-panic"));
        assert!(is_known_slug("hot-panic-taint"));
        assert!(is_known_slug("hot-cast-index"));
        assert!(is_known_slug("lock-order-cycle"));
        assert!(is_known_slug("lock-across-blocking"));
        assert!(is_known_slug("format-const-dup"));
        assert!(is_known_slug("format-coverage"));
        assert!(is_known_slug("metric-dead-prefix"));
        assert!(is_known_slug("metric-kind-conflict"));
        assert!(!is_known_slug("no-such-rule"));
        assert_eq!(find_rule("d002").unwrap().slug, "unordered-iter");
        assert_eq!(find_rule("safety-comment").unwrap().id, "U001");
        assert_eq!(find_rule("p002").unwrap().slug, "hot-panic-taint");
        assert_eq!(find_rule("lock-order-cycle").unwrap().id, "L001");
    }

    #[test]
    fn d001_fires_on_instant() {
        assert!(rules_of("use std::time::Instant;\n").contains(&"D001"));
        // …but not inside test modules.
        let src = "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n";
        assert!(!rules_of(src).contains(&"D001"));
    }

    #[test]
    fn d002_fires_on_hash_iteration_only() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\nfor x in m {}\n";
        assert!(rules_of(src).contains(&"D002"));
        let ok = "let m: BTreeMap<u32, u32> = BTreeMap::new();\nfor x in m {}\n";
        assert!(!rules_of(ok).contains(&"D002"));
        // Membership tests (no iteration) are fine.
        let member = "let s: HashSet<u32> = HashSet::new();\nif s.contains(&3) {}\n";
        assert!(!rules_of(member).contains(&"D002"));
    }

    #[test]
    fn d002_waiver_suppresses() {
        let src = "let m: HashMap<u32, u32> = HashMap::new();\n\
                   // lint: allow(unordered-iter)\n\
                   for x in m {}\n";
        assert!(!rules_of(src).contains(&"D002"));
    }

    #[test]
    fn u001_requires_substantive_comment() {
        assert!(rules_of("fn f() { unsafe { g() } }\n").contains(&"U001"));
        let boiler = "// SAFETY: ok\nfn f() { unsafe { g() } }\n";
        assert!(rules_of(boiler).contains(&"U001"));
        let good = "fn f() {\n    // SAFETY: g is sound here because the buffer was \
                    allocated above with the required alignment.\n    unsafe { g() }\n}\n";
        assert!(!rules_of(good).contains(&"U001"));
    }

    #[test]
    fn u003_flags_raw_pointers_outside_allowlist() {
        assert!(rules_of("let p: *const u8 = x.as_ptr();\n").contains(&"U003"));
        assert!(rules_of("let v = transmute(x);\n").contains(&"U003"));
        let config = Config::parse("[allow.raw-pointer]\nfiles = [\"crates/search/\"]\n").unwrap();
        let ctx =
            FileContext::new("crates/search/src/x.rs", "let p: *const u8 = x.as_ptr();", &config);
        assert!(check_file(&ctx).is_empty());
    }

    #[test]
    fn a001_requires_comment() {
        assert!(rules_of("c.load(Ordering::Relaxed);\n").contains(&"A001"));
        let good = "// monotonic counter, read only after the pool joins\n\
                    c.load(Ordering::Relaxed);\n";
        assert!(!rules_of(good).contains(&"A001"));
    }

    #[test]
    fn a002_flags_uncommented_ptr_publication() {
        let src = "static P: AtomicPtr<K> = AtomicPtr::new(null_mut());\n\n\n\n\n\n\
                   fn f() { P.store(p, Ordering::Relaxed); }\n";
        let r = rules_of(src);
        assert!(r.contains(&"A002"), "{r:?}");
    }

    #[test]
    fn o001_validates_metric_grammar() {
        assert!(rules_of("r.counter(\"SearchQueries\").inc();\n").contains(&"O001"));
        assert!(rules_of("r.counter(\"queries\").inc();\n").contains(&"O001"));
        assert!(rules_of("r.counter(\"rogue.queries\").inc();\n").contains(&"O001"));
        assert!(!rules_of("r.counter(\"search.queries\").inc();\n").contains(&"O001"));
        assert!(
            !rules_of("r.histogram(\"pipeline.stage0.wall_ns\").record(1);\n").contains(&"O001")
        );
        // The cluster layer's namespace is registered; its grammar is not
        // exempt.
        assert!(!rules_of("r.counter(\"cluster.failovers\").inc();\n").contains(&"O001"));
        assert!(rules_of("r.counter(\"cluster.RPC.attempts\").inc();\n").contains(&"O001"));
    }

    #[test]
    fn d004_flags_parallel_float_accumulation() {
        let src = "let total: f32 = 0.0;\nparallel_for(n, |i| {\n    total += x[i];\n});\n";
        assert!(rules_of(src).contains(&"D004"));
        let seq = "let total: f32 = 0.0;\nfor i in 0..n { total += x[i]; }\n";
        assert!(!rules_of(seq).contains(&"D004"));
    }

    #[test]
    fn d003_flags_thread_id() {
        assert!(rules_of("let id = std::thread::current().id();\n").contains(&"D003"));
    }

    #[test]
    fn metric_grammar_details() {
        let p = vec!["search".to_string()];
        assert!(metric_name_ok("search.queries", &p));
        assert!(metric_name_ok("search.dgs.skip_rate", &p));
        assert!(!metric_name_ok("search", &p));
        assert!(!metric_name_ok("search.Queries", &p));
        assert!(!metric_name_ok("search..x", &p));
        assert!(!metric_name_ok("ghost.queries", &p));
    }
}
