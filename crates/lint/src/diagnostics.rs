//! Findings and their human / machine renderings.

use std::collections::BTreeMap;

/// Version of the `--format json` report schema. Bump when the document
/// shape changes so `tools/check_lint.sh` and its committed baseline can
/// reject reports they do not understand.
pub const SCHEMA_VERSION: u32 = 2;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `D002`.
    pub rule: &'static str,
    /// Rule slug, e.g. `unordered-iter` (the waiver token).
    pub slug: &'static str,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human description of the violation.
    pub message: String,
}

/// Sorts findings into the canonical (file, line, rule) report order so the
/// output is byte-stable regardless of scan order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// `file:line: RULE [slug] message` diagnostics, one per line, plus a
/// trailing summary.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{}: {} [{}] {}\n", f.file, f.line, f.rule, f.slug, f.message));
    }
    if findings.is_empty() {
        out.push_str(&format!("pwlint: {files_scanned} files scanned, no violations\n"));
    } else {
        out.push_str(&format!(
            "pwlint: {files_scanned} files scanned, {} violation{} found\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Machine-readable report (`--format json`).
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    use serde_json::Value;
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::Str(f.rule.to_string())),
                ("slug".to_string(), Value::Str(f.slug.to_string())),
                ("file".to_string(), Value::Str(f.file.clone())),
                ("line".to_string(), Value::Num(f.line as f64)),
                ("message".to_string(), Value::Str(f.message.clone())),
            ])
        })
        .collect();
    let rules = rule_counts(findings)
        .into_iter()
        .map(|(rule, count)| (rule.to_string(), Value::Num(count as f64)))
        .collect();
    let doc = Value::Object(vec![
        ("tool".to_string(), Value::Str("pwlint".to_string())),
        ("schema_version".to_string(), Value::Num(f64::from(SCHEMA_VERSION))),
        ("files_scanned".to_string(), Value::Num(files_scanned as f64)),
        ("violation_count".to_string(), Value::Num(findings.len() as f64)),
        ("rule_counts".to_string(), Value::Object(rules)),
        ("findings".to_string(), Value::Array(items)),
    ]);
    let mut s = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".into());
    s.push('\n');
    s
}

/// Per-rule finding counts, in rule-id order.
pub fn rule_counts(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    counts
}

/// Compares the run's per-rule counts against a committed baseline document
/// (`{"schema_version": 2, "rules": {"D001": 0, …}}`; absent rules default
/// to 0). Returns one message per rule whose count exceeds its baseline —
/// the named-rule-ID regressions that fail CI.
///
/// # Errors
///
/// Returns a description when the baseline is unparseable or declares an
/// incompatible schema version.
pub fn baseline_exceedances(findings: &[Finding], baseline: &str) -> Result<Vec<String>, String> {
    use serde_json::Value;
    let doc: Value =
        serde_json::from_str(baseline).map_err(|e| format!("unparseable baseline: {e}"))?;
    let version = doc["schema_version"].as_f64().unwrap_or(0.0);
    if version != f64::from(SCHEMA_VERSION) {
        return Err(format!(
            "baseline schema_version {version} does not match pwlint schema {SCHEMA_VERSION}; \
             regenerate the baseline"
        ));
    }
    let mut allowed: BTreeMap<String, usize> = BTreeMap::new();
    if let Value::Object(fields) = &doc["rules"] {
        for (rule, v) in fields {
            allowed.insert(rule.clone(), v.as_f64().unwrap_or(0.0) as usize);
        }
    }
    let mut exceeded = Vec::new();
    for (rule, count) in rule_counts(findings) {
        let base = allowed.get(rule).copied().unwrap_or(0);
        if count > base {
            exceeded.push(format!("rule {rule} has {count} finding(s), baseline allows {base}"));
        }
    }
    Ok(exceeded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: "D002",
                slug: "unordered-iter",
                file: "crates/x/src/lib.rs".into(),
                line: 9,
                message: "iteration over HashMap".into(),
            },
            Finding {
                rule: "D001",
                slug: "wallclock-time",
                file: "crates/a/src/lib.rs".into(),
                line: 3,
                message: "Instant".into(),
            },
        ]
    }

    #[test]
    fn sorted_by_file_then_line() {
        let mut f = sample();
        sort_findings(&mut f);
        assert_eq!(f[0].rule, "D001");
        assert_eq!(f[1].rule, "D002");
    }

    #[test]
    fn human_render_has_spans_and_summary() {
        let f = sample();
        let text = render_human(&f, 7);
        assert!(text.contains("crates/x/src/lib.rs:9: D002 [unordered-iter]"));
        assert!(text.contains("7 files scanned, 2 violations"));
    }

    #[test]
    fn json_render_is_parseable() {
        let f = sample();
        let text = render_json(&f, 7);
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["schema_version"].as_f64(), Some(f64::from(SCHEMA_VERSION)));
        assert_eq!(v["violation_count"].as_f64(), Some(2.0));
        assert_eq!(v["files_scanned"].as_f64(), Some(7.0));
        assert_eq!(v["rule_counts"]["D001"].as_f64(), Some(1.0));
        let first = &v["findings"].as_array().unwrap()[0];
        assert_eq!(first["rule"].as_str(), Some("D002"));
        assert_eq!(first["line"].as_f64(), Some(9.0));
    }

    #[test]
    fn baseline_diff_names_the_exceeding_rule() {
        let f = sample();
        // Zero baseline: both rules exceed.
        let zero = r#"{"schema_version": 2, "rules": {}}"#;
        let msgs = baseline_exceedances(&f, zero).unwrap();
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].contains("rule D001"), "{msgs:?}");
        // Baseline admitting both counts: clean.
        let loose = r#"{"schema_version": 2, "rules": {"D001": 1, "D002": 1}}"#;
        assert!(baseline_exceedances(&f, loose).unwrap().is_empty());
        // Wrong schema version is a hard error, not a silent pass.
        let old = r#"{"schema_version": 1, "rules": {}}"#;
        assert!(baseline_exceedances(&f, old).is_err());
        assert!(baseline_exceedances(&f, "not json").is_err());
    }
}
