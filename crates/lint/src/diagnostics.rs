//! Findings and their human / machine renderings.

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `D002`.
    pub rule: &'static str,
    /// Rule slug, e.g. `unordered-iter` (the waiver token).
    pub slug: &'static str,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human description of the violation.
    pub message: String,
}

/// Sorts findings into the canonical (file, line, rule) report order so the
/// output is byte-stable regardless of scan order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// `file:line: RULE [slug] message` diagnostics, one per line, plus a
/// trailing summary.
pub fn render_human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{}: {} [{}] {}\n", f.file, f.line, f.rule, f.slug, f.message));
    }
    if findings.is_empty() {
        out.push_str(&format!("pwlint: {files_scanned} files scanned, no violations\n"));
    } else {
        out.push_str(&format!(
            "pwlint: {files_scanned} files scanned, {} violation{} found\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Machine-readable report (`--format json`).
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    use serde_json::Value;
    let items: Vec<Value> = findings
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("rule".to_string(), Value::Str(f.rule.to_string())),
                ("slug".to_string(), Value::Str(f.slug.to_string())),
                ("file".to_string(), Value::Str(f.file.clone())),
                ("line".to_string(), Value::Num(f.line as f64)),
                ("message".to_string(), Value::Str(f.message.clone())),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("tool".to_string(), Value::Str("pwlint".to_string())),
        ("files_scanned".to_string(), Value::Num(files_scanned as f64)),
        ("violation_count".to_string(), Value::Num(findings.len() as f64)),
        ("findings".to_string(), Value::Array(items)),
    ]);
    let mut s = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| "{}".into());
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: "D002",
                slug: "unordered-iter",
                file: "crates/x/src/lib.rs".into(),
                line: 9,
                message: "iteration over HashMap".into(),
            },
            Finding {
                rule: "D001",
                slug: "wallclock-time",
                file: "crates/a/src/lib.rs".into(),
                line: 3,
                message: "Instant".into(),
            },
        ]
    }

    #[test]
    fn sorted_by_file_then_line() {
        let mut f = sample();
        sort_findings(&mut f);
        assert_eq!(f[0].rule, "D001");
        assert_eq!(f[1].rule, "D002");
    }

    #[test]
    fn human_render_has_spans_and_summary() {
        let f = sample();
        let text = render_human(&f, 7);
        assert!(text.contains("crates/x/src/lib.rs:9: D002 [unordered-iter]"));
        assert!(text.contains("7 files scanned, 2 violations"));
    }

    #[test]
    fn json_render_is_parseable() {
        let f = sample();
        let text = render_json(&f, 7);
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["violation_count"].as_f64(), Some(2.0));
        assert_eq!(v["files_scanned"].as_f64(), Some(7.0));
        let first = &v["findings"].as_array().unwrap()[0];
        assert_eq!(first["rule"].as_str(), Some("D002"));
        assert_eq!(first["line"].as_f64(), Some(9.0));
    }
}
