//! Cross-file, symbol-aware rules: panic-freedom on hot paths (P-rules),
//! lock discipline (L-rules), wire/segment format consistency (W-rules), and
//! metric cross-checks (M-rules).
//!
//! Built on [`crate::parser`]'s item parse, this module approximates an
//! intra-crate call graph by name resolution:
//!
//! - `Type::name(...)` resolves to methods of `Type` in the same crate
//!   (lowercase qualifiers also try free functions, for `module::fn` paths);
//! - bare `name(...)` resolves to free functions of the same crate;
//! - `.name(...)` resolves to any same-crate method of that name, except a
//!   stoplist of ubiquitous std method names that would create false edges.
//!
//! The approximation is deliberately conservative in one direction: a
//! panicking helper *taints* every resolvable caller, and a waiver at the
//! panic site (`// lint: allow(hot-panic)`) is the only way to cut the edge —
//! so the justification lives next to the panic, not at each call site.

use crate::config::Config;
use crate::context::FileContext;
use crate::diagnostics::Finding;
use crate::lexer::{LiteralKind, Spanned, Token};
use crate::parser::{parse_items, ParsedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Method names too generic to resolve intra-crate: these are almost always
/// std-library calls, and resolving them by bare name would wire false
/// call-graph edges into unrelated types that happen to share the name.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "borrow",
    "borrow_mut",
    "bytes",
    "capacity",
    "chain",
    "chars",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_sub",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "clone_from_slice",
    "cloned",
    "cmp",
    "collect",
    "concat",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "default",
    "display",
    "drain",
    "drop",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "expect_err",
    "extend",
    "extend_from_slice",
    "extension",
    "fill",
    "filter",
    "filter_map",
    "find",
    "finish",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_err",
    "is_file",
    "is_finite",
    "is_nan",
    "is_none",
    "is_ok",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "metadata",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "notify_all",
    "notify_one",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "parse",
    "partial_cmp",
    "partition_point",
    "path",
    "pop",
    "position",
    "pow",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "read_exact",
    "recv",
    "recv_timeout",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "round",
    "saturating_add",
    "saturating_sub",
    "send",
    "set_len",
    "skip",
    "sleep",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "spawn",
    "sqrt",
    "starts_with",
    "store",
    "sum",
    "swap",
    "swap_remove",
    "sync_all",
    "sync_data",
    "take",
    "to_le_bytes",
    "to_owned",
    "to_path_buf",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_from",
    "try_into",
    "try_recv",
    "unwrap",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "wait",
    "wait_timeout",
    "windows",
    "with_capacity",
    "wrapping_add",
    "wrapping_sub",
    "write",
    "write_all",
    "zip",
];

/// Keywords that look like `name(` but are control flow, not calls.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "else", "fn", "for", "if", "impl", "in", "let", "loop",
    "match", "mod", "move", "mut", "pub", "ref", "return", "static", "struct", "trait", "type",
    "unsafe", "use", "where", "while",
];

/// Calls that block the current thread: holding a lock across one of these
/// stalls every other party contending for the lock (L002). `Condvar::wait`
/// is deliberately absent — it releases the mutex while parked.
const BLOCKING_CALLS: &[&str] = &[
    "accept",
    "connect",
    "join",
    "read_exact",
    "recv",
    "recv_timeout",
    "request",
    "send",
    "sleep",
    "sync_all",
    "sync_data",
    "write_all",
];

/// Macros whose expansion panics unconditionally. `assert!`-family macros are
/// excluded: they state documented contracts, and flagging them would push
/// authors toward deleting checks rather than handling errors.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// How a function came to be considered panicking.
#[derive(Debug, Clone)]
enum Taint {
    /// The body itself contains the panic construct.
    Direct { line: usize, what: String },
    /// It calls a tainted function (`callee` index).
    Via { callee: usize },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
struct CallSite {
    name: String,
    qual: Option<String>,
    method: bool,
    line: usize,
}

/// One analyzed function: graph node plus everything scanned from its body.
struct FnNode {
    file: usize,
    name: String,
    qual: Option<String>,
    crate_name: String,
    hot: bool,
    calls: Vec<CallSite>,
    /// Direct panic constructs: (line, description), waived sites excluded.
    panics: Vec<(usize, String)>,
    /// Lock identities acquired directly in this body.
    lock_acquired: BTreeSet<String>,
    /// (held identity, acquired identity, line) nesting edges in this body.
    lock_edges: Vec<(String, String, usize)>,
    /// (held identity, lock line, blocking call name, line).
    lock_blocking: Vec<(String, usize, String, usize)>,
    /// (call index into `calls`, identities held at the call).
    calls_under_lock: Vec<(usize, Vec<String>)>,
    /// Lines with `expr[... as usize ...]` indexing (P003 candidates).
    cast_index_lines: Vec<usize>,
}

/// Runs every cross-file rule over the analyzed file set. Returns the
/// findings plus the lock-acquisition graph rendered as Graphviz DOT.
/// `workspace_mode` gates the rules that need the whole workspace in view
/// (dead-metric detection, missing-definition checks): a partial file list
/// cannot distinguish "unused" from "not scanned".
pub fn check(
    ctxs: &[FileContext<'_>],
    config: &Config,
    workspace_mode: bool,
) -> (Vec<Finding>, String) {
    let mut out = Vec::new();
    let parsed: Vec<ParsedFile> = ctxs.iter().map(|c| parse_items(c.tokens())).collect();
    let nodes = build_nodes(ctxs, &parsed, config);
    let resolved = resolve_calls(&nodes);

    p_rules(ctxs, config, &nodes, &resolved, &mut out);
    let dot = l_rules(ctxs, config, &nodes, &resolved, &mut out);
    w_rules(ctxs, config, &parsed, workspace_mode, &mut out);
    m_rules(ctxs, config, workspace_mode, &mut out);
    (out, dot)
}

/// Pushes a finding unless disabled, allowlisted, or waived at the site.
#[allow(clippy::too_many_arguments)]
fn cemit(
    ctx: Option<&FileContext<'_>>,
    config: &Config,
    out: &mut Vec<Finding>,
    id: &'static str,
    slug: &'static str,
    file: String,
    line: usize,
    message: String,
) {
    if config.is_disabled(id, slug) || config.is_allowed(slug, &file) {
        return;
    }
    if let Some(ctx) = ctx {
        if ctx.has_waiver(line, slug) {
            return;
        }
    }
    out.push(Finding { rule: id, slug, file, line, message });
}

fn ident_at(tokens: &[Spanned], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Token::Ident(n)) => Some(n.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Spanned], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Token::Punct(p)) if *p == c)
}

/// Crate name of a workspace-relative path (`crates/<name>/…`), or `"root"`.
fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "root".to_string()
}

// ------------------------------------------------------------- body scans

/// Builds one [`FnNode`] per non-test function, scanning each body once.
fn build_nodes(ctxs: &[FileContext<'_>], parsed: &[ParsedFile], config: &Config) -> Vec<FnNode> {
    let mut nodes = Vec::new();
    for (fi, (ctx, pf)) in ctxs.iter().zip(parsed).enumerate() {
        let hot = config.is_hot(&ctx.rel);
        let crate_name = crate_of(&ctx.rel);
        for (k, f) in pf.fns.iter().enumerate() {
            if ctx.in_test(f.line) {
                continue;
            }
            // Token ranges of nested fn items, excluded from this body's
            // direct scan (they are their own nodes).
            let children: Vec<(usize, usize)> = pf
                .fns
                .iter()
                .enumerate()
                .filter(|&(j, c)| j != k && c.body.0 > f.body.0 && c.body.1 < f.body.1)
                .map(|(_, c)| c.body)
                .collect();
            let mut node = FnNode {
                file: fi,
                name: f.name.clone(),
                qual: f.qual.clone(),
                crate_name: crate_name.clone(),
                hot,
                calls: Vec::new(),
                panics: Vec::new(),
                lock_acquired: BTreeSet::new(),
                lock_edges: Vec::new(),
                lock_blocking: Vec::new(),
                calls_under_lock: Vec::new(),
                cast_index_lines: Vec::new(),
            };
            scan_body(ctx, f.body, &children, &mut node);
            nodes.push(node);
        }
    }
    nodes
}

/// Whether token index `i` falls inside any excluded child range.
fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(s, e)| i >= s && i <= e)
}

/// A lock guard live during the linear body walk.
struct LiveGuard {
    identity: String,
    var: Option<String>,
    depth: usize,
    line: usize,
    /// Temporary guard (chained `x.lock().f()`): dies at the statement end.
    temp: bool,
}

/// One pass over a fn body collecting panic sites, calls, lock events, and
/// cast-index sites. Guard scopes are tracked with a brace-depth counter:
/// let-bound guards die when their block closes (or at `drop(guard)`);
/// chained temporaries die at the next `;` or `{` at their own depth.
fn scan_body(
    ctx: &FileContext<'_>,
    body: (usize, usize),
    children: &[(usize, usize)],
    node: &mut FnNode,
) {
    let tokens = ctx.tokens();
    let (open, close) = body;
    let mut depth = 0usize;
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut i = open + 1;
    while i < close {
        if in_ranges(children, i) {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        match &tokens[i].tok {
            Token::Punct('{') => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                depth += 1;
            }
            Token::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            Token::Punct(';') => {
                guards.retain(|g| !(g.temp && g.depth == depth));
            }
            Token::Punct('[') => {
                // `expr[ … as usize … ]` indexing with a cast in the index.
                let indexing = i > open + 1
                    && matches!(
                        tokens[i - 1].tok,
                        Token::Ident(_) | Token::Punct(']') | Token::Punct(')')
                    );
                if indexing {
                    if let Some(cl) = matching_bracket(tokens, i) {
                        let cast = (i + 1..cl).any(|j| {
                            ident_at(tokens, j) == Some("as")
                                && ident_at(tokens, j + 1) == Some("usize")
                        });
                        if cast && !node.cast_index_lines.contains(&line) {
                            node.cast_index_lines.push(line);
                        }
                    }
                }
            }
            Token::Ident(name) => {
                let n = name.as_str();
                // Panic macros: `panic!(…)`, `unreachable!(…)`, ….
                if PANIC_MACROS.contains(&n) && punct_at(tokens, i + 1, '!') {
                    record_panic(ctx, node, line, format!("{n}! macro"));
                }
                // `.unwrap()` / `.expect(…)` method calls.
                if (n == "unwrap" || n == "expect")
                    && i > 0
                    && punct_at(tokens, i - 1, '.')
                    && punct_at(tokens, i + 1, '(')
                {
                    record_panic(ctx, node, line, format!(".{n}()"));
                }
                // `.lock()` acquisition.
                if n == "lock"
                    && i > 0
                    && punct_at(tokens, i - 1, '.')
                    && punct_at(tokens, i + 1, '(')
                    && punct_at(tokens, i + 2, ')')
                {
                    let identity = receiver_name(tokens, i - 1);
                    for g in &guards {
                        if g.identity != identity {
                            node.lock_edges.push((g.identity.clone(), identity.clone(), line));
                        }
                    }
                    node.lock_acquired.insert(identity.clone());
                    let temp = punct_at(tokens, i + 3, '.');
                    let var = if temp { None } else { binding_var(tokens, i) };
                    let temp = temp || var.is_none();
                    guards.push(LiveGuard { identity, var, depth, line, temp });
                    i += 3;
                    continue;
                }
                // `drop(guard)` releases a named guard early.
                if n == "drop" && punct_at(tokens, i + 1, '(') {
                    if let Some(v) = ident_at(tokens, i + 2) {
                        if punct_at(tokens, i + 3, ')') {
                            guards.retain(|g| g.var.as_deref() != Some(v));
                        }
                    }
                }
                // Blocking calls while a guard is live.
                if BLOCKING_CALLS.contains(&n) && punct_at(tokens, i + 1, '(') {
                    for g in &guards {
                        node.lock_blocking.push((g.identity.clone(), g.line, n.to_string(), line));
                    }
                }
                // Call sites (for the call graph).
                if punct_at(tokens, i + 1, '(')
                    && !KEYWORDS.contains(&n)
                    && ident_at(tokens, i.wrapping_sub(1)) != Some("fn")
                {
                    let call = classify_call(tokens, i);
                    if let Some(call) = call {
                        if !guards.is_empty() {
                            let held = guards.iter().map(|g| g.identity.clone()).collect();
                            node.calls_under_lock.push((node.calls.len(), held));
                        }
                        node.calls.push(call);
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Records a direct panic site unless a waiver or file allowlist covers it —
/// a waived site neither reports nor taints callers, so the justification
/// written at the panic covers every path that reaches it.
fn record_panic(ctx: &FileContext<'_>, node: &mut FnNode, line: usize, what: String) {
    if ctx.has_waiver(line, "hot-panic")
        || ctx.has_waiver(line, "hot-panic-taint")
        || ctx.config.is_allowed("hot-panic", &ctx.rel)
        || ctx.config.is_allowed("hot-panic-taint", &ctx.rel)
    {
        return;
    }
    node.panics.push((line, what));
}

/// Classifies the call at token `i` (an ident followed by `(`).
fn classify_call(tokens: &[Spanned], i: usize) -> Option<CallSite> {
    let name = ident_at(tokens, i)?.to_string();
    let line = tokens[i].line;
    if i >= 1 && punct_at(tokens, i - 1, '.') {
        if STD_METHODS.contains(&name.as_str()) {
            return None;
        }
        return Some(CallSite { name, qual: None, method: true, line });
    }
    if i >= 3 && punct_at(tokens, i - 1, ':') && punct_at(tokens, i - 2, ':') {
        let qual = ident_at(tokens, i - 3)?.to_string();
        return Some(CallSite { name, qual: Some(qual), method: false, line });
    }
    Some(CallSite { name, qual: None, method: false, line })
}

/// Index of the `]` matching the `[` at `open`, if any.
fn matching_bracket(tokens: &[Spanned], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Token::Punct('[') => depth += 1,
            Token::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// The lock identity: the final field or binding name of the receiver chain
/// before `.lock()` — `self.inner.state.lock()` locks `state`,
/// `lists[u].lock()` locks `lists`.
fn receiver_name(tokens: &[Spanned], dot_idx: usize) -> String {
    if dot_idx == 0 {
        return "anon".to_string();
    }
    let j = dot_idx - 1;
    if let Some(n) = ident_at(tokens, j) {
        return n.to_string();
    }
    if punct_at(tokens, j, ']') || punct_at(tokens, j, ')') {
        let (open_c, close_c) = if punct_at(tokens, j, ']') { ('[', ']') } else { ('(', ')') };
        let mut depth = 0i32;
        let mut k = j;
        loop {
            match &tokens[k].tok {
                Token::Punct(c) if *c == close_c => depth += 1,
                Token::Punct(c) if *c == open_c => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                break;
            }
            k -= 1;
        }
        if k >= 1 {
            if let Some(n) = ident_at(tokens, k - 1) {
                return n.to_string();
            }
        }
    }
    "anon".to_string()
}

/// For a direct `let g = receiver.lock();` statement, the binding name `g`.
/// Walks left over the receiver chain; anything other than `… = ` (including
/// destructuring or a bare `match x.lock()`) yields `None`.
fn binding_var(tokens: &[Spanned], lock_idx: usize) -> Option<String> {
    let mut j = lock_idx.checked_sub(2)?;
    loop {
        let chain = matches!(
            tokens.get(j).map(|t| &t.tok),
            Some(Token::Ident(_))
                | Some(Token::Punct('.'))
                | Some(Token::Punct('['))
                | Some(Token::Punct(']'))
                | Some(Token::Literal(_))
        );
        if !chain {
            break;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    if !punct_at(tokens, j, '=') || punct_at(tokens, j.wrapping_sub(1), '=') {
        return None;
    }
    let v = ident_at(tokens, j.checked_sub(1)?)?;
    if v == "mut" {
        return None;
    }
    Some(v.to_string())
}

// ------------------------------------------------------------- resolution

/// Resolved call edges: for each node, the indices of candidate callees.
fn resolve_calls(nodes: &[FnNode]) -> Vec<Vec<Vec<usize>>> {
    // Per-crate lookup tables.
    let mut by_qual: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (idx, n) in nodes.iter().enumerate() {
        match &n.qual {
            Some(q) => {
                by_qual
                    .entry((n.crate_name.clone(), q.clone(), n.name.clone()))
                    .or_default()
                    .push(idx);
                methods.entry((n.crate_name.clone(), n.name.clone())).or_default().push(idx);
            }
            None => {
                free.entry((n.crate_name.clone(), n.name.clone())).or_default().push(idx);
            }
        }
    }
    nodes
        .iter()
        .map(|n| {
            n.calls
                .iter()
                .map(|c| {
                    let krate = n.crate_name.clone();
                    if c.method {
                        return methods.get(&(krate, c.name.clone())).cloned().unwrap_or_default();
                    }
                    if let Some(q) = &c.qual {
                        // `Self::helper(...)` refers to the caller's own type.
                        let q = if q == "Self" {
                            n.qual.clone().unwrap_or_default()
                        } else {
                            q.clone()
                        };
                        let mut cands = by_qual
                            .get(&(krate.clone(), q.clone(), c.name.clone()))
                            .cloned()
                            .unwrap_or_default();
                        // Lowercase qualifier: a module path (`wire::decode`)
                        // — the target is a free fn.
                        if cands.is_empty() && q.chars().next().is_some_and(|ch| ch.is_lowercase())
                        {
                            cands = free.get(&(krate, c.name.clone())).cloned().unwrap_or_default();
                        }
                        return cands;
                    }
                    free.get(&(krate, c.name.clone())).cloned().unwrap_or_default()
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------- P-rules

fn fn_label(n: &FnNode) -> String {
    match &n.qual {
        Some(q) => format!("{q}::{}", n.name),
        None => n.name.clone(),
    }
}

/// P001 (direct panic on hot path), P002 (panicking helper reachable from a
/// hot-path fn), P003 (wire-value cast used directly as an index).
fn p_rules(
    ctxs: &[FileContext<'_>],
    config: &Config,
    nodes: &[FnNode],
    resolved: &[Vec<Vec<usize>>],
    out: &mut Vec<Finding>,
) {
    // Taint fixpoint over reversed call edges.
    let mut taint: BTreeMap<usize, Taint> = BTreeMap::new();
    let mut callers: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new(); // callee -> (caller, call line)
    let mut work: Vec<usize> = Vec::new();
    for (idx, n) in nodes.iter().enumerate() {
        if let Some((line, what)) = n.panics.first() {
            taint.insert(idx, Taint::Direct { line: *line, what: what.clone() });
            work.push(idx);
        }
        for (ci, cands) in resolved[idx].iter().enumerate() {
            for &callee in cands {
                callers.entry(callee).or_default().push((idx, n.calls[ci].line));
            }
        }
    }
    while let Some(callee) = work.pop() {
        let Some(ups) = callers.get(&callee) else { continue };
        for &(caller, _line) in ups.clone().iter() {
            if let std::collections::btree_map::Entry::Vacant(e) = taint.entry(caller) {
                e.insert(Taint::Via { callee });
                work.push(caller);
            }
        }
    }

    for (idx, n) in nodes.iter().enumerate() {
        if !n.hot {
            continue;
        }
        let ctx = &ctxs[n.file];
        // P001: direct sites.
        for (line, what) in &n.panics {
            cemit(
                Some(ctx),
                config,
                out,
                "P001",
                "hot-panic",
                ctx.rel.clone(),
                *line,
                format!(
                    "{what} in hot-path fn `{}`; corrupt or torn input must surface as a \
                     typed error (ClusterError/StoreError), not a panic",
                    fn_label(n)
                ),
            );
        }
        // P003: cast-index sites.
        for line in &n.cast_index_lines {
            if ctx.has_comment_near(*line, 2) {
                continue;
            }
            cemit(
                Some(ctx),
                config,
                out,
                "P003",
                "hot-cast-index",
                ctx.rel.clone(),
                *line,
                format!(
                    "indexing with an `as usize` cast in hot-path fn `{}`; a wire or file \
                     value used as an index panics on corrupt input — bounds-check with \
                     `.get()` (or add a justification comment)",
                    fn_label(n)
                ),
            );
        }
        // P002: calls into tainted helpers. One finding per (line, callee).
        let mut seen: BTreeSet<(usize, String)> = BTreeSet::new();
        for (ci, cands) in resolved[idx].iter().enumerate() {
            let call = &n.calls[ci];
            let Some(&tainted) = cands.iter().find(|c| taint.contains_key(c)) else { continue };
            if !seen.insert((call.line, call.name.clone())) {
                continue;
            }
            let chain = taint_chain(nodes, ctxs, &taint, tainted);
            cemit(
                Some(ctx),
                config,
                out,
                "P002",
                "hot-panic-taint",
                ctx.rel.clone(),
                call.line,
                format!(
                    "hot-path fn `{}` reaches a panic through `{}`: {chain}; convert the \
                     panic to a typed error or waive it at the panic site with \
                     `// lint: allow(hot-panic)` plus a justification",
                    fn_label(n),
                    call.name
                ),
            );
        }
    }
}

/// Renders the taint chain from `start` down to the direct panic site.
fn taint_chain(
    nodes: &[FnNode],
    ctxs: &[FileContext<'_>],
    taint: &BTreeMap<usize, Taint>,
    start: usize,
) -> String {
    let mut parts = Vec::new();
    let mut cur = start;
    for _ in 0..6 {
        let n = &nodes[cur];
        match taint.get(&cur) {
            Some(Taint::Direct { line, what }) => {
                parts.push(format!("`{}` has {what} at {}:{line}", fn_label(n), ctxs[n.file].rel));
                return parts.join(" -> ");
            }
            Some(Taint::Via { callee }) => {
                parts.push(format!("`{}`", fn_label(n)));
                cur = *callee;
            }
            None => break,
        }
    }
    parts.push("…".to_string());
    parts.join(" -> ")
}

// ---------------------------------------------------------------- L-rules

/// L001 (acquisition-order cycles) and L002 (lock held across a blocking
/// call). Returns the lock-acquisition graph as DOT for the CI artifact.
fn l_rules(
    ctxs: &[FileContext<'_>],
    config: &Config,
    nodes: &[FnNode],
    resolved: &[Vec<Vec<usize>>],
    out: &mut Vec<Finding>,
) -> String {
    // L002: direct blocking calls under a live guard.
    for n in nodes {
        let ctx = &ctxs[n.file];
        for (identity, lock_line, blocked, line) in &n.lock_blocking {
            cemit(
                Some(ctx),
                config,
                out,
                "L002",
                "lock-across-blocking",
                ctx.rel.clone(),
                *line,
                format!(
                    "lock `{identity}` (acquired at line {lock_line}) held across blocking \
                     `{blocked}()` in `{}`; move the blocking call outside the critical \
                     section or clone what it needs and drop the guard first",
                    fn_label(n)
                ),
            );
        }
    }

    // Transitive acquires sets (which identities can a call pull in?).
    let mut acquires: Vec<BTreeSet<String>> =
        nodes.iter().map(|n| n.lock_acquired.clone()).collect();
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 32 {
        changed = false;
        rounds += 1;
        for idx in 0..nodes.len() {
            for cands in &resolved[idx] {
                for &callee in cands {
                    if callee == idx {
                        continue;
                    }
                    let extra: Vec<String> = acquires[callee]
                        .iter()
                        .filter(|id| !acquires[idx].contains(*id))
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        changed = true;
                        acquires[idx].extend(extra);
                    }
                }
            }
        }
    }

    // Edge set: direct nesting edges plus call-under-lock edges.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for (idx, n) in nodes.iter().enumerate() {
        let rel = &ctxs[n.file].rel;
        for (from, to, line) in &n.lock_edges {
            edges.entry((from.clone(), to.clone())).or_insert((rel.clone(), *line));
        }
        for (ci, held) in &n.calls_under_lock {
            let line = n.calls[*ci].line;
            for cands in resolved[idx].get(*ci).into_iter() {
                for &callee in cands {
                    for acq in &acquires[callee] {
                        for h in held {
                            if h != acq {
                                edges
                                    .entry((h.clone(), acq.clone()))
                                    .or_insert((rel.clone(), line));
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the identity graph.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for cycle in find_cycles(&adj) {
        let mut canon = cycle.clone();
        canon.sort();
        if !reported.insert(canon) {
            continue;
        }
        // Report at the first edge's acquisition site.
        let first = (cycle[0].clone(), cycle[1 % cycle.len()].clone());
        let (file, line) = edges.get(&first).cloned().unwrap_or(("lint.toml".into(), 0));
        let path = cycle.join(" -> ");
        let ctx = ctxs.iter().find(|c| c.rel == file);
        cemit(
            ctx,
            config,
            out,
            "L001",
            "lock-order-cycle",
            file,
            line,
            format!(
                "lock acquisition cycle {path} -> {}; two threads taking these locks in \
                 opposite orders deadlock — impose a single acquisition order",
                cycle[0]
            ),
        );
    }

    // DOT rendering (stable order; edges labeled with one witness site).
    let mut dot = String::from("digraph lock_order {\n");
    let mut nodes_seen: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in edges.keys() {
        nodes_seen.insert(from);
        nodes_seen.insert(to);
    }
    for n in &nodes_seen {
        dot.push_str(&format!("  \"{n}\";\n"));
    }
    for ((from, to), (file, line)) in &edges {
        dot.push_str(&format!("  \"{from}\" -> \"{to}\" [label=\"{file}:{line}\"];\n"));
    }
    dot.push_str("}\n");
    dot
}

/// All elementary cycles reachable by DFS (each reported once by its path).
fn find_cycles(adj: &BTreeMap<&str, Vec<&str>>) -> Vec<Vec<String>> {
    let mut cycles = Vec::new();
    for &start in adj.keys() {
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into_iter().collect();
        dfs_cycles(adj, start, start, &mut path, &mut on_path, &mut cycles, 0);
    }
    cycles
}

fn dfs_cycles<'g>(
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
    start: &'g str,
    cur: &'g str,
    path: &mut Vec<&'g str>,
    on_path: &mut BTreeSet<&'g str>,
    cycles: &mut Vec<Vec<String>>,
    depth: usize,
) {
    if depth > 8 {
        return;
    }
    for &next in adj.get(cur).map(Vec::as_slice).unwrap_or(&[]) {
        if next == start {
            cycles.push(path.iter().map(|s| s.to_string()).collect());
            continue;
        }
        // Only walk "forward" from the smallest node so every cycle is
        // discovered exactly once, from its lexicographically least member.
        if next < start || on_path.contains(next) {
            continue;
        }
        path.push(next);
        on_path.insert(next);
        dfs_cycles(adj, start, next, path, on_path, cycles, depth + 1);
        on_path.remove(next);
        path.pop();
    }
}

// ---------------------------------------------------------------- W-rules

/// W001 (format constants defined exactly once, in the right home) and W002
/// (every required constant referenced by every writer/reader/matrix file).
fn w_rules(
    ctxs: &[FileContext<'_>],
    config: &Config,
    parsed: &[ParsedFile],
    workspace_mode: bool,
    out: &mut Vec<Finding>,
) {
    if config.format_groups.is_empty() {
        return;
    }
    // name -> definition sites, across the scanned set.
    let mut defs: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, pf) in parsed.iter().enumerate() {
        for c in &pf.consts {
            defs.entry(c.name.as_str()).or_default().push((fi, c.line));
        }
    }
    // Per-file ident sets for the coverage check.
    let idents: Vec<BTreeSet<&str>> = ctxs
        .iter()
        .map(|c| {
            c.tokens()
                .iter()
                .filter_map(|t| match &t.tok {
                    Token::Ident(n) => Some(n.as_str()),
                    _ => None,
                })
                .collect()
        })
        .collect();

    for group in &config.format_groups {
        for name in &group.consts {
            let sites = defs.get(name.as_str()).cloned().unwrap_or_default();
            if sites.is_empty() {
                if workspace_mode {
                    cemit(
                        None,
                        config,
                        out,
                        "W001",
                        "format-const-dup",
                        "lint.toml".to_string(),
                        0,
                        format!(
                            "format constant `{name}` of group [format.{}] is not defined \
                             anywhere in the workspace",
                            group.name
                        ),
                    );
                }
                continue;
            }
            for &(fi, line) in sites.iter().skip(1) {
                let ctx = &ctxs[fi];
                cemit(
                    Some(ctx),
                    config,
                    out,
                    "W001",
                    "format-const-dup",
                    ctx.rel.clone(),
                    line,
                    format!(
                        "format constant `{name}` redefined here (first defined at {}:{}); \
                         writer and reader drift when the same constant has two homes — \
                         import the canonical one",
                        ctxs[sites[0].0].rel, sites[0].1
                    ),
                );
            }
            if !group.defined_in.is_empty() {
                let (fi, line) = sites[0];
                let home = &ctxs[fi].rel;
                if !group.defined_in.iter().any(|d| home == d) {
                    cemit(
                        Some(&ctxs[fi]),
                        config,
                        out,
                        "W001",
                        "format-const-dup",
                        home.clone(),
                        line,
                        format!(
                            "format constant `{name}` must be defined in {} (per \
                             [format.{}] defined_in), not here",
                            group.defined_in.join(" or "),
                            group.name
                        ),
                    );
                }
            }
        }
        for handled in &group.handled_in {
            let Some(fi) = ctxs.iter().position(|c| &c.rel == handled) else {
                if workspace_mode {
                    cemit(
                        None,
                        config,
                        out,
                        "W002",
                        "format-coverage",
                        "lint.toml".to_string(),
                        0,
                        format!(
                            "[format.{}] handled_in file {handled} was not found in the scan",
                            group.name
                        ),
                    );
                }
                continue;
            };
            for name in &group.require {
                if !idents[fi].contains(name.as_str()) {
                    cemit(
                        Some(&ctxs[fi]),
                        config,
                        out,
                        "W002",
                        "format-coverage",
                        handled.clone(),
                        1,
                        format!(
                            "`{name}` (group [format.{}]) is never referenced in this file; \
                             every section kind and length constant must be handled by the \
                             writer, the reader dispatch, and the corruption matrix",
                            group.name
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- M-rules

/// M001 (dead metric prefix) and M002 (one name registered as two kinds).
fn m_rules(
    ctxs: &[FileContext<'_>],
    config: &Config,
    workspace_mode: bool,
    out: &mut Vec<Finding>,
) {
    // Collect every literal registration site: (name, kind, file idx, line).
    let mut sites: Vec<(String, &'static str, usize, usize)> = Vec::new();
    for (fi, ctx) in ctxs.iter().enumerate() {
        let tokens = ctx.tokens();
        for i in 0..tokens.len() {
            let Some(fn_name) = ident_at(tokens, i) else { continue };
            let kind = match fn_name {
                "counter" => "counter",
                "gauge" => "gauge",
                "histogram" => "histogram",
                _ => continue,
            };
            if !punct_at(tokens, i + 1, '(')
                || (i >= 1 && ident_at(tokens, i - 1) == Some("fn"))
                || ctx.in_test(tokens[i].line)
            {
                continue;
            }
            let Some(Token::Literal(LiteralKind::Str(name))) = tokens.get(i + 2).map(|t| &t.tok)
            else {
                continue;
            };
            sites.push((name.clone(), kind, fi, tokens[i].line));
        }
    }

    // M002: same name, different instrument kinds.
    let mut first_kind: BTreeMap<&str, (&'static str, usize, usize)> = BTreeMap::new();
    for (name, kind, fi, line) in &sites {
        match first_kind.get(name.as_str()) {
            None => {
                first_kind.insert(name.as_str(), (kind, *fi, *line));
            }
            Some(&(k0, fi0, l0)) if k0 != *kind => {
                let ctx = &ctxs[*fi];
                cemit(
                    Some(ctx),
                    config,
                    out,
                    "M002",
                    "metric-kind-conflict",
                    ctx.rel.clone(),
                    *line,
                    format!(
                        "metric `{name}` registered as a {kind} here but as a {k0} at \
                         {}:{l0}; one name must map to one instrument kind",
                        ctxs[fi0].rel
                    ),
                );
            }
            Some(_) => {}
        }
    }

    // M001: prefixes with zero live registrations (workspace view only).
    if workspace_mode {
        for prefix in &config.metric_prefixes {
            let used =
                sites.iter().any(|(name, _, _, _)| name.split('.').next() == Some(prefix.as_str()));
            if !used {
                cemit(
                    None,
                    config,
                    out,
                    "M001",
                    "metric-dead-prefix",
                    "lint.toml".to_string(),
                    0,
                    format!(
                        "metric prefix `{prefix}` has no registered metric name in non-test \
                         code; prune it from [metric-names] prefixes or register the metric"
                    ),
                );
            }
        }
    }
}
