//! `lint.toml` configuration.
//!
//! The workspace's approved dependency set contains no TOML crate, so the
//! config file is parsed with a small hand-rolled reader covering the subset
//! the lint actually uses: `[dotted.section]` headers, `key = "string"`,
//! `key = ["array", "of", "strings"]`, `key = true|false`, and `#` comments.
//! Anything outside that subset is a hard error — a config typo silently
//! ignored would disable merge-gate rules.

use std::collections::BTreeMap;

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) scanned in `--workspace` mode.
    pub roots: Vec<String>,
    /// Path prefixes excluded from every scan (fixtures, vendor, target).
    pub exclude: Vec<String>,
    /// Directory names whose files are *test context*: determinism and
    /// atomics rules (D/A) do not apply there, hygiene rules (U/O) still do.
    pub test_dirs: Vec<String>,
    /// Rule ids or slugs disabled outright.
    pub disabled: Vec<String>,
    /// Per-rule file allowlists: slug -> path prefixes where the rule does
    /// not apply (the rule's sanctioned home, e.g. the pool internals for
    /// `thread-id`).
    pub allow: BTreeMap<String, Vec<String>>,
    /// Legal first segments of metric names (O001).
    pub metric_prefixes: Vec<String>,
    /// Per-file waivers: workspace-relative path -> waived rule slugs.
    pub waivers: BTreeMap<String, Vec<String>>,
    /// Path prefixes considered "counted paths" for D004 (thread-count
    /// sensitive float accumulation).
    pub counted_paths: Vec<String>,
    /// Path prefixes designated *hot paths* for the P-rules: code that must
    /// surface corrupt or torn input as typed errors, never a panic.
    pub hot_paths: Vec<String>,
    /// Wire/segment format constant groups checked by the W-rules.
    pub format_groups: Vec<FormatGroup>,
}

/// One `[format.<name>]` group: a set of format constants that writer,
/// reader, and corruption matrix must agree on.
#[derive(Debug, Clone, Default)]
pub struct FormatGroup {
    /// Group name (the `<name>` of the section header).
    pub name: String,
    /// Constants that must be defined exactly once workspace-wide (W001).
    pub consts: Vec<String>,
    /// Constants every `handled_in` file must reference (W002).
    pub require: Vec<String>,
    /// Files required to reference every `require` constant.
    pub handled_in: Vec<String>,
    /// Optional canonical definition site(s) for the group's constants.
    pub defined_in: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            roots: vec!["crates".into(), "src".into(), "tests".into(), "examples".into()],
            exclude: vec!["crates/lint/tests/fixtures".into(), "vendor".into(), "target".into()],
            test_dirs: vec!["tests".into(), "benches".into()],
            disabled: Vec::new(),
            allow: BTreeMap::new(),
            metric_prefixes: vec![
                "pipeline".into(),
                "ghost".into(),
                "search".into(),
                "gpu".into(),
                "bench".into(),
                "build".into(),
                "obs".into(),
                "cluster".into(),
            ],
            waivers: BTreeMap::new(),
            counted_paths: vec![
                "crates/search".into(),
                "crates/core".into(),
                "crates/graph".into(),
                "crates/gpu-sim".into(),
                "crates/vector".into(),
            ],
            hot_paths: vec![
                "crates/core/src/serve.rs".into(),
                "crates/core/src/cluster/".into(),
                "crates/core/src/store/".into(),
                "crates/search/src/".into(),
            ],
            format_groups: Vec::new(),
        }
    }
}

/// A config-file syntax or semantics error.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line of the offending entry (0 for file-level errors).
    pub line: usize,
    /// Human description.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses a `lint.toml` document, starting from the defaults.
    pub fn parse(src: &str) -> Result<Self, ConfigError> {
        let mut cfg = Config::default();
        let mut section = String::new();
        let lines: Vec<&str> = src.lines().collect();
        let mut idx = 0;
        while idx < lines.len() {
            let lineno = idx + 1;
            let mut line = strip_comment(lines[idx]).trim().to_string();
            idx += 1;
            // Multi-line arrays: keep appending lines until brackets balance.
            while bracket_balance(&line) > 0 && idx < lines.len() {
                line.push(' ');
                line.push_str(strip_comment(lines[idx]).trim());
                idx += 1;
            }
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: lineno,
                    message: format!("unterminated section header {line:?}"),
                })?;
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = split_kv(&line, lineno)?;
            cfg.apply(&section, &key, &value, lineno)?;
        }
        Ok(cfg)
    }

    /// Loads and parses a config file.
    pub fn load(path: &std::path::Path) -> Result<Self, ConfigError> {
        let src = std::fs::read_to_string(path).map_err(|e| ConfigError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::parse(&src)
    }

    fn apply(
        &mut self,
        section: &str,
        key: &str,
        value: &Value,
        line: usize,
    ) -> Result<(), ConfigError> {
        let err = |message: String| Err(ConfigError { line, message });
        match (section, key) {
            ("scan", "roots") => self.roots = value.as_strings(line)?,
            ("scan", "exclude") => self.exclude = value.as_strings(line)?,
            ("scan", "test_dirs") => self.test_dirs = value.as_strings(line)?,
            ("scan", "counted_paths") => self.counted_paths = value.as_strings(line)?,
            ("rules", "disabled") => self.disabled = value.as_strings(line)?,
            ("metric-names", "prefixes") => self.metric_prefixes = value.as_strings(line)?,
            ("waivers", path) => {
                self.waivers.insert(path.to_string(), value.as_strings(line)?);
            }
            ("hot-paths", "files") => self.hot_paths = value.as_strings(line)?,
            (s, "files") if s.starts_with("allow.") => {
                let slug = s.trim_start_matches("allow.").to_string();
                if !crate::rules::is_known_slug(&slug) {
                    return err(format!("unknown rule slug {slug:?} in [allow.*]"));
                }
                self.allow.insert(slug, value.as_strings(line)?);
            }
            (s, key) if s.starts_with("format.") => {
                let name = s.trim_start_matches("format.").to_string();
                if name.is_empty() {
                    return err("format group needs a name: [format.<group>]".to_string());
                }
                let strings = value.as_strings(line)?;
                let group = match self.format_groups.iter().position(|g| g.name == name) {
                    Some(i) => &mut self.format_groups[i],
                    None => {
                        self.format_groups
                            .push(FormatGroup { name: name.clone(), ..FormatGroup::default() });
                        self.format_groups.last_mut().expect("group just pushed")
                    }
                };
                match key {
                    "consts" => group.consts = strings,
                    "require" => group.require = strings,
                    "handled_in" => group.handled_in = strings,
                    "defined_in" => group.defined_in = strings,
                    other => {
                        return err(format!("unknown key {other:?} in [format.{name}]"));
                    }
                }
            }
            _ => {
                return err(format!("unknown config entry [{section}] {key}"));
            }
        }
        Ok(())
    }

    /// Whether `rel` (workspace-relative, `/`-separated) is excluded from
    /// scanning entirely.
    pub fn is_excluded(&self, rel: &str) -> bool {
        self.exclude.iter().any(|p| rel.starts_with(p.as_str()))
    }

    /// Whether `rel` lives in test context (integration tests, benches).
    pub fn is_test_path(&self, rel: &str) -> bool {
        rel.split('/').any(|seg| self.test_dirs.iter().any(|d| d == seg))
    }

    /// Whether `slug` is allowed (rule does not apply) in file `rel`.
    pub fn is_allowed(&self, slug: &str, rel: &str) -> bool {
        if let Some(prefixes) = self.allow.get(slug) {
            if prefixes.iter().any(|p| rel.starts_with(p.as_str())) {
                return true;
            }
        }
        if let Some(waived) = self.waivers.get(rel) {
            if waived.iter().any(|w| w == slug) {
                return true;
            }
        }
        false
    }

    /// Whether a rule (by id or slug) is disabled globally.
    pub fn is_disabled(&self, id: &str, slug: &str) -> bool {
        self.disabled.iter().any(|d| d == id || d == slug)
    }

    /// Whether `rel` is on a counted path (D004 scope).
    pub fn is_counted_path(&self, rel: &str) -> bool {
        self.counted_paths.iter().any(|p| rel.starts_with(p.as_str()))
    }

    /// Whether `rel` is on a designated hot path (P-rule scope).
    pub fn is_hot(&self, rel: &str) -> bool {
        self.hot_paths.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

/// A parsed right-hand-side value.
#[derive(Debug)]
enum Value {
    Str(String),
    List(Vec<String>),
    Bool,
}

impl Value {
    fn as_strings(&self, line: usize) -> Result<Vec<String>, ConfigError> {
        match self {
            Value::List(v) => Ok(v.clone()),
            Value::Str(s) => Ok(vec![s.clone()]),
            Value::Bool => {
                Err(ConfigError { line, message: "expected a string or array of strings".into() })
            }
        }
    }
}

/// Net count of `[` minus `]` outside quoted strings (multi-line arrays).
fn bracket_balance(line: &str) -> i32 {
    let mut in_str = false;
    let mut balance = 0;
    for c in line.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => balance += 1,
            ']' if !in_str => balance -= 1,
            _ => {}
        }
    }
    balance
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits `key = value`, parsing the value.
fn split_kv(line: &str, lineno: usize) -> Result<(String, Value), ConfigError> {
    let eq = line.find('=').ok_or_else(|| ConfigError {
        line: lineno,
        message: format!("expected `key = value`, got {line:?}"),
    })?;
    let key = unquote(line[..eq].trim());
    let raw = line[eq + 1..].trim();
    let value = parse_value(raw, lineno)?;
    Ok((key, value))
}

fn parse_value(raw: &str, lineno: usize) -> Result<Value, ConfigError> {
    if raw == "true" {
        return Ok(Value::Bool);
    }
    if raw == "false" {
        return Ok(Value::Bool);
    }
    if let Some(body) = raw.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or_else(|| ConfigError {
            line: lineno,
            message: "array value must close on the same line".into(),
        })?;
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if !part.starts_with('"') {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("array items must be quoted strings, got {part:?}"),
                });
            }
            items.push(unquote(part));
        }
        return Ok(Value::List(items));
    }
    if raw.starts_with('"') {
        return Ok(Value::Str(unquote(raw)));
    }
    Err(ConfigError { line: lineno, message: format!("unsupported value syntax {raw:?}") })
}

/// Splits on commas outside quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Config::default();
        assert!(c.is_excluded("vendor/rand/src/lib.rs"));
        assert!(c.is_test_path("crates/vector/tests/simd_identity.rs"));
        assert!(c.is_test_path("tests/end_to_end.rs"));
        assert!(!c.is_test_path("crates/vector/src/simd.rs"));
    }

    #[test]
    fn parses_sections_and_lists() {
        let c = Config::parse(
            r#"
# comment
[scan]
roots = ["crates", "src"]  # trailing comment

[rules]
disabled = ["D004"]

[allow.wallclock-time]
files = ["crates/obs/", "crates/bench/"]

[metric-names]
prefixes = ["pipeline"]

[waivers]
"crates/foo/src/bar.rs" = ["unordered-iter"]
"#,
        )
        .unwrap();
        assert_eq!(c.roots, vec!["crates", "src"]);
        assert!(c.is_disabled("D004", "parallel-float-accum"));
        assert!(c.is_allowed("wallclock-time", "crates/obs/src/span.rs"));
        assert!(!c.is_allowed("wallclock-time", "crates/graph/src/build_report.rs"));
        assert!(c.is_allowed("unordered-iter", "crates/foo/src/bar.rs"));
        assert_eq!(c.metric_prefixes, vec!["pipeline"]);
    }

    #[test]
    fn rejects_unknown_entries() {
        assert!(Config::parse("[scan]\nbogus = true\n").is_err());
        assert!(Config::parse("[allow.not-a-rule]\nfiles = [\"x\"]\n").is_err());
        assert!(Config::parse("key_without_section = 1\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let c = Config::parse("[waivers]\n\"a#b.rs\" = [\"thread-id\"]\n").unwrap();
        assert!(c.is_allowed("thread-id", "a#b.rs"));
    }
}
