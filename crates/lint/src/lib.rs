//! `pathweaver-lint` — the workspace invariant checker.
//!
//! Enforces the repo's determinism, unsafe-hygiene, atomics, and
//! observability-naming contracts by scanning every workspace `.rs` file at
//! the token level. See [`rules::RULES`] for the catalogue and
//! `DESIGN.md` ("Static analysis & invariant checking") for the policy.

#![forbid(unsafe_code)]

pub mod config;
pub mod context;
pub mod diagnostics;
pub mod lexer;
pub mod rules;
pub mod workspace;

use config::Config;
use context::FileContext;
use diagnostics::{sort_findings, Finding};
use std::path::Path;

/// Result of a lint run.
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Sorted findings.
    pub findings: Vec<Finding>,
}

/// Lints an explicit list of workspace-relative files.
pub fn lint_files(root: &Path, config: &Config, rels: &[String]) -> Report {
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for rel in rels {
        let path = root.join(rel);
        match std::fs::read_to_string(&path) {
            Ok(src) => {
                scanned += 1;
                let ctx = FileContext::new(rel, &src, config);
                findings.extend(rules::check_file(&ctx));
            }
            Err(e) => findings.push(Finding {
                rule: "E000",
                slug: "io-error",
                file: rel.clone(),
                line: 0,
                message: format!("cannot read file: {e}"),
            }),
        }
    }
    sort_findings(&mut findings);
    Report { files_scanned: scanned, findings }
}

/// Lints the whole workspace: every discovered `.rs` file plus the
/// manifest-level (U002) checks.
pub fn lint_workspace(root: &Path, config: &Config) -> Report {
    let rels = workspace::collect_files(root, config);
    let mut report = lint_files(root, config, &rels);
    report.findings.extend(rules::check_manifests(root, config));
    sort_findings(&mut report.findings);
    report
}
