//! `pathweaver-lint` — the workspace invariant checker.
//!
//! Enforces the repo's determinism, unsafe-hygiene, atomics, and
//! observability-naming contracts at the token level, plus symbol-aware
//! cross-file contracts (panic-freedom on hot paths, lock discipline,
//! wire-format consistency, metric cross-checks) via a lightweight item
//! parser and an intra-crate call-graph approximation. See [`rules::RULES`]
//! for the catalogue and `DESIGN.md` ("Static analysis & invariant
//! checking") for the policy.

#![forbid(unsafe_code)]

pub mod config;
pub mod context;
pub mod crossfile;
pub mod diagnostics;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod workspace;

use config::Config;
use context::FileContext;
use diagnostics::{sort_findings, Finding};
use std::path::Path;

/// Result of a lint run.
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Sorted findings.
    pub findings: Vec<Finding>,
    /// The lock-acquisition graph in Graphviz DOT form (L-rules' working
    /// state, shipped as a CI artifact for debugging).
    pub lock_graph_dot: String,
}

/// Lints an explicit list of workspace-relative files. Cross-file rules run
/// over the given set; rules that need the whole workspace in view (dead
/// metric prefixes, missing format-constant definitions) stay silent — use
/// [`lint_files_full`] or [`lint_workspace`] for those.
pub fn lint_files(root: &Path, config: &Config, rels: &[String]) -> Report {
    lint_file_set(root, config, rels, false)
}

/// Like [`lint_files`], but treats the file list as the complete workspace,
/// enabling the whole-workspace rules (M001, W001-missing). Used by fixture
/// tests and tooling that scans a self-contained tree.
pub fn lint_files_full(root: &Path, config: &Config, rels: &[String]) -> Report {
    lint_file_set(root, config, rels, true)
}

fn lint_file_set(root: &Path, config: &Config, rels: &[String], workspace_mode: bool) -> Report {
    let mut findings = Vec::new();
    let mut ctxs: Vec<FileContext<'_>> = Vec::new();
    for rel in rels {
        let path = root.join(rel);
        match std::fs::read_to_string(&path) {
            Ok(src) => ctxs.push(FileContext::new(rel, &src, config)),
            Err(e) => findings.push(Finding {
                rule: "E000",
                slug: "io-error",
                file: rel.clone(),
                line: 0,
                message: format!("cannot read file: {e}"),
            }),
        }
    }
    for ctx in &ctxs {
        findings.extend(rules::check_file(ctx));
    }
    let (cross, lock_graph_dot) = crossfile::check(&ctxs, config, workspace_mode);
    findings.extend(cross);
    sort_findings(&mut findings);
    Report { files_scanned: ctxs.len(), findings, lock_graph_dot }
}

/// Lints the whole workspace: every discovered `.rs` file, the cross-file
/// analyses, plus the manifest-level (U002) checks.
pub fn lint_workspace(root: &Path, config: &Config) -> Report {
    let rels = workspace::collect_files(root, config);
    let mut report = lint_file_set(root, config, &rels, true);
    report.findings.extend(rules::check_manifests(root, config));
    sort_findings(&mut report.findings);
    report
}
