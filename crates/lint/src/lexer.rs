//! A minimal hand-rolled Rust lexer.
//!
//! The rule engine needs far less than a full parser: identifiers,
//! punctuation, literal kinds, line numbers, and comments kept *out of* the
//! token stream but addressable by line (SAFETY comments, waivers, and
//! justification comments are all line-oriented conventions). The lexer
//! therefore tokenizes the small subset of Rust's lexical grammar that
//! matters for matching token patterns:
//!
//! - line (`//`) and nested block (`/* */`) comments, collected per line;
//! - string/char/byte/raw-string literals (so `"HashMap"` in a message never
//!   looks like the `HashMap` identifier);
//! - identifiers and lifetimes (disambiguated from char literals);
//! - numeric literals (consumed loosely — their value is irrelevant);
//! - everything else as single-character punctuation.
//!
//! Multi-character operators arrive as consecutive punctuation tokens
//! (`::` is `:`, `:`), which is exactly what the pattern matchers want.

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// String, char, byte, or numeric literal. Strings carry their content
    /// so rules can validate literal arguments (e.g. metric names).
    Literal(LiteralKind),
    /// A single punctuation character.
    Punct(char),
    /// A lifetime such as `'a` (kept distinct so it never shadows idents).
    Lifetime,
}

/// The payload of a [`Token::Literal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiteralKind {
    /// A string literal's unescaped-ish content (escapes left as written —
    /// rules only inspect plain names, which contain none).
    Str(String),
    /// Char, byte, or numeric literal; content irrelevant to every rule.
    Other,
}

/// A token paired with its 1-based line number.
#[derive(Debug, Clone)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Lexer output: the code token stream plus per-line comment text.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Spanned>,
    /// For each 1-based line, the concatenated comment text present on that
    /// line (line comments and any block-comment portion). Index 0 unused.
    pub comments: Vec<String>,
}

impl Lexed {
    /// Comment text of `line`, or `""` when out of range / none.
    pub fn comment_on(&self, line: usize) -> &str {
        self.comments.get(line).map(String::as_str).unwrap_or("")
    }
}

/// Tokenizes `src`, separating comments from code tokens.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let n = bytes.len();
    let mut out = Lexed::default();
    let line_count = src.lines().count() + 2;
    out.comments = vec![String::new(); line_count + 1];
    let mut i = 0;
    let mut line = 1;

    let push_comment = |comments: &mut Vec<String>, line: usize, text: &str| {
        if line < comments.len() {
            if !comments[line].is_empty() {
                comments[line].push(' ');
            }
            comments[line].push_str(text);
        }
    };

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                push_comment(&mut out.comments, line, &text);
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let mut depth = 1usize;
                let mut text = String::new();
                i += 2;
                let mut at = line;
                while i < n && depth > 0 {
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == '\n' {
                            push_comment(&mut out.comments, at, &text);
                            text.clear();
                            line += 1;
                            at = line;
                        } else {
                            text.push(bytes[i]);
                        }
                        i += 1;
                    }
                }
                push_comment(&mut out.comments, at, &text);
            }
            '"' => {
                let (content, consumed, newlines) = scan_string(&bytes[i..]);
                out.tokens.push(Spanned { tok: Token::Literal(LiteralKind::Str(content)), line });
                i += consumed;
                line += newlines;
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes[i..]) => {
                let (kind, consumed, newlines) = scan_prefixed_string(&bytes[i..]);
                out.tokens.push(Spanned { tok: Token::Literal(kind), line });
                i += consumed;
                line += newlines;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`): a lifetime's
                // identifier is not followed by a closing quote.
                if is_lifetime(&bytes[i..]) {
                    i += 1;
                    while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    out.tokens.push(Spanned { tok: Token::Lifetime, line });
                } else {
                    let consumed = scan_char_literal(&bytes[i..]);
                    out.tokens.push(Spanned { tok: Token::Literal(LiteralKind::Other), line });
                    i += consumed;
                }
            }
            c if c.is_ascii_digit() => {
                while i < n
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '.')
                {
                    // `0..10` range syntax: stop before a second consecutive dot.
                    if bytes[i] == '.' && i + 1 < n && bytes[i + 1] == '.' {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Spanned { tok: Token::Literal(LiteralKind::Other), line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let name: String = bytes[start..i].iter().collect();
                out.tokens.push(Spanned { tok: Token::Ident(name), line });
            }
            other => {
                out.tokens.push(Spanned { tok: Token::Punct(other), line });
                i += 1;
            }
        }
    }
    out
}

/// Scans a `"..."` literal starting at `s[0] == '"'`.
/// Returns (content, chars consumed, newlines crossed).
fn scan_string(s: &[char]) -> (String, usize, usize) {
    let mut content = String::new();
    let mut i = 1;
    let mut newlines = 0;
    while i < s.len() {
        match s[i] {
            '\\' if i + 1 < s.len() => {
                // An escaped newline (string continuation) still advances the
                // source line, or every later token's line number drifts.
                if s[i + 1] == '\n' {
                    newlines += 1;
                }
                content.push(s[i]);
                content.push(s[i + 1]);
                i += 2;
            }
            '"' => return (content, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                content.push(c);
                i += 1;
            }
        }
    }
    (content, i, newlines)
}

/// Whether `s` starts a raw string (`r"`, `r#`), byte string (`b"`), or raw
/// byte string (`br`). Plain identifiers starting with r/b fall through.
fn starts_raw_or_byte_string(s: &[char]) -> bool {
    match s.first() {
        Some('r') => matches!(s.get(1), Some('"') | Some('#')),
        Some('b') => match s.get(1) {
            Some('"') | Some('\'') => true,
            Some('r') => matches!(s.get(2), Some('"') | Some('#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scans `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'` forms.
/// Returns (kind, chars consumed, newlines crossed).
fn scan_prefixed_string(s: &[char]) -> (LiteralKind, usize, usize) {
    let mut i = 0;
    // Skip the b / r / br prefix.
    while i < s.len() && (s[i] == 'b' || s[i] == 'r') {
        i += 1;
    }
    if s.get(i) == Some(&'\'') {
        // Byte char literal.
        let consumed = scan_char_literal(&s[i..]);
        return (LiteralKind::Other, i + consumed, 0);
    }
    let mut hashes = 0;
    while s.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if s.get(i) != Some(&'"') {
        // Not actually a string (e.g. `r#ident`); consume the prefix only.
        return (LiteralKind::Other, i.max(1), 0);
    }
    i += 1;
    let mut content = String::new();
    let mut newlines = 0;
    while i < s.len() {
        if s[i] == '"' {
            // Check for the closing `#` run.
            let mut ok = true;
            for k in 0..hashes {
                if s.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return (LiteralKind::Str(content), i + 1 + hashes, newlines);
            }
        }
        if s[i] == '\n' {
            newlines += 1;
        }
        content.push(s[i]);
        i += 1;
    }
    (LiteralKind::Str(content), i, newlines)
}

/// Whether `s` (starting at `'`) is a lifetime rather than a char literal.
fn is_lifetime(s: &[char]) -> bool {
    match s.get(1) {
        Some(c) if c.is_alphabetic() || *c == '_' => s.get(2) != Some(&'\''),
        _ => false,
    }
}

/// Scans a char literal starting at `'`; returns chars consumed.
fn scan_char_literal(s: &[char]) -> usize {
    let mut i = 1;
    while i < s.len() {
        match s[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|s| match s.tok {
                Token::Ident(n) => Some(n),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn identifiers_and_puncts() {
        let l = lex("let x = a.b();");
        let names = idents("let x = a.b();");
        assert_eq!(names, vec!["let", "x", "a", "b"]);
        assert!(l.tokens.iter().any(|t| t.tok == Token::Punct('.')));
    }

    #[test]
    fn strings_are_not_identifiers() {
        let names = idents(r#"call("Instant inside string")"#);
        assert_eq!(names, vec!["call"]);
    }

    #[test]
    fn string_content_preserved() {
        let l = lex(r#"counter("pipeline.stage0.wall_ns")"#);
        let found = l.tokens.iter().any(
            |t| matches!(&t.tok, Token::Literal(LiteralKind::Str(s)) if s == "pipeline.stage0.wall_ns"),
        );
        assert!(found);
    }

    #[test]
    fn raw_strings_and_bytes() {
        let l = lex(r##"let a = r#"raw "x" body"#; let b = b"bytes";"##);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Token::Literal(LiteralKind::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["raw \"x\" body".to_string(), "bytes".to_string()]);
    }

    #[test]
    fn comments_collected_by_line() {
        let src = "let a = 1; // trailing note\n// SAFETY: fine because reasons\nlet b = 2;\n";
        let l = lex(src);
        assert!(l.comment_on(1).contains("trailing note"));
        assert!(l.comment_on(2).contains("SAFETY: fine"));
        assert_eq!(l.comment_on(3), "");
        // Comments never become tokens.
        assert!(!l.tokens.iter().any(|t| matches!(&t.tok, Token::Ident(n) if n == "SAFETY")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        let l = lex(src);
        assert_eq!(idents(src), vec!["let", "x"]);
        assert!(l.comment_on(1).contains("still comment"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = l.tokens.iter().filter(|t| t.tok == Token::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let chars =
            l.tokens.iter().filter(|t| matches!(t.tok, Token::Literal(LiteralKind::Other))).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\n\nc";
        let l = lex(src);
        let lines: Vec<usize> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn range_syntax_is_not_a_float() {
        let src = "for i in 0..10 { }";
        let l = lex(src);
        // `0..10` must lex as literal, dot, dot, literal — not `0.` `.10`.
        let dots = l.tokens.iter().filter(|t| t.tok == Token::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn escaped_newline_continuation_advances_lines() {
        let src = "let s = \"part one \\\n    part two\";\nlet t = 1;";
        let l = lex(src);
        let t_line = l
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Token::Ident(n) if n == "t"))
            .map(|t| t.line)
            .unwrap();
        assert_eq!(t_line, 3);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let src = "let s = \"line one\nline two\";\nlet t = 1;";
        let l = lex(src);
        let t_line = l
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Token::Ident(n) if n == "t"))
            .map(|t| t.line)
            .unwrap();
        assert_eq!(t_line, 3);
    }
}
